"""Multi-instance churn (end-to-end Appendix D) and dynamic membership
(Appendix G, S1 relaxation)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.core.churn import ChurnDriver, IntermittentOmission
from repro.core.erb import ErbProgram
from repro.net.membership import MembershipDirectory, MembershipEvent, MembershipService
from repro.net.simulator import SynchronousNetwork

from tests.conftest import small_config


class TestReplacePrograms:
    def _factory(self, instance, initiator, n, t):
        def factory(node_id):
            return ErbProgram(
                node_id=node_id, initiator=initiator, n=n, t=t,
                seq=instance, instance=f"i{instance}",
                message=f"m{instance}" if node_id == initiator else None,
            )

        return factory

    def test_two_instances_same_network(self):
        config = small_config(7, seed=1)
        network = SynchronousNetwork(config, self._factory(1, 0, 7, 3))
        first = network.run(max_rounds=config.t + 2)
        assert set(first.outputs.values()) == {"m1"}
        network.replace_programs(self._factory(2, 1, 7, 3))
        second = network.run(max_rounds=config.t + 2)
        assert set(second.outputs.values()) == {"m2"}

    def test_halted_node_stays_out_across_instances(self):
        from repro.adversary import SelectiveOmission

        config = small_config(9, seed=2)
        behaviors = {0: SelectiveOmission(victims=set(range(1, 8)))}
        network = SynchronousNetwork(
            config, self._factory(1, 0, 9, 4), behaviors
        )
        first = network.run(max_rounds=config.t + 2)
        assert 0 in first.halted
        network.replace_programs(self._factory(2, 1, 9, 4))
        second = network.run(max_rounds=config.t + 2)
        assert 0 in second.halted  # still dead — no rejoin (P6)
        assert 0 not in second.outputs
        honest = {k: v for k, v in second.outputs.items() if k != 0}
        assert set(honest.values()) == {"m2"}

    def test_stats_reset_per_instance(self):
        config = small_config(5, seed=3)
        network = SynchronousNetwork(config, self._factory(1, 0, 5, 2))
        first = network.run(max_rounds=config.t + 2)
        network.replace_programs(self._factory(2, 0, 5, 2))
        second = network.run(max_rounds=config.t + 2)
        assert first.traffic is not second.traffic
        assert second.traffic.messages_sent == first.traffic.messages_sent

    def test_different_program_class_rejected(self):
        from repro.core.strawman import StrawmanBroadcastProgram

        config = small_config(5, seed=4)
        network = SynchronousNetwork(config, self._factory(1, 0, 5, 2))
        network.run(max_rounds=2)
        with pytest.raises(ConfigurationError, match="measurement"):
            network.replace_programs(
                lambda i: StrawmanBroadcastProgram(i, 0, 5, 2)
            )

    def test_cross_instance_replay_rejected(self):
        """A5 across instances: wires captured in instance 1 and re-sent
        in instance 2 die on the (persistent) channel counters."""
        from repro.adversary.behaviors import OSBehavior

        class CrossInstanceReplayer(OSBehavior):
            def __init__(self):
                self.stored = []
                self.armed = False

            def filter_send(self, wire, rnd):
                self.stored.append(wire)
                return ((0, wire),)

            def drain_injections(self, rnd):
                if not self.armed:
                    return ()
                batch, self.stored = self.stored, []
                return tuple((0, wire) for wire in batch)

        replayer = CrossInstanceReplayer()
        config = small_config(7, seed=5)
        network = SynchronousNetwork(
            config, self._factory(1, 0, 7, 3), {2: replayer}
        )
        first = network.run(max_rounds=config.t + 2)
        assert set(first.outputs.values()) == {"m1"}
        assert len(replayer.stored) > 0

        replayer.armed = True  # replay instance-1 traffic into instance 2
        network.replace_programs(self._factory(2, 0, 7, 3))
        second = network.run(max_rounds=config.t + 2)
        assert set(second.outputs.values()) == {"m2"}
        assert second.traffic.rejections > 0  # replays hit the guard

    def test_sequence_numbers_separate_instances(self):
        """A message legitimately delivered late cannot leak between
        instances: instance 2 expects seq 2, instance-1 traffic has
        seq 1."""
        config = small_config(5, seed=6)
        network = SynchronousNetwork(config, self._factory(1, 0, 5, 2))
        network.run(max_rounds=config.t + 2)
        # Same instance tag but stale sequence: receivers ignore it.
        network.replace_programs(self._factory(2, 0, 5, 2))
        result = network.run(max_rounds=config.t + 2)
        assert set(result.outputs.values()) == {"m2"}


class TestChurnDriver:
    def test_trajectory_monotone_without_replacement(self):
        driver = ChurnDriver(
            small_config(11, seed=5), byzantine=[1, 3, 5],
            misbehave_p=0.6, seed=6,
        )
        report = driver.run(10)
        counts = report.live_byzantine
        assert counts == sorted(counts, reverse=True)
        assert counts[0] <= 3

    def test_agreement_in_every_instance(self):
        driver = ChurnDriver(
            small_config(11, seed=7), byzantine=[2, 4],
            misbehave_p=0.5, seed=8,
        )
        report = driver.run(8)
        assert report.agreements_held == report.instances

    def test_p_one_sanitizes_immediately(self):
        driver = ChurnDriver(
            small_config(9, seed=9), byzantine=[1, 2], misbehave_p=1.0,
            seed=10,
        )
        report = driver.run(3)
        assert report.live_byzantine[0] == 0
        assert sorted(report.ejected_order) == [1, 2]

    def test_p_zero_never_ejects(self):
        driver = ChurnDriver(
            small_config(9, seed=11), byzantine=[1, 2], misbehave_p=0.0,
            seed=12,
        )
        report = driver.run(4)
        assert report.live_byzantine == [2, 2, 2, 2]
        assert report.ejected_order == []

    def test_bound_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnDriver(
                small_config(5), byzantine=[0, 1, 2], misbehave_p=0.5
            )
        with pytest.raises(ConfigurationError):
            ChurnDriver(small_config(5), byzantine=[0], misbehave_p=1.5)

    def test_intermittent_behavior_passive_by_default(self):
        behavior = IntermittentOmission(victims={1, 2})
        from repro.channel.peer_channel import WireMessage

        wire = WireMessage(sender=0, receiver=1, counter=1, size=10)
        assert list(behavior.filter_send(wire, 1)) == [(0, wire)]
        behavior.active = True
        assert list(behavior.filter_send(wire, 1)) == []


class TestMembershipDirectory:
    def test_apply_join_and_leave(self):
        directory = MembershipDirectory(members={0, 1})
        directory.apply(MembershipEvent("join", 2, sponsor=0, version=1))
        assert directory.members == {0, 1, 2}
        directory.apply(MembershipEvent("leave", 0, sponsor=1, version=2))
        assert directory.members == {1, 2}
        assert directory.version == 2

    def test_version_gap_rejected(self):
        directory = MembershipDirectory(members={0})
        with pytest.raises(ProtocolError, match="version"):
            directory.apply(MembershipEvent("join", 1, sponsor=0, version=5))

    def test_double_join_rejected(self):
        directory = MembershipDirectory(members={0})
        with pytest.raises(ProtocolError):
            directory.apply(MembershipEvent("join", 0, sponsor=0, version=1))

    def test_unknown_leave_rejected(self):
        directory = MembershipDirectory(members={0})
        with pytest.raises(ProtocolError):
            directory.apply(MembershipEvent("leave", 7, sponsor=0, version=1))


class TestMembershipService:
    def test_join_updates_all_views(self):
        service = MembershipService(initial_members=5, seed=1)
        new = service.join(sponsor=2)
        assert new == 5
        assert service.members == (0, 1, 2, 3, 4, 5)
        assert service.views_consistent()

    def test_joiner_receives_full_history(self):
        service = MembershipService(initial_members=4, seed=2)
        service.join(sponsor=0)
        service.join(sponsor=1)
        newest = max(service.views)
        assert len(service.views[newest].history) >= 1
        assert service.views_consistent()

    def test_leave(self):
        service = MembershipService(initial_members=5, seed=3)
        service.leave(3)
        assert 3 not in service.members
        assert service.views_consistent()

    def test_interleaved_events(self):
        service = MembershipService(initial_members=4, seed=4)
        a = service.join(sponsor=0)
        service.leave(1)
        b = service.join(sponsor=a)
        service.leave(a)
        assert b in service.members
        assert a not in service.members
        assert service.views_consistent()

    def test_non_member_sponsor_rejected(self):
        service = MembershipService(initial_members=3, seed=5)
        with pytest.raises(ConfigurationError):
            service.join(sponsor=99)

    def test_unknown_leave_rejected(self):
        service = MembershipService(initial_members=3, seed=6)
        with pytest.raises(ConfigurationError):
            service.leave(42)
