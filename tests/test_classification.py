"""Definition A.5 classification and the operational reduction theorem."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    DelayAdversary,
    RandomOmission,
    ReceiveOmission,
    ReplayAdversary,
    SelectiveOmission,
    TamperAdversary,
)
from repro.adversary.classification import (
    ActionTrace,
    WireAction,
    classify_actions,
    classify_all,
    classify_node,
)
from repro.common.config import AdversaryModel, SimulationConfig
from repro.common.rng import DeterministicRNG
from repro.core.erb import ErbProgram, run_erb
from repro.net.simulator import SynchronousNetwork


def _traced_run(n, behaviors, seed=0, initiator=0):
    config = SimulationConfig(n=n, seed=seed, extra={"trace_actions": True})
    network = SynchronousNetwork(
        config,
        lambda i: ErbProgram(
            i, initiator, n, config.t,
            message=b"m" if i == initiator else None,
        ),
        behaviors,
    )
    result = network.run(max_rounds=config.t + 2)
    return network, result


class TestClassifyActions:
    def test_empty_is_honest(self):
        assert classify_actions([]) is AdversaryModel.HONEST

    def test_deliver_only_is_honest(self):
        assert (
            classify_actions([WireAction.DELIVER] * 10)
            is AdversaryModel.HONEST
        )

    def test_drops_are_general_omission(self):
        assert (
            classify_actions([WireAction.DELIVER, WireAction.DROP_SEND])
            is AdversaryModel.GENERAL_OMISSION
        )
        assert (
            classify_actions([WireAction.DROP_RECV])
            is AdversaryModel.GENERAL_OMISSION
        )

    def test_delay_and_replay_are_rod(self):
        assert classify_actions([WireAction.DELAY]) is AdversaryModel.ROD
        assert (
            classify_actions([WireAction.DROP_SEND, WireAction.REPLAY])
            is AdversaryModel.ROD
        )

    def test_modify_is_byzantine(self):
        assert (
            classify_actions(
                [WireAction.DELIVER, WireAction.DELAY, WireAction.MODIFY]
            )
            is AdversaryModel.BYZANTINE
        )

    @given(
        st.lists(st.sampled_from(list(WireAction)), max_size=30)
    )
    @settings(max_examples=100)
    def test_classification_is_order_invariant_and_monotone(self, actions):
        forward = classify_actions(actions)
        backward = classify_actions(list(reversed(actions)))
        assert forward == backward
        # Adding actions can only move the class up the hierarchy.
        order = [
            AdversaryModel.HONEST,
            AdversaryModel.GENERAL_OMISSION,
            AdversaryModel.ROD,
            AdversaryModel.BYZANTINE,
        ]
        extended = classify_actions(actions + [WireAction.DELIVER])
        assert order.index(extended) >= order.index(forward) or extended == forward
        assert order.index(
            classify_actions(actions + [WireAction.MODIFY])
        ) == order.index(AdversaryModel.BYZANTINE)


class TestTracedRuns:
    def test_honest_network_all_honest(self):
        network, _ = _traced_run(5, behaviors=None, seed=1)
        classes = classify_all(network.action_trace, 5)
        assert set(classes.values()) == {AdversaryModel.HONEST}

    def test_each_behavior_classified_correctly(self):
        behaviors = {
            1: RandomOmission(DeterministicRNG("c"), send_drop_p=0.7),
            2: SelectiveOmission(victims={0, 3, 4}),
            3: DelayAdversary(1),
            4: TamperAdversary(),
            5: ReceiveOmission(),
        }
        network, _ = _traced_run(11, behaviors, seed=2)
        trace = network.action_trace
        assert classify_node(trace, 1) is AdversaryModel.GENERAL_OMISSION
        assert classify_node(trace, 2) is AdversaryModel.GENERAL_OMISSION
        assert classify_node(trace, 3) is AdversaryModel.ROD
        assert classify_node(trace, 4) is AdversaryModel.BYZANTINE
        assert classify_node(trace, 5) is AdversaryModel.GENERAL_OMISSION
        assert classify_node(trace, 0) is AdversaryModel.HONEST

    def test_replayer_classified_rod(self):
        behaviors = {2: ReplayAdversary(replay_after_rounds=1, burst=4)}
        network, _ = _traced_run(7, behaviors, seed=3)
        assert (
            classify_node(network.action_trace, 2) is AdversaryModel.ROD
        )

    def test_trace_counts(self):
        behaviors = {1: SelectiveOmission(victims={2, 3})}
        network, _ = _traced_run(7, behaviors, seed=4)
        counts = network.action_trace.counts_of(1)
        assert counts.get(WireAction.DROP_SEND, 0) > 0
        assert counts.get(WireAction.DELIVER, 0) > 0

    def test_trace_disabled_by_default(self):
        result = run_erb(SimulationConfig(n=4, seed=5), 0, b"x")
        # run_erb builds its own network; just assert no trace config leaks
        # through SimulationConfig defaults.
        assert "trace_actions" not in SimulationConfig(n=4).extra


class TestOperationalReduction:
    """Theorem A.2, observable form: under blinded channels a byzantine
    (MODIFY-class) node's effect on honest outputs equals a ROD node's."""

    def test_tamperer_effect_equals_silent_node(self):
        n, seed = 9, 6
        tampered = run_erb(
            SimulationConfig(n=n, seed=seed), 0, b"m",
            behaviors={0: TamperAdversary()},
        )
        silent = run_erb(
            SimulationConfig(n=n, seed=seed), 0, b"m",
            behaviors={0: SelectiveOmission(victims=set(range(n)))},
        )
        assert tampered.honest_outputs({0}) == silent.honest_outputs({0})
        assert tampered.rounds_executed == silent.rounds_executed

    def test_delayer_effect_equals_omitter(self):
        n, seed = 9, 7
        delayed = run_erb(
            SimulationConfig(n=n, seed=seed), 0, b"m",
            behaviors={0: DelayAdversary(3)},
        )
        omitted = run_erb(
            SimulationConfig(n=n, seed=seed), 0, b"m",
            behaviors={0: SelectiveOmission(victims=set(range(n)))},
        )
        assert delayed.honest_outputs({0}) == omitted.honest_outputs({0})
