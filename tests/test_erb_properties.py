"""Property-based tests: Definition 2.1 holds for ERB under randomized
adversary mixes (the reduction theorems, exercised statistically)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    DelayAdversary,
    RandomOmission,
    ReceiveOmission,
    ReplayAdversary,
    SelectiveOmission,
    TamperAdversary,
)
from repro.common.rng import DeterministicRNG
from repro.core.erb import run_erb

from tests.conftest import small_config


def _build_adversaries(n, t, kinds, rng):
    """Assign up to t byzantine behaviours drawn from `kinds`."""
    behaviors = {}
    byzantine = sorted(rng.sample(list(range(n)), min(t, len(kinds))))
    for node, kind in zip(byzantine, kinds):
        if kind == 0:
            behaviors[node] = RandomOmission(
                rng.fork(("omit", node)), send_drop_p=0.5, recv_drop_p=0.2
            )
        elif kind == 1:
            behaviors[node] = SelectiveOmission(
                victims=set(rng.sample(list(range(n)), n // 2))
            )
        elif kind == 2:
            behaviors[node] = DelayAdversary(rng.randint(1, 3))
        elif kind == 3:
            behaviors[node] = ReplayAdversary()
        elif kind == 4:
            behaviors[node] = TamperAdversary()
        else:
            behaviors[node] = ReceiveOmission()
    return behaviors


@st.composite
def _scenario(draw):
    n = draw(st.integers(min_value=3, max_value=13))
    t = (n - 1) // 2
    kinds = draw(st.lists(st.integers(min_value=0, max_value=5), max_size=t))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    initiator_honest = draw(st.booleans())
    return n, t, kinds, seed, initiator_honest


class TestDefinition21Properties:
    @given(_scenario())
    @settings(max_examples=60, deadline=None)
    def test_agreement_and_termination(self, scenario):
        n, t, kinds, seed, initiator_honest = scenario
        rng = DeterministicRNG(("scenario", seed))
        behaviors = _build_adversaries(n, t, kinds, rng)
        if initiator_honest:
            initiator = next(
                node for node in range(n) if node not in behaviors
            )
        else:
            initiator = rng.randrange(n)
        result = run_erb(
            small_config(n, seed=seed),
            initiator=initiator,
            message=b"prop",
            behaviors=behaviors,
        )

        byzantine = set(behaviors)
        honest = result.honest_outputs(byzantine)

        # Termination: every honest node decides something.
        expected_honest = set(range(n)) - byzantine - set(result.halted)
        assert set(honest) == expected_honest
        # Round bound.
        assert result.rounds_executed <= t + 2

        # Agreement: all honest nodes decide the same value.
        values = set(honest.values())
        assert len(values) <= 1

        # Validity: honest initiator => everyone accepts its message.
        if initiator not in byzantine and values:
            assert values == {b"prop"}
        # Integrity: any accepted non-bottom value is the initiator's.
        for value in values:
            if value is not None:
                assert value == b"prop"

    @given(_scenario())
    @settings(max_examples=30, deadline=None)
    def test_honest_nodes_never_halt(self, scenario):
        n, t, kinds, seed, _ = scenario
        rng = DeterministicRNG(("halt", seed))
        behaviors = _build_adversaries(n, t, kinds, rng)
        initiator = next(
            (node for node in range(n) if node not in behaviors), 0
        )
        result = run_erb(
            small_config(n, seed=seed),
            initiator=initiator,
            message=b"prop",
            behaviors=behaviors,
        )
        # P4 only ever ejects misbehaving nodes: an honest node always
        # collects enough ACKs from the honest majority.
        assert set(result.halted) <= set(behaviors)
