"""Appendix D sanitization: closed forms vs Monte Carlo, plus an
end-to-end churn demonstration with real ERB instances."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import SelectiveOmission
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.core.erb import run_erb
from repro.core.sanitization import SanitizationModel

from tests.conftest import small_config


class TestClosedForms:
    def test_expected_decay(self):
        model = SanitizationModel(t=100, p=0.1)
        assert model.expected_faulty_after(0) == 100
        assert model.expected_faulty_after(1) == pytest.approx(95.0)
        assert model.expected_faulty_after(2) == pytest.approx(90.25)

    def test_decay_rate_with_replacement_prob(self):
        # q = 0: every eliminated node is replaced by an honest one.
        aggressive = SanitizationModel(t=100, p=0.5, replacement_byzantine_p=0.0)
        assert aggressive.decay_per_instance == pytest.approx(0.5)
        # q = 1: replacements are always byzantine — no contraction.
        futile = SanitizationModel(t=100, p=0.5, replacement_byzantine_p=1.0)
        assert futile.decay_per_instance == pytest.approx(1.0)

    def test_markov_bound_monotone(self):
        model = SanitizationModel(t=512, p=2**-5)
        bounds = [model.prob_any_faulty_bound(r) for r in (0, 100, 1000, 3000)]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[0] == 1.0  # t >= 1 initially

    def test_paper_example(self):
        # Appendix D: λ=30, t = N/2 - 1 for N = 2^10, p = 2^-5 → r ≈ 2500.
        model = SanitizationModel(t=511, p=2**-5)
        r = model.instances_for_confidence(30.0)
        assert 2200 <= r <= 2600
        assert model.prob_any_faulty_bound(r) <= math.exp(-30) * 1.01

    def test_no_contraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SanitizationModel(t=10, p=0.0).instances_for_confidence(10)
        with pytest.raises(ConfigurationError):
            SanitizationModel(
                t=10, p=0.5, replacement_byzantine_p=1.0
            ).instances_for_confidence(10)

    def test_expected_average_rounds_converges(self):
        model = SanitizationModel(t=50, p=0.05)
        early = model.expected_average_rounds(10)
        late = model.expected_average_rounds(100000)
        assert late < early
        assert late == pytest.approx(2.0, abs=0.1)  # Theorem D.2: constant

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SanitizationModel(t=-1, p=0.5)
        with pytest.raises(ConfigurationError):
            SanitizationModel(t=1, p=1.5)
        with pytest.raises(ConfigurationError):
            SanitizationModel(t=1, p=0.5, replacement_byzantine_p=-0.1)


class TestMonteCarlo:
    def test_trajectory_shape(self):
        model = SanitizationModel(t=20, p=0.2)
        outcome = model.simulate(50, DeterministicRNG("mc"))
        assert outcome.instances == 51  # includes F_0
        assert outcome.faulty_by_instance[0] == 20
        assert all(f >= 0 for f in outcome.faulty_by_instance)

    def test_mean_matches_closed_form(self):
        model = SanitizationModel(t=40, p=0.3)
        mean = model.monte_carlo_mean(
            instances=20, trials=300, rng=DeterministicRNG("mean")
        )
        for r in (5, 10, 20):
            expected = model.expected_faulty_after(r)
            assert mean[r] == pytest.approx(expected, rel=0.2)

    def test_sanitized_at_detection(self):
        model = SanitizationModel(t=5, p=0.9, replacement_byzantine_p=0.0)
        outcome = model.simulate(200, DeterministicRNG("fast"))
        assert outcome.sanitized_at != -1

    def test_conservation(self):
        model = SanitizationModel(t=30, p=0.5)
        outcome = model.simulate(100, DeterministicRNG("conserve"))
        final = outcome.faulty_by_instance[-1]
        assert final == 30 - outcome.eliminated_total + outcome.joined_byzantine_total

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30)
    def test_faulty_count_never_negative(self, t, seed):
        model = SanitizationModel(t=t, p=0.4)
        outcome = model.simulate(30, DeterministicRNG(("neg", seed)))
        assert min(outcome.faulty_by_instance) >= 0


class TestEndToEndChurn:
    def test_repeated_instances_sanitize_the_network(self):
        """Run real ERB instances; the omitting node is ejected in the
        first instance it misbehaves in, later instances are clean."""
        n = 9
        behaviors = {4: SelectiveOmission(victims=set(range(6)) - {4})}
        # Instance 1: node 4 echoes only to a minority → churned out.
        first = run_erb(
            small_config(n, seed=20), initiator=0, message=b"i1",
            behaviors=behaviors,
        )
        assert 4 in first.halted
        # Instance 2 (fresh run, node 4 gone — model as honest n-1 net):
        second = run_erb(small_config(n - 1, seed=21), 0, b"i2")
        assert second.halted == []
        assert second.rounds_executed == 2
