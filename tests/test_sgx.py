"""Tests for the simulated SGX substrate (F1-F4, Appendix A program model)."""

from __future__ import annotations

import pytest

from repro.common.errors import AttestationError, EnclaveHaltedError, IntegrityError
from repro.common.rng import DeterministicRNG
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave, EnclaveState
from repro.sgx.measurement import measure_program
from repro.sgx.program import (
    BOTTOM,
    EnclaveProgram,
    Program,
    is_valid_transcript,
    run_program,
)
from repro.sgx.rdrand import RdRand
from repro.sgx.sealing import seal_data, unseal_data
from repro.sgx.trusted_time import SimulationClock, TrustedClock


# ---------------------------------------------------------------------------
# Formal program model (Definitions A.1-A.3, A.7)
# ---------------------------------------------------------------------------
class TestProgramModel:
    def _adder(self):
        return Program.from_steps(
            "adder",
            [
                ("add", lambda st, m: (st + m, st + m)),
                ("double", lambda st, m: (st * 2, st * 2)),
            ],
        )

    def test_run_produces_transcript(self):
        transcript = run_program(self._adder(), 1, [2, 0])
        assert transcript == [(3, 3), (6, 6)]

    def test_valid_transcript(self):
        transcript = run_program(self._adder(), 1, [2, 0])
        assert is_valid_transcript(transcript)

    def test_bottom_state_is_sticky(self):
        # Definition A.1: an instruction fed ⊥ outputs ⊥ forever.
        halting = Program.from_steps(
            "halting",
            [
                ("halt", lambda st, m: (BOTTOM, BOTTOM)),
                ("never", lambda st, m: ("alive", "alive")),
            ],
        )
        transcript = run_program(halting, "start", ["a", "b"])
        assert transcript == [(BOTTOM, BOTTOM), (BOTTOM, BOTTOM)]
        assert not is_valid_transcript(transcript)

    def test_halt_on_divergence_definition(self):
        # Definition A.7: the channel halts iff the transcript is invalid.
        conditional = Program.from_steps(
            "conditional",
            [("check", lambda st, m: (BOTTOM, BOTTOM) if m == "bad" else (st, m))],
        )
        good = run_program(conditional, "s", ["ok"])
        bad = run_program(conditional, "s", ["bad"])
        assert is_valid_transcript(good)
        assert not is_valid_transcript(bad)

    def test_message_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_program(self._adder(), 0, [1])

    def test_program_length(self):
        assert len(self._adder()) == 2


# ---------------------------------------------------------------------------
# RDRAND (F2)
# ---------------------------------------------------------------------------
class TestRdRand:
    def test_streams_differ_per_enclave(self):
        master = DeterministicRNG(0)
        a = RdRand(master, 1)
        b = RdRand(master, 2)
        assert a.read_rand(16) != b.read_rand(16)

    def test_reproducible_per_seed(self):
        a = RdRand(DeterministicRNG(0), 1)
        b = RdRand(DeterministicRNG(0), 1)
        assert a.read_rand(16) == b.read_rand(16)

    def test_random_bits_range(self):
        rd = RdRand(DeterministicRNG(0), 0)
        assert all(0 <= rd.random_bits(10) < 1024 for _ in range(100))

    def test_random_range(self):
        rd = RdRand(DeterministicRNG(0), 0)
        assert all(0 <= rd.random_range(7) < 7 for _ in range(100))


# ---------------------------------------------------------------------------
# Trusted time (F4)
# ---------------------------------------------------------------------------
class TestTrustedTime:
    def test_elapsed_tracks_clock(self):
        source = SimulationClock()
        clock = TrustedClock(source)
        source.advance(5.0)
        assert clock.elapsed() == 5.0

    def test_reference_reset(self):
        source = SimulationClock()
        clock = TrustedClock(source)
        source.advance(5.0)
        clock.reset_reference()
        source.advance(2.0)
        assert clock.elapsed() == 2.0

    def test_current_round_lockstep(self):
        source = SimulationClock()
        clock = TrustedClock(source)
        assert clock.current_round(2.0) == 1
        source.advance(1.9)
        assert clock.current_round(2.0) == 1
        source.advance(0.2)
        assert clock.current_round(2.0) == 2
        source.advance(4.0)
        assert clock.current_round(2.0) == 4

    def test_clock_cannot_go_backwards(self):
        from repro.common.errors import ProtocolError

        with pytest.raises(ProtocolError):
            SimulationClock().advance(-1.0)

    def test_bad_round_duration(self):
        from repro.common.errors import ProtocolError

        clock = TrustedClock(SimulationClock())
        with pytest.raises(ProtocolError):
            clock.current_round(0)


# ---------------------------------------------------------------------------
# Measurement + attestation (F3)
# ---------------------------------------------------------------------------
class _ProgramA(EnclaveProgram):
    PROGRAM_NAME = "prog-a"


class _ProgramB(EnclaveProgram):
    PROGRAM_NAME = "prog-b"


class TestMeasurement:
    def test_same_program_same_measurement(self):
        assert measure_program(_ProgramA()) == measure_program(_ProgramA())

    def test_different_programs_differ(self):
        assert measure_program(_ProgramA()) != measure_program(_ProgramB())

    def test_version_changes_measurement(self):
        class _ProgramA2(_ProgramA):
            PROGRAM_VERSION = "2"

        assert measure_program(_ProgramA()) != measure_program(_ProgramA2())


class TestAttestation:
    def _setup(self):
        rng = DeterministicRNG("attest")
        authority = AttestationAuthority(rng)
        return rng, authority

    def test_quote_verifies(self):
        rng, authority = self._setup()
        measurement = measure_program(_ProgramA())
        quote = authority.issue_quote(measurement, b"report", rng)
        authority.verify_quote(quote, measurement)  # should not raise

    def test_wrong_measurement_rejected(self):
        rng, authority = self._setup()
        quote = authority.issue_quote(
            measure_program(_ProgramA()), b"report", rng
        )
        with pytest.raises(AttestationError, match="different program"):
            authority.verify_quote(quote, measure_program(_ProgramB()))

    def test_forged_signature_rejected(self):
        rng, authority = self._setup()
        measurement = measure_program(_ProgramA())
        quote = authority.issue_quote(measurement, b"report", rng)
        from dataclasses import replace

        forged = replace(quote, report_data=b"tampered")
        with pytest.raises(AttestationError, match="signature"):
            authority.verify_quote(forged, measurement)

    def test_different_authorities_do_not_cross_verify(self):
        rng = DeterministicRNG("a1")
        auth1 = AttestationAuthority(rng.fork(1))
        auth2 = AttestationAuthority(rng.fork(2))
        measurement = measure_program(_ProgramA())
        quote = auth1.issue_quote(measurement, b"r", rng)
        with pytest.raises(AttestationError):
            auth2.verify_quote(quote, measurement)


# ---------------------------------------------------------------------------
# Enclave container (F1, P4)
# ---------------------------------------------------------------------------
class TestEnclave:
    def _enclave(self, with_authority=True):
        rng = DeterministicRNG("enclave")
        clock = SimulationClock()
        authority = AttestationAuthority(rng) if with_authority else None
        return Enclave(0, _ProgramA(), rng, clock, authority)

    def test_initial_state_running(self):
        enclave = self._enclave()
        assert enclave.state is EnclaveState.RUNNING
        assert not enclave.halted

    def test_halt_is_sticky(self):
        enclave = self._enclave()
        enclave.halt(rnd=3)
        assert enclave.halted
        assert enclave.halted_round == 3
        with pytest.raises(EnclaveHaltedError):
            enclave.guard()

    def test_halt_idempotent_keeps_first_round(self):
        enclave = self._enclave()
        enclave.halt(rnd=3)
        enclave.halt(rnd=9)
        assert enclave.halted_round == 3

    def test_halted_enclave_refuses_quotes(self):
        enclave = self._enclave()
        enclave.halt()
        with pytest.raises(EnclaveHaltedError):
            enclave.quote(b"report")

    def test_quote_roundtrip_between_enclaves(self):
        rng = DeterministicRNG("pair")
        clock = SimulationClock()
        authority = AttestationAuthority(rng)
        a = Enclave(0, _ProgramA(), rng, clock, authority)
        b = Enclave(1, _ProgramA(), rng, clock, authority)
        quote = a.quote(b"dh-public")
        b.verify_peer_quote(quote, b.measurement)  # same program: accepts

    def test_cross_program_quote_rejected(self):
        rng = DeterministicRNG("pair2")
        clock = SimulationClock()
        authority = AttestationAuthority(rng)
        a = Enclave(0, _ProgramA(), rng, clock, authority)
        b = Enclave(1, _ProgramB(), rng, clock, authority)
        with pytest.raises(AttestationError):
            b.verify_peer_quote(a.quote(b"x"), b.measurement)


# ---------------------------------------------------------------------------
# Sealing
# ---------------------------------------------------------------------------
class TestSealing:
    def test_roundtrip(self):
        rng = DeterministicRNG("seal")
        sealed = seal_data(b"platform", b"measurement", b"secret", rng)
        assert unseal_data(b"platform", b"measurement", sealed) == b"secret"

    def test_wrong_program_rejected(self):
        rng = DeterministicRNG("seal")
        sealed = seal_data(b"platform", b"m1", b"secret", rng)
        with pytest.raises(IntegrityError):
            unseal_data(b"platform", b"m2", sealed)

    def test_wrong_platform_rejected(self):
        rng = DeterministicRNG("seal")
        sealed = seal_data(b"p1", b"m", b"secret", rng)
        with pytest.raises(IntegrityError):
            unseal_data(b"p2", b"m", sealed)

    def test_tampered_blob_rejected(self):
        rng = DeterministicRNG("seal")
        sealed = bytearray(seal_data(b"p", b"m", b"secret", rng))
        sealed[5] ^= 0xFF
        with pytest.raises(IntegrityError):
            unseal_data(b"p", b"m", bytes(sealed))
