"""The bench-regression gate: comparability, thresholds, exit codes.

The gate's contract (``repro.obs.bench`` / ``tools/bench_check.py``):
exit 0 on pass, 1 when the newest ``BENCH_*.json`` entry regresses more
than the threshold against the best *comparable* prior entry, 2 when the
history is structurally unusable.  Comparable means both entries are
stamped and agree on cpu_count, workers and scale — numbers from
different machine shapes are never compared — and on the parallel
engine's data_plane, where absence on both sides (pre-v2 history,
serial runs) is the one None that stays comparable.
"""

from __future__ import annotations

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.bench import (
    check_file,
    check_history,
    entries_comparable,
)

REPO = Path(__file__).resolve().parent.parent
DATA = Path(__file__).parent / "data"


def _load(name: str) -> dict:
    with open(DATA / name, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestComparability:
    def test_same_stamp_is_comparable(self):
        a = {"cpu_count": 4, "workers": 2, "scale": "default"}
        assert entries_comparable(a, dict(a))

    @pytest.mark.parametrize("key", ["cpu_count", "workers", "scale"])
    def test_differing_stamp_key_breaks_comparability(self, key):
        a = {"cpu_count": 4, "workers": 2, "scale": "default"}
        b = dict(a)
        b[key] = "other" if key == "scale" else 99
        assert not entries_comparable(a, b)

    @pytest.mark.parametrize("key", ["cpu_count", "workers", "scale"])
    def test_unstamped_entry_is_never_comparable(self, key):
        a = {"cpu_count": 4, "workers": 2, "scale": "default"}
        b = dict(a)
        del b[key]
        assert not entries_comparable(a, b)

    def test_git_rev_difference_does_not_break_comparability(self):
        a = {"cpu_count": 4, "workers": 2, "scale": "default",
             "git_rev": "aaa"}
        b = dict(a, git_rev="bbb")
        assert entries_comparable(a, b)

    def test_differing_data_plane_breaks_comparability(self):
        """shm and pickle-pipe throughput are different quantities; a v2
        entry must never regress-compare against a v1 stamp."""
        a = {"cpu_count": 4, "workers": 2, "scale": "default",
             "data_plane": "shm"}
        assert not entries_comparable(a, dict(a, data_plane="pickle"))

    def test_stamped_data_plane_vs_unstamped_breaks_comparability(self):
        a = {"cpu_count": 4, "workers": 2, "scale": "default",
             "data_plane": "shm"}
        b = {"cpu_count": 4, "workers": 2, "scale": "default"}
        assert not entries_comparable(a, b)
        assert not entries_comparable(b, a)

    def test_entries_without_data_plane_stay_comparable(self):
        """Unlike the machine-shape keys, absence on *both* sides is fine
        — history predating the field must keep gating itself."""
        a = {"cpu_count": 4, "workers": 2, "scale": "default"}
        assert entries_comparable(a, dict(a))
        assert entries_comparable(a, dict(a, data_plane=None))

    def test_matching_data_plane_stays_comparable(self):
        a = {"cpu_count": 4, "workers": 2, "scale": "default",
             "data_plane": "shm"}
        assert entries_comparable(a, dict(a))


class TestGate:
    def test_mini_fixture_passes(self):
        result = check_history(_load("bench_mini.json"))
        assert result.ok
        assert result.exit_code == 0
        assert result.compared_entries == 1
        assert "PASS" in result.report()

    def test_regression_fixture_fails(self):
        """The checked-in synthetic 20% regression must trip the gate."""
        result = check_history(_load("bench_regression.json"))
        assert not result.ok
        assert result.exit_code == 1
        regressed = [d for d in result.deltas if d.regressed]
        assert [d.case for d in regressed] == ["erb_n64_fanout"]
        assert regressed[0].ratio == pytest.approx(0.80)
        assert "REGRESSED" in result.report()
        assert "FAIL" in result.report()

    def test_regression_within_threshold_passes(self):
        """A 20% drop is fine when the threshold is loosened to 25%."""
        result = check_history(_load("bench_regression.json"), threshold=0.25)
        assert result.ok
        assert result.exit_code == 0

    def test_incomparable_prior_is_ignored(self):
        """Change the prior's machine shape: nothing left to compare, so
        the 20% drop cannot be called a regression."""
        data = _load("bench_regression.json")
        data["history"][0]["cpu_count"] = 64
        result = check_history(data)
        assert result.ok
        assert result.compared_entries == 0
        assert "nothing comparable" in result.report()

    def test_speedup_ratchet_floor(self):
        data = _load("bench_mini.json")
        data["history"][-1]["parallel_speedup_vs_serial"] = 1.0  # < 1.42
        result = check_history(data)
        assert not result.ok
        assert result.exit_code == 1
        assert "parallel_speedup_vs_serial" in result.report()

    def test_new_case_is_not_a_regression(self):
        data = _load("bench_mini.json")
        data["history"][-1]["cases"]["brand_new"] = {
            "messages_per_sec": 1.0
        }
        result = check_history(data)
        assert result.ok
        assert "new case" in result.report()

    def test_real_repo_history_passes(self):
        """The repo's own BENCH_engine.json must pass its own gate."""
        result = check_file(REPO / "BENCH_engine.json")
        assert result.ok, result.report()
        assert result.exit_code == 0

    @pytest.mark.parametrize(
        "data",
        [
            {},
            {"history": []},
            {"history": "not-a-list"},
            {"history": [{"timestamp": "x"}]},  # newest has no cases
        ],
    )
    def test_structural_errors_exit_2(self, data):
        result = check_history(data)
        assert not result.ok
        assert result.exit_code == 2

    def test_unreadable_file_is_structural(self, tmp_path):
        result = check_file(tmp_path / "missing.json")
        assert result.exit_code == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json {")
        assert check_file(garbage).exit_code == 2


class TestCliScript:
    """tools/bench_check.py is the CI surface: pin its exit codes."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_check.py"), *argv],
            capture_output=True,
            text=True,
            timeout=60,
        )

    def test_exit_zero_on_passing_fixture(self):
        proc = self._run(str(DATA / "bench_mini.json"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout

    def test_exit_one_on_regression_fixture(self):
        proc = self._run(str(DATA / "bench_regression.json"))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "REGRESSED" in proc.stdout

    def test_exit_two_on_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1,")
        proc = self._run(str(bad))
        assert proc.returncode == 2

    def test_html_artifact_is_written(self, tmp_path):
        out = tmp_path / "report.html"
        proc = self._run(str(DATA / "bench_mini.json"), "--html", str(out))
        assert proc.returncode == 0
        html = out.read_text()
        assert html.startswith("<!doctype html>")
        assert "erb_n64_fanout" in html
