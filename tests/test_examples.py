"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; these tests keep them from
rotting as the library evolves.  Each runs in a subprocess with the
repository's source tree on the path.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_has_at_least_three():
    assert len(ALL_EXAMPLES) >= 3, ALL_EXAMPLES


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"


def test_quickstart_shows_agreement():
    result = _run("quickstart.py")
    assert "all 16 peers accepted" in result.stdout


def test_attack_demo_shows_bias_gap():
    result = _run("byzantine_attack_demo.py")
    assert "strawman" in result.stdout
    assert "honest nodes SPLIT" in result.stdout
