"""Event vocabulary and JSONL export: lossless round-trips."""

from __future__ import annotations

import pytest

from repro.obs import (
    ChurnEvent,
    DecisionEvent,
    HaltEvent,
    PhaseEvent,
    ProtocolEvent,
    ROUND_PHASES,
    RoundSpan,
    WireEvent,
    event_from_dict,
    event_to_dict,
    read_trace,
    write_trace,
)

SAMPLE_EVENTS = [
    PhaseEvent(rnd=1, phase="begin", count=3),
    WireEvent(
        rnd=1, sender=0, receiver=2, size=100, action="send",
        mtype="INIT", charged=True,
    ),
    WireEvent(
        rnd=1, sender=0, receiver=3, size=100, action="drop_send", actor=0,
    ),
    RoundSpan(
        rnd=1, bytes=200, seconds=0.4, omissions=1, rejections=0,
        live=4, decided=0, halted=[],
    ),
    HaltEvent(rnd=2, node=0, acks=2, threshold=5),
    DecisionEvent(rnd=2, node=1, program="erb", value="b'x'", instance="e-0"),
    ProtocolEvent(
        rnd=2, node=1, name="erb_accept", instance="e-0",
        data={"senders": 5, "quorum": 5},
    ),
    ChurnEvent(
        instance=3, live_byzantine=1, rounds=4, agreement_held=True,
        ejected=[7],
    ),
]


class TestEventDicts:
    @pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: e.kind)
    def test_dict_round_trip_is_lossless(self, event):
        payload = event_to_dict(event)
        assert payload["kind"] == event.kind
        rebuilt = event_from_dict(payload)
        assert rebuilt == event
        assert type(rebuilt) is type(event)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            event_from_dict({"kind": "nope", "rnd": 1})

    def test_round_phases_are_the_documented_six(self):
        assert ROUND_PHASES == (
            "begin", "transmit", "deliver", "ack_wave", "halt_check", "end"
        )


class TestJsonl:
    def test_file_round_trip_is_lossless(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(SAMPLE_EVENTS, path)
        assert read_trace(path) == SAMPLE_EVENTS

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(SAMPLE_EVENTS, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(SAMPLE_EVENTS)
        assert all(line.startswith("{") and line.endswith("}") for line in lines)
