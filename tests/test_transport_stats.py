"""Direct unit tests for the transport layer and traffic statistics."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    EnclaveHaltedError,
    IntegrityError,
    ProtocolError,
    ReplayError,
)
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.net.stats import RoundRecord, RunStats, TrafficStats
from repro.net.transport import FullTransport, ModeledTransport, PlainTransport
from repro.crypto.dh import MODP_768
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock


class _Proto(EnclaveProgram):
    PROGRAM_NAME = "transport-test"


class _Other(EnclaveProgram):
    PROGRAM_NAME = "transport-other"


def _enclaves(count=3, label="tp", authority_needed=False, odd_program=None):
    rng = DeterministicRNG(label)
    clock = SimulationClock()
    authority = AttestationAuthority(rng) if authority_needed else None
    enclaves = {}
    for node in range(count):
        cls = odd_program if (odd_program and node == count - 1) else _Proto
        enclaves[node] = Enclave(node, cls(), rng, clock, authority)
    return enclaves


def _msg(payload=b"p", rnd=1, initiator=0):
    return ProtocolMessage(
        MessageType.ECHO, initiator, 1, payload, rnd, "tp"
    )


class TestModeledTransport:
    def test_roundtrip(self):
        transport = ModeledTransport(_enclaves())
        wire = transport.write(0, 1, _msg())
        assert transport.read(1, wire) == _msg()

    def test_counter_monotone_per_pair(self):
        transport = ModeledTransport(_enclaves())
        w1 = transport.write(0, 1, _msg())
        w2 = transport.write(0, 1, _msg())
        w3 = transport.write(0, 2, _msg())
        assert w2.counter == w1.counter + 1
        assert w3.counter == 1  # independent pair

    def test_replay_rejected(self):
        transport = ModeledTransport(_enclaves())
        wire = transport.write(0, 1, _msg())
        transport.read(1, wire)
        with pytest.raises(ReplayError):
            transport.read(1, wire)

    def test_out_of_order_old_counter_rejected(self):
        transport = ModeledTransport(_enclaves())
        old = transport.write(0, 1, _msg(b"old"))
        new = transport.write(0, 1, _msg(b"new"))
        transport.read(1, new)
        with pytest.raises(ReplayError):
            transport.read(1, old)

    def test_tampered_rejected(self):
        transport = ModeledTransport(_enclaves())
        wire = transport.write(0, 1, _msg())
        with pytest.raises(IntegrityError):
            transport.read(1, wire.tampered_copy())

    def test_misrouted_rejected(self):
        transport = ModeledTransport(_enclaves())
        wire = transport.write(0, 1, _msg())
        with pytest.raises(IntegrityError):
            transport.read(2, wire)

    def test_wrong_program_rejected(self):
        transport = ModeledTransport(
            _enclaves(count=3, odd_program=_Other)
        )
        wire = transport.write(2, 1, _msg())  # node 2 runs _Other
        with pytest.raises(IntegrityError, match="H\\(pi\\)"):
            transport.read(1, wire)

    def test_halted_sender_refused(self):
        enclaves = _enclaves()
        transport = ModeledTransport(enclaves)
        enclaves[0].halt()
        with pytest.raises(EnclaveHaltedError):
            transport.write(0, 1, _msg())

    def test_halted_receiver_refused(self):
        enclaves = _enclaves()
        transport = ModeledTransport(enclaves)
        wire = transport.write(0, 1, _msg())
        enclaves[1].halt()
        with pytest.raises(EnclaveHaltedError):
            transport.read(1, wire)

    def test_size_hint_respected(self):
        transport = ModeledTransport(_enclaves())
        wire = transport.write(0, 1, _msg(), size_hint=1234)
        assert wire.size == 1234

    def test_wires_are_opaque(self):
        transport = ModeledTransport(_enclaves())
        assert transport.write(0, 1, _msg()).opaque


class TestPlainTransport:
    def test_no_replay_protection(self):
        transport = PlainTransport(_enclaves())
        wire = transport.write(0, 1, _msg())
        assert transport.read(1, wire) == _msg()
        assert transport.read(1, wire) == _msg()  # replays sail through

    def test_forgeries_accepted(self):
        from dataclasses import replace

        transport = PlainTransport(_enclaves())
        wire = transport.write(0, 1, _msg(b"real"))
        forged = replace(wire, plain=replace(wire.plain, payload=b"fake"))
        assert transport.read(1, forged).payload == b"fake"

    def test_wires_are_transparent(self):
        transport = PlainTransport(_enclaves())
        assert not transport.write(0, 1, _msg()).opaque


class TestFullTransport:
    def test_establishes_all_pairs(self):
        enclaves = _enclaves(count=4, authority_needed=True)
        transport = FullTransport(enclaves, MODP_768)
        for a in range(4):
            for b in range(4):
                if a == b:
                    continue
                wire = transport.write(a, b, _msg(initiator=a))
                assert transport.read(b, wire) == _msg(initiator=a)

    def test_wire_carries_ciphertext(self):
        enclaves = _enclaves(count=2, authority_needed=True, label="ct")
        transport = FullTransport(enclaves, MODP_768)
        wire = transport.write(0, 1, _msg(b"secret-payload"))
        assert wire.sealed is not None
        assert b"secret-payload" not in wire.sealed


class TestTrafficStats:
    def test_record_and_summary(self):
        stats = TrafficStats()
        stats.record_send(MessageType.INIT, 100, rnd=1)
        stats.record_send(MessageType.ACK, 80, rnd=1)
        stats.record_send(MessageType.ECHO, 100, rnd=2)
        assert stats.messages_sent == 3
        assert stats.bytes_sent == 280
        assert stats.round_bytes(1) == 180
        assert stats.round_bytes(3) == 0
        assert "INIT=1" in stats.summary()

    def test_megabytes(self):
        stats = TrafficStats()
        stats.record_send(MessageType.INIT, 1024 * 1024, rnd=1)
        assert stats.megabytes_sent == pytest.approx(1.0)

    def test_omissions_and_rejections(self):
        stats = TrafficStats()
        stats.record_omission()
        stats.record_rejection()
        stats.record_rejection()
        assert stats.omissions == 1
        assert stats.rejections == 2

    def test_run_stats_termination(self):
        run = RunStats()
        run.rounds.append(RoundRecord(rnd=1, bytes=10, seconds=2.0))
        run.rounds.append(RoundRecord(rnd=2, bytes=20, seconds=3.5))
        assert run.rounds_executed == 2
        assert run.termination_seconds == pytest.approx(5.5)

    def test_record_send_bulk_equals_repeated_sends(self):
        bulk, repeated = TrafficStats(), TrafficStats()
        bulk.record_send_bulk(MessageType.ECHO, total_bytes=700, rnd=2, count=7)
        for _ in range(7):
            repeated.record_send(MessageType.ECHO, 100, rnd=2)
        assert bulk == repeated

    def test_record_send_bulk_zero_count_leaves_no_trace(self):
        stats = TrafficStats()
        stats.record_send_bulk(MessageType.ECHO, total_bytes=0, rnd=1, count=0)
        assert stats == TrafficStats()

    def test_record_send_bulk_rejects_negative(self):
        stats = TrafficStats()
        with pytest.raises(ValueError):
            stats.record_send_bulk(MessageType.ECHO, total_bytes=-1, rnd=1, count=1)
        with pytest.raises(ValueError):
            stats.record_send_bulk(MessageType.ECHO, total_bytes=1, rnd=1, count=-1)

    def test_record_omissions_bulk(self):
        stats = TrafficStats()
        stats.record_omissions(5)
        stats.record_omission()
        assert stats.omissions == 6
        with pytest.raises(ValueError):
            stats.record_omissions(-1)
