"""Regression: the checked-in minimal failing-schedule artifact.

``tests/data/repro-erb-*.json`` was produced by the campaign pipeline
from a fixed master seed: an ``omission+intermittent`` ERB case at
``n=6, t=2`` with the test-only ``corrupt_output`` injection, caught by
the invariant checker and shrunk to the minimal ``n=3, t=0`` spec with
an empty schedule.  These tests pin all three layers at once:

* the shrinker still reduces the *original* spec to the *same* minimal
  spec, deterministically, from the fixed seed;
* replaying the artifact reproduces the recorded violations and
  re-serialises byte-identically (so the schedule compiler, engine and
  invariant checker have not drifted);
* the artifact's bytes on disk are themselves canonical.

If an intentional engine/format change breaks these, regenerate the
artifact with the snippet in this file's history (build_grid with
``master_seed=5`` + shrink + ``write_artifact('tests/data')``) and bump
``ARTIFACT_VERSION`` if the schema changed.
"""

from __future__ import annotations

import glob
import json
import os

from repro.campaign import (
    CaseSpec,
    case_fails,
    read_artifact,
    replay_artifact,
    shrink_case,
)
from repro.campaign.artifact import canonical_json

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def _artifact_path() -> str:
    paths = sorted(glob.glob(os.path.join(DATA_DIR, "repro-erb-*.json")))
    assert len(paths) == 1, paths
    return paths[0]


class TestCheckedInArtifact:
    def test_file_is_canonical_json(self):
        raw = open(_artifact_path(), encoding="utf-8").read()
        assert canonical_json(json.loads(raw)) == raw

    def test_replay_reproduces_and_is_byte_identical(self):
        outcome = replay_artifact(_artifact_path())
        assert outcome.reproduced
        assert outcome.byte_identical
        assert [v.invariant for v in outcome.violations] == [
            "agreement", "validity", "integrity",
        ]

    def test_shrinker_reproduces_the_minimal_schedule(self):
        artifact = read_artifact(_artifact_path())
        assert artifact.original is not None
        shrunk = shrink_case(artifact.original, case_fails)
        assert shrunk.improved
        assert shrunk.spec == artifact.spec
        assert shrunk.runs == artifact.shrink_runs

    def test_minimal_spec_shape(self):
        spec = read_artifact(_artifact_path()).spec
        assert spec == CaseSpec(
            protocol="erb",
            n=3,
            t=0,
            seed=spec.seed,
            strategy="omission+intermittent",
            inject={"kind": "corrupt_output", "node": 2, "value": "evil"},
        )
        assert spec.schedule.faults == ()
