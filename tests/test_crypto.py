"""Tests for the from-scratch crypto substrate (SKE, MAC, AEAD, DH,
Schnorr, HKDF, hashing)."""

from __future__ import annotations

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError, IntegrityError
from repro.common.rng import DeterministicRNG
from repro.crypto import mac, stream_cipher
from repro.crypto.aead import AEAD, AeadKey
from repro.crypto.dh import MODP_2048, MODP_768, DiffieHellman
from repro.crypto.hashing import hash_bytes, hash_hex, hash_to_int
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.schnorr import (
    SchnorrSignature,
    schnorr_keygen,
    schnorr_verify,
)


def _rng(label="crypto-tests"):
    return DeterministicRNG(label)


class TestHashing:
    def test_digest_size(self):
        assert len(hash_bytes(b"x")) == 32

    def test_domain_separation(self):
        assert hash_bytes(b"x", "a") != hash_bytes(b"x", "b")
        assert hash_bytes(b"x", "a") != hash_bytes(b"x")

    def test_plain_hash_matches_sha256(self):
        assert hash_bytes(b"data") == hashlib.sha256(b"data").digest()

    def test_hash_hex(self):
        assert hash_hex(b"x") == hash_bytes(b"x").hex()

    def test_hash_to_int_range(self):
        for modulus in (2, 17, 2**127 - 1):
            assert 0 <= hash_to_int(b"seed", modulus) < modulus

    def test_hash_to_int_invalid_modulus(self):
        with pytest.raises(ValueError):
            hash_to_int(b"x", 0)

    def test_hash_to_int_deterministic(self):
        assert hash_to_int(b"a", 1000) == hash_to_int(b"a", 1000)


class TestMac:
    def test_matches_stdlib_hmac(self):
        key = b"k" * 32
        for message in (b"", b"m", b"x" * 1000):
            assert mac.mac_auth(key, message) == stdlib_hmac.new(
                key, message, hashlib.sha256
            ).digest()

    def test_long_key_matches_stdlib(self):
        key = b"K" * 100  # longer than the block size
        assert mac.mac_auth(key, b"m") == stdlib_hmac.new(
            key, b"m", hashlib.sha256
        ).digest()

    def test_verify_accepts_valid(self):
        key = mac.mac_gen(_rng())
        tag = mac.mac_auth(key, b"msg")
        assert mac.mac_verify(key, b"msg", tag)

    def test_verify_rejects_wrong_message(self):
        key = mac.mac_gen(_rng())
        tag = mac.mac_auth(key, b"msg")
        assert not mac.mac_verify(key, b"other", tag)

    def test_verify_rejects_wrong_key(self):
        rng = _rng()
        tag = mac.mac_auth(mac.mac_gen(rng), b"msg")
        assert not mac.mac_verify(mac.mac_gen(rng), b"msg", tag)

    def test_verify_rejects_truncated_tag(self):
        key = mac.mac_gen(_rng())
        tag = mac.mac_auth(key, b"msg")
        assert not mac.mac_verify(key, b"msg", tag[:-1])

    @given(st.binary(max_size=128), st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_single_bit_flips_rejected(self, message, flip_pos):
        key = b"fixed-key-32-bytes-fixed-key-32b"
        tag = bytearray(mac.mac_auth(key, message))
        tag[flip_pos % len(tag)] ^= 1
        assert not mac.mac_verify(key, message, bytes(tag))


class TestStreamCipher:
    def test_roundtrip(self):
        rng = _rng()
        key = stream_cipher.ske_gen(rng)
        for plaintext in (b"", b"a", b"hello world", b"\x00" * 1000):
            ct = stream_cipher.ske_encrypt(key, plaintext, rng)
            assert stream_cipher.ske_decrypt(key, ct) == plaintext

    def test_ciphertext_randomized(self):
        rng = _rng()
        key = stream_cipher.ske_gen(rng)
        ct1 = stream_cipher.ske_encrypt(key, b"same", rng)
        ct2 = stream_cipher.ske_encrypt(key, b"same", rng)
        assert ct1 != ct2  # fresh nonce per encryption (CPA security)

    def test_wrong_key_garbles(self):
        rng = _rng()
        key1 = stream_cipher.ske_gen(rng)
        key2 = stream_cipher.ske_gen(rng)
        ct = stream_cipher.ske_encrypt(key1, b"secret-secret", rng)
        assert stream_cipher.ske_decrypt(key2, ct) != b"secret-secret"

    def test_bad_key_size_rejected(self):
        with pytest.raises(CryptoError):
            stream_cipher.ske_encrypt(b"short", b"m", _rng())
        with pytest.raises(CryptoError):
            stream_cipher.ske_decrypt(b"short", b"x" * 20)

    def test_short_ciphertext_rejected(self):
        key = stream_cipher.ske_gen(_rng())
        with pytest.raises(CryptoError):
            stream_cipher.ske_decrypt(key, b"tiny")

    @given(st.binary(max_size=300))
    @settings(max_examples=100)
    def test_roundtrip_property(self, plaintext):
        rng = _rng(("ske", plaintext))
        key = stream_cipher.ske_gen(rng)
        assert (
            stream_cipher.ske_decrypt(
                key, stream_cipher.ske_encrypt(key, plaintext, rng)
            )
            == plaintext
        )


class TestAead:
    def _box(self, label="aead"):
        rng = _rng(label)
        return AEAD(AeadKey.generate(rng)), rng

    def test_roundtrip(self):
        box, rng = self._box()
        sealed = box.seal(b"payload", rng)
        assert box.open(sealed) == b"payload"

    def test_associated_data_binds(self):
        box, rng = self._box()
        sealed = box.seal(b"payload", rng, associated_data=b"ctx1")
        with pytest.raises(IntegrityError):
            box.open(sealed, associated_data=b"ctx2")

    def test_tamper_detected(self):
        box, rng = self._box()
        sealed = bytearray(box.seal(b"payload", rng))
        sealed[0] ^= 0xFF
        with pytest.raises(IntegrityError):
            box.open(bytes(sealed))

    def test_tag_tamper_detected(self):
        box, rng = self._box()
        sealed = bytearray(box.seal(b"payload", rng))
        sealed[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            box.open(bytes(sealed))

    def test_short_input_rejected(self):
        box, _ = self._box()
        with pytest.raises(IntegrityError):
            box.open(b"short")

    def test_cross_key_rejected(self):
        box_a, rng = self._box("a")
        box_b, _ = self._box("b")
        with pytest.raises(IntegrityError):
            box_b.open(box_a.seal(b"m", rng))

    def test_overhead_constant(self):
        box, rng = self._box()
        for n in (0, 10, 100):
            assert len(box.seal(b"x" * n, rng)) == n + AEAD.OVERHEAD

    @given(st.binary(max_size=200), st.binary(max_size=32))
    @settings(max_examples=75)
    def test_roundtrip_property(self, plaintext, ad):
        rng = _rng(("aead", plaintext, ad))
        box = AEAD(AeadKey.generate(rng))
        assert box.open(box.seal(plaintext, rng, ad), ad) == plaintext


class TestDiffieHellman:
    def test_shared_secret_agrees(self):
        rng = _rng()
        dh = DiffieHellman(rng, MODP_768)
        alice = dh.generate_keypair()
        bob = dh.generate_keypair()
        assert dh.shared_secret(alice, bob.public) == dh.shared_secret(
            bob, alice.public
        )

    def test_different_pairs_different_secrets(self):
        rng = _rng()
        dh = DiffieHellman(rng, MODP_768)
        a, b, c = (dh.generate_keypair() for _ in range(3))
        assert dh.shared_secret(a, b.public) != dh.shared_secret(a, c.public)

    def test_malformed_public_rejected(self):
        rng = _rng()
        dh = DiffieHellman(rng, MODP_768)
        pair = dh.generate_keypair()
        for bad in (0, 1, MODP_768.prime - 1, MODP_768.prime):
            with pytest.raises(CryptoError):
                dh.shared_secret(pair, bad)

    def test_secret_width_fixed(self):
        rng = _rng()
        dh = DiffieHellman(rng, MODP_768)
        a = dh.generate_keypair()
        b = dh.generate_keypair()
        assert len(dh.shared_secret(a, b.public)) == MODP_768.byte_width

    def test_2048_group_parameters(self):
        # The RFC 3526 prime is a safe prime: (p-1)/2 must be odd.
        assert MODP_2048.prime % 4 == 3
        assert MODP_2048.prime.bit_length() == 2048
        assert MODP_768.prime.bit_length() == 768


class TestSchnorr:
    def test_sign_verify(self):
        rng = _rng()
        pair = schnorr_keygen(rng)
        sig = pair.sign(b"message", rng)
        assert schnorr_verify(pair.group, pair.public, b"message", sig)

    def test_wrong_message_rejected(self):
        rng = _rng()
        pair = schnorr_keygen(rng)
        sig = pair.sign(b"message", rng)
        assert not schnorr_verify(pair.group, pair.public, b"other", sig)

    def test_wrong_key_rejected(self):
        rng = _rng()
        pair = schnorr_keygen(rng)
        other = schnorr_keygen(rng)
        sig = pair.sign(b"message", rng)
        assert not schnorr_verify(other.group, other.public, b"message", sig)

    def test_malleated_signature_rejected(self):
        rng = _rng()
        pair = schnorr_keygen(rng)
        sig = pair.sign(b"message", rng)
        bad = SchnorrSignature(e=sig.e ^ 1, s=sig.s)
        assert not schnorr_verify(pair.group, pair.public, b"message", bad)
        bad = SchnorrSignature(e=sig.e, s=sig.s + 1)
        assert not schnorr_verify(pair.group, pair.public, b"message", bad)

    def test_out_of_range_components_rejected(self):
        rng = _rng()
        pair = schnorr_keygen(rng)
        q = pair.group.subgroup_order
        assert not schnorr_verify(
            pair.group, pair.public, b"m", SchnorrSignature(e=q, s=1)
        )
        assert not schnorr_verify(
            pair.group, pair.public, b"m", SchnorrSignature(e=1, s=-1)
        )

    def test_signature_tuple_roundtrip(self):
        sig = SchnorrSignature(e=123, s=456)
        assert SchnorrSignature.from_tuple(sig.to_tuple()) == sig

    def test_signatures_randomized(self):
        rng = _rng()
        pair = schnorr_keygen(rng)
        assert pair.sign(b"m", rng) != pair.sign(b"m", rng)


class TestHkdf:
    def test_rfc5869_case_1(self):
        # RFC 5869 Appendix A.1 test vector.
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_info(self):
        # RFC 5869 Appendix A.3: zero-length salt and info.
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf(ikm, info=b"", length=42, salt=b"")
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_length_and_info_separation(self):
        key1 = hkdf(b"secret", b"ctx1", 32)
        key2 = hkdf(b"secret", b"ctx2", 32)
        assert len(key1) == 32 and key1 != key2

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"x", b"info", 255 * 32 + 1)
