"""Property-based failure injection for the RNG protocols: agreement
survives randomized adversary mixes (the Definition 2.3 guarantees)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    DelayAdversary,
    RandomOmission,
    ReplayAdversary,
    SelectiveOmission,
    TamperAdversary,
)
from repro.common.config import SimulationConfig
from repro.common.rng import DeterministicRNG
from repro.core.erng import run_erng
from repro.core.erng_optimized import ClusterConfig, run_optimized_erng

from tests.conftest import small_config


def _adversaries(n, count, kinds, rng):
    behaviors = {}
    chosen = sorted(rng.sample(list(range(n)), min(count, len(kinds))))
    for node, kind in zip(chosen, kinds):
        if kind == 0:
            behaviors[node] = RandomOmission(
                rng.fork(("o", node)), send_drop_p=0.4, recv_drop_p=0.2
            )
        elif kind == 1:
            behaviors[node] = SelectiveOmission(
                victims=set(rng.sample(list(range(n)), n // 2))
            )
        elif kind == 2:
            behaviors[node] = DelayAdversary(rng.randint(1, 3))
        elif kind == 3:
            behaviors[node] = TamperAdversary()
        else:
            behaviors[node] = ReplayAdversary()
    return behaviors


@st.composite
def _erng_scenario(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    t = (n - 1) // 2
    kinds = draw(st.lists(st.integers(min_value=0, max_value=4), max_size=t))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return n, t, kinds, seed


class TestErngAgreementProperty:
    @given(_erng_scenario())
    @settings(max_examples=40, deadline=None)
    def test_unoptimized_agreement(self, scenario):
        n, t, kinds, seed = scenario
        rng = DeterministicRNG(("erng-prop", seed))
        behaviors = _adversaries(n, t, kinds, rng)
        result = run_erng(small_config(n, seed=seed), behaviors=behaviors)
        honest = result.honest_outputs(set(behaviors))
        # Agreement (Definition 2.3): one common value among honest nodes.
        assert len(set(honest.values())) <= 1
        # Termination: every surviving honest node decided.
        expected = set(range(n)) - set(behaviors) - set(result.halted)
        assert set(honest) == expected
        # Round bound: t + 2.
        assert result.rounds_executed <= t + 2

    @given(
        st.integers(min_value=12, max_value=30),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_optimized_agreement_fixed_schedule(self, n, seed, kind):
        t = n // 3
        rng = DeterministicRNG(("opt-prop", seed))
        behaviors = _adversaries(n, min(2, t), [kind, (kind + 1) % 4], rng)
        config = SimulationConfig(
            n=n, t=t, seed=seed, extra={"erng_early_stop": False}
        )
        result = run_optimized_erng(
            config,
            cluster=ClusterConfig(mode="fixed_fraction"),
            behaviors=behaviors,
        )
        honest = result.honest_outputs(set(behaviors))
        assert len(set(honest.values())) <= 1

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_outputs_differ_across_seeds(self, seed):
        a = run_erng(small_config(4, seed=seed)).outputs[0]
        b = run_erng(small_config(4, seed=seed + 1000)).outputs[0]
        assert a != b  # 128-bit collision would be astronomical
