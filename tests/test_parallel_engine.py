"""The sharded parallel engine must be invisible in every observable.

``SimulationConfig.workers`` is purely a performance knob: on its
activation domain (honest, measurement-homogeneous, MODELED/NONE) a run
sharded across worker processes must produce byte-identical ``RunResult``
snapshots, logical *and* physical ``TrafficStats`` ledgers and — when
traced — the exact serial event stream, versus the serial envelope path.
These tests pin that equivalence for honest ERB and ERNG across
fidelities and worker counts, the eligibility/fallback predicate, the
coordinator's halt mirroring, multi-instance RNG-stream continuity, the
``TrafficStats.merge`` ledger arithmetic, and a hypothesis property test
over seeds and shard counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ChannelSecurity, SimulationConfig, run_erb, run_erng
from repro.adversary.omission import SelectiveOmission
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType
from repro.core.erb import ErbProgram
from repro.core.erng_optimized import run_optimized_erng
from repro.net.simulator import SynchronousNetwork
from repro.net.stats import TrafficStats
from repro.obs.tracer import Tracer


def _snapshot(result):
    """Every observable of a run the equivalence claim covers — logical
    and physical: the parallel engine replays the serial envelope path's
    coalescing exactly, so even the envelope ledger must match."""
    traffic = result.traffic
    return {
        "messages_sent": traffic.messages_sent,
        "bytes_sent": traffic.bytes_sent,
        "messages_by_type": dict(traffic.messages_by_type),
        "bytes_by_type": dict(traffic.bytes_by_type),
        "bytes_by_round": dict(traffic.bytes_by_round),
        "omissions": traffic.omissions,
        "rejections": traffic.rejections,
        "envelopes_sent": traffic.envelopes_sent,
        "envelope_bytes_sent": traffic.envelope_bytes_sent,
        "outputs": result.outputs,
        "halted": result.halted,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "termination_seconds": result.stats.termination_seconds,
    }


def _workers_config(config: SimulationConfig, workers: int) -> SimulationConfig:
    return SimulationConfig(
        n=config.n,
        t=config.t,
        delta=config.delta,
        bandwidth_bytes_per_s=config.bandwidth_bytes_per_s,
        channel_security=config.channel_security,
        ack_threshold=config.ack_threshold,
        seed=config.seed,
        random_bits=config.random_bits,
        tracer=config.tracer,
        extra=dict(config.extra),
        workers=workers,
    )


_FIDELITIES = [ChannelSecurity.MODELED, ChannelSecurity.NONE]
_WORKER_COUNTS = [2, 4]


# ---------------------------------------------------------------------------
# the determinism suite: workers ∈ {1, 2, 4} are byte-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("security", _FIDELITIES)
@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_honest_erb_parallel_equals_serial(security, workers):
    config = SimulationConfig(n=16, seed=5, channel_security=security)
    serial = run_erb(config, initiator=0, message=b"shard")
    parallel = run_erb(
        _workers_config(config, workers), initiator=0, message=b"shard"
    )
    assert _snapshot(parallel) == _snapshot(serial)
    assert parallel.outputs
    assert all(v == b"shard" for v in parallel.outputs.values())


@pytest.mark.parametrize("security", _FIDELITIES)
@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_honest_erng_parallel_equals_serial(security, workers):
    """ERNG runs N concurrent ERB instances — the heaviest per-receiver
    load, and the workload the speedup acceptance number is measured on."""
    config = SimulationConfig(n=12, seed=8, channel_security=security)
    serial = run_erng(config)
    parallel = run_erng(_workers_config(config, workers))
    assert _snapshot(parallel) == _snapshot(serial)
    assert len(set(parallel.outputs.values())) == 1


def test_optimized_erng_parallel_equals_serial():
    """The optimized ERNG replaces programs across instances on one
    network — the parallel engine must hand back per-node RNG streams so
    instance i+1 continues exactly where a serial run would."""
    config = SimulationConfig(n=12, t=4, seed=21)
    serial = run_optimized_erng(config)
    parallel = run_optimized_erng(_workers_config(config, 4))
    assert _snapshot(parallel) == _snapshot(serial)


# ---------------------------------------------------------------------------
# traced runs: the merged event stream is the serial stream
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("security", _FIDELITIES)
def test_traced_parallel_run_replays_serial_events(security):
    """Per-shard tracers are merged in canonical order: a traced parallel
    run must emit the serial envelope path's event stream exactly —
    phases, wires, envelopes, decisions and round spans."""
    t_par, t_ser = Tracer.memory(), Tracer.memory()
    serial = run_erng(
        SimulationConfig(n=8, seed=3, channel_security=security, tracer=t_ser)
    )
    parallel = run_erng(_workers_config(
        SimulationConfig(n=8, seed=3, channel_security=security, tracer=t_par),
        3,
    ))
    assert parallel.outputs == serial.outputs
    assert t_par.events == t_ser.events


def test_traced_parallel_erb_replays_serial_events():
    t_par, t_ser = Tracer.memory(), Tracer.memory()
    serial = run_erb(
        SimulationConfig(n=9, seed=11, tracer=t_ser), initiator=0, message=b"t"
    )
    parallel = run_erb(
        _workers_config(SimulationConfig(n=9, seed=11, tracer=t_par), 2),
        initiator=0,
        message=b"t",
    )
    assert parallel.outputs == serial.outputs
    assert t_par.events == t_ser.events


# ---------------------------------------------------------------------------
# halts: voluntary mid-run halts propagate through the coordinator mirror
# ---------------------------------------------------------------------------

class _HaltingErb(ErbProgram):
    PROGRAM_NAME = "parallel-halting-erb"

    def on_round_begin(self, ctx):
        if ctx.round == 2 and self.node_id in (1, 5):
            ctx.halt()
            return
        super().on_round_begin(ctx)


def _halting_network(config: SimulationConfig) -> SynchronousNetwork:
    def factory(node_id):
        return _HaltingErb(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"halt" if node_id == 0 else None,
        )

    return SynchronousNetwork(config, factory)


def test_voluntary_halts_parallel_equals_serial():
    config = SimulationConfig(n=10, seed=2)
    serial = _halting_network(config).run(config.t + 2)
    parallel = _halting_network(_workers_config(config, 3)).run(config.t + 2)
    assert _snapshot(parallel) == _snapshot(serial)
    assert parallel.halted == [1, 5]


# ---------------------------------------------------------------------------
# eligibility and fallback
# ---------------------------------------------------------------------------

def _erb_network(config: SimulationConfig, **kwargs) -> SynchronousNetwork:
    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"p" if node_id == 0 else None,
        )

    return SynchronousNetwork(config, factory, **kwargs)


def test_parallel_requires_workers_above_one():
    network = _erb_network(SimulationConfig(n=8, seed=1))
    assert network._parallel_eligible() is False
    network = _erb_network(SimulationConfig(n=8, seed=1, workers=4))
    assert network._parallel_eligible() is True


def test_adversarial_runs_fall_back_to_serial():
    """ROD/omission schedules act on individual wires; they disable the
    envelope path and with it the parallel engine — and the fallback is
    silent: results still match a workers=1 run exactly."""
    config = SimulationConfig(n=12, seed=9, workers=4)
    behaviors = {2: SelectiveOmission(victims=range(3, 9))}
    network = _erb_network(config, behaviors=behaviors)
    assert network._parallel_eligible() is False
    adv = network.run(config.t + 2)

    serial_net = _erb_network(
        _workers_config(config, 1),
        behaviors={2: SelectiveOmission(victims=range(3, 9))},
    )
    serial = serial_net.run(config.t + 2)
    assert _snapshot(adv) == _snapshot(serial)
    assert adv.traffic.omissions > 0


def test_full_channel_falls_back_to_serial():
    """FULL seals draw per-link enclave RNG whose stream order a sharded
    run cannot reproduce; the predicate must decline."""
    config = SimulationConfig(
        n=4, seed=2, workers=4,
        channel_security=ChannelSecurity.FULL,
        extra={"dh_group": "small"},
    )
    network = _erb_network(config)
    assert network._parallel_eligible() is False


def test_explicit_disable_falls_back():
    config = SimulationConfig(
        n=8, seed=1, workers=4, extra={"disable_parallel_engine": True}
    )
    assert _erb_network(config)._parallel_eligible() is False


def test_workers_must_be_positive():
    with pytest.raises(ConfigurationError):
        SimulationConfig(n=4, workers=0)


# ---------------------------------------------------------------------------
# TrafficStats.merge: per-shard ledgers fold into one run total
# ---------------------------------------------------------------------------

def test_traffic_stats_merge_adds_both_ledgers():
    a = TrafficStats()
    a.record_send(MessageType.ECHO, 100, 1)
    a.record_send_bulk(MessageType.ACK, 240, 1, 3, physical=False)
    a.record_envelope(3, 160)
    a.record_omission()

    b = TrafficStats()
    b.record_send(MessageType.ECHO, 50, 2)
    b.record_rejection()
    b.record_omissions(2)

    total = TrafficStats()
    total.merge(a)
    total.merge(b)
    assert total.messages_sent == 5
    assert total.bytes_sent == 390
    assert total.messages_by_type[MessageType.ECHO] == 2
    assert total.messages_by_type[MessageType.ACK] == 3
    assert dict(total.bytes_by_round) == {1: 340, 2: 50}
    assert total.omissions == 3
    assert total.rejections == 1
    # Physical ledger: a's per-wire send (1 crossing, 100 B) + explicit
    # envelope (3 members, 160 B) + b's per-wire send (1 crossing, 50 B).
    assert total.envelopes_sent == 3
    assert total.envelope_bytes_sent == 310


def test_traffic_stats_merge_matches_single_ledger():
    """Merging disjoint shard ledgers is arithmetically identical to
    recording every event on one ledger."""
    single = TrafficStats()
    shards = [TrafficStats() for _ in range(3)]
    for i in range(30):
        target = shards[i % 3]
        for ledger in (single, target):
            ledger.record_send(MessageType.ECHO, 10 + i, 1 + i % 4)
            if i % 5 == 0:
                ledger.record_envelope(2, 15 + i)
            if i % 7 == 0:
                ledger.record_omission()
    merged = TrafficStats()
    for shard in shards:
        merged.merge(shard)
    assert merged == single


# ---------------------------------------------------------------------------
# property test: workers is observationally inert
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.integers(min_value=2, max_value=5),
)
def test_snapshots_worker_invariant(n, seed, workers):
    config = SimulationConfig(n=n, seed=seed)
    serial = run_erng(config)
    parallel = run_erng(_workers_config(config, workers))
    assert _snapshot(parallel) == _snapshot(serial)
