"""Phase-attributed timing must be complete, faithful, and invisible.

Three claims pinned here, matching the acceptance criteria of the
performance-observatory PR:

* **complete** — on every engine path (serial per-wire, envelope,
  sharded parallel) the phase buckets account for at least 90% of the
  measured run wall clock (the collector charges each round's residual
  to ``other``, so the only way to lose coverage is unattributed
  *between*-round time);
* **invisible** — a timed (and traced) run produces byte-identical
  protocol observables to an untimed run: timing is observational only;
* **merged** — worker-side ``PROFILER`` observations survive the fork:
  the coordinator's merged registry reports exactly the counts a serial
  run of the same workload reports (the metrics-loss fix).
"""

from __future__ import annotations

import pytest

from repro import ChannelSecurity, SimulationConfig, run_erb, run_erng
from repro.obs.events import MetaEvent, TimingEvent
from repro.obs.metrics import PROFILER
from repro.obs.timing import PHASE_BUCKETS, TimingCollector
from repro.obs.tracer import MemorySink, Tracer


def _snapshot(result):
    """The protocol observables a timing collector must not perturb."""
    traffic = result.traffic
    return {
        "messages_sent": traffic.messages_sent,
        "bytes_sent": traffic.bytes_sent,
        "messages_by_type": dict(traffic.messages_by_type),
        "bytes_by_round": dict(traffic.bytes_by_round),
        "omissions": traffic.omissions,
        "rejections": traffic.rejections,
        "envelopes_sent": traffic.envelopes_sent,
        "envelope_bytes_sent": traffic.envelope_bytes_sent,
        "outputs": result.outputs,
        "halted": result.halted,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "termination_seconds": result.stats.termination_seconds,
    }


def _run(protocol, timing=None, tracer=None, **config_kwargs):
    config = SimulationConfig(timing=timing, tracer=tracer, **config_kwargs)
    if protocol == "erb":
        return run_erb(config, initiator=0, message=b"timed")
    return run_erng(config)


class TestCoverage:
    """Bucket sums must cover >= 90% of the measured wall on every path."""

    @pytest.mark.parametrize(
        "engine,kwargs",
        [
            ("envelope", dict(n=64, seed=3)),
            ("serial", dict(n=12, seed=3,
                            channel_security=ChannelSecurity.FULL,
                            extra={"disable_envelope_fast_path": True})),
            ("parallel", dict(n=16, seed=3, workers=2)),
        ],
    )
    def test_coverage_at_least_90_percent(self, engine, kwargs):
        timing = TimingCollector()
        _run("erb", timing=timing, **kwargs)
        assert timing.engine == engine
        assert timing.wall_seconds > 0
        assert timing.coverage() >= 0.9, (
            f"{engine}: buckets cover {timing.coverage():.1%} of wall"
        )
        # every bucket the collector used is a documented phase
        assert set(timing.totals) <= set(PHASE_BUCKETS)

    def test_round_buckets_cover_round_wall(self):
        timing = TimingCollector()
        _run("erb", timing=timing, n=64, seed=3)
        assert timing.rounds
        for record in timing.rounds:
            bucket_sum = sum(record["buckets"].values())
            # residual is charged to "other", so per-round coverage is
            # exact up to float noise
            assert bucket_sum == pytest.approx(record["wall"], rel=1e-6)

    def test_parallel_records_per_shard_breakdown(self):
        timing = TimingCollector()
        _run("erng", timing=timing, n=12, seed=8, workers=2)
        assert timing.engine == "parallel"
        assert timing.coverage() >= 0.9
        shard_rounds = [r for r in timing.rounds if r["shards"]]
        assert shard_rounds, "no per-shard records on the parallel path"
        for record in shard_rounds:
            shards = {s["shard"] for s in record["shards"]}
            assert shards == {0, 1}
            for shard in record["shards"]:
                assert shard["busy"] >= 0.0
                assert shard["idle"] >= 0.0
                # shard buckets cover the shard's busy time (residual in
                # the shard's own "other")
                assert sum(shard["buckets"].values()) == pytest.approx(
                    shard["busy"], rel=1e-6
                )


class TestInvisibility:
    """Timed (and traced) runs are byte-identical to untimed runs."""

    def test_envelope_timed_equals_untimed(self):
        baseline = _run("erb", n=64, seed=3)
        sink = MemorySink()
        timed = _run(
            "erb", timing=TimingCollector(), tracer=Tracer(sink),
            n=64, seed=3,
        )
        assert _snapshot(timed) == _snapshot(baseline)
        timing_events = [
            e for e in sink.events if isinstance(e, TimingEvent)
        ]
        assert len(timing_events) == timed.rounds_executed
        for event in timing_events:
            assert event.wall > 0
            assert sum(event.buckets.values()) == pytest.approx(
                event.wall, rel=1e-6
            )

    def test_parallel_timed_equals_untimed(self):
        baseline = _run("erng", n=12, seed=8, workers=2)
        timed = _run(
            "erng", timing=TimingCollector(), n=12, seed=8, workers=2
        )
        assert _snapshot(timed) == _snapshot(baseline)

    def test_serial_full_timed_equals_untimed(self):
        kwargs = dict(
            n=12, seed=3, channel_security=ChannelSecurity.FULL,
            extra={"disable_envelope_fast_path": True},
        )
        baseline = _run("erb", **kwargs)
        timed = _run("erb", timing=TimingCollector(), **kwargs)
        assert _snapshot(timed) == _snapshot(baseline)

    def test_collector_accumulates_across_runs(self):
        timing = TimingCollector()
        _run("erb", timing=timing, n=16, seed=1)
        rounds_first = len(timing.rounds)
        wall_first = timing.wall_seconds
        _run("erb", timing=timing, n=16, seed=2)
        assert len(timing.rounds) > rounds_first
        assert timing.wall_seconds > wall_first

    def test_as_dict_round_trips_to_json(self):
        import json

        timing = TimingCollector()
        _run("erng", timing=timing, n=12, seed=8, workers=2)
        payload = json.loads(json.dumps(timing.as_dict()))
        assert payload["kind"] == "timing"
        assert payload["engine"] == "parallel"
        assert payload["bucket_order"] == list(PHASE_BUCKETS)
        assert payload["rounds"]


class TestProfilerMerge:
    """Worker-side PROFILER counts must survive the fork (the fix for
    silently dropped parallel metrics)."""

    def _profiled_counts(self, workers):
        registry = PROFILER.enable()
        try:
            _run("erng", n=12, seed=8, workers=workers)
            return (
                {n: h.count for n, h in registry._histograms.items()},
                {n: h.total for n, h in registry._histograms.items()},
            )
        finally:
            PROFILER.disable()

    def test_parallel_profiler_counts_equal_serial(self):
        serial_counts, serial_totals = self._profiled_counts(1)
        parallel_counts, parallel_totals = self._profiled_counts(2)
        assert serial_counts, "serial run produced no profiler samples"
        # exact count equality: same workload, every worker observation
        # shipped home and merged
        assert parallel_counts == serial_counts
        # totals are wall-clock and differ, but must all be populated
        for name, total in parallel_totals.items():
            assert total > 0, f"{name} merged to an empty histogram"

    def test_worker_observations_actually_merge(self):
        """The merged registry must contain MORE than the coordinator
        alone could observe: with workers=2 the serialize.encode_s calls
        happen inside worker processes."""
        counts, _ = self._profiled_counts(2)
        assert counts.get("serialize.encode_s", 0) > 0


class TestMetaEvent:
    def test_meta_event_round_trips(self):
        from repro.obs.events import event_from_dict, event_to_dict
        from repro.obs.machine import machine_stamp

        event = MetaEvent(machine=machine_stamp(workers=2, data_plane="shm"))
        payload = event_to_dict(event)
        assert payload["kind"] == "meta"
        rebuilt = event_from_dict(payload)
        assert rebuilt == event
        assert rebuilt.machine["workers"] == 2
        assert rebuilt.machine["data_plane"] == "shm"
        assert rebuilt.machine["cpu_count"] is not None

    def test_stamp_omits_absent_fields(self):
        from repro.obs.machine import machine_stamp, stamps_comparable

        stamp = machine_stamp()
        assert "workers" not in stamp and "data_plane" not in stamp
        assert stamps_comparable(
            machine_stamp(workers=2), machine_stamp(workers=2)
        )
        assert not stamps_comparable(
            machine_stamp(workers=2, data_plane="shm"),
            machine_stamp(workers=2, data_plane="pickle"),
        )
        assert not stamps_comparable(
            machine_stamp(workers=2, data_plane="shm"),
            machine_stamp(workers=2),
        )
