"""Interactive consistency and byzantine agreement built on ERB."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import DelayAdversary, SelectiveOmission, TamperAdversary
from repro.common.errors import ConfigurationError
from repro.core.agreement import (
    majority_rule,
    median_rule,
    run_byzantine_agreement,
    run_interactive_consistency,
)

from tests.conftest import small_config


class TestResolutionRules:
    def test_majority_basic(self):
        rule = majority_rule()
        assert rule({0: "A", 1: "A", 2: "B"}) == "A"

    def test_majority_ignores_bottom(self):
        rule = majority_rule()
        assert rule({0: None, 1: "B", 2: None}) == "B"

    def test_majority_empty_default(self):
        rule = majority_rule(default="fallback")
        assert rule({0: None, 1: None}) == "fallback"

    def test_majority_tie_deterministic(self):
        rule = majority_rule()
        vector = {0: "A", 1: "B"}
        assert rule(vector) == rule(dict(reversed(list(vector.items()))))

    def test_median(self):
        rule = median_rule()
        assert rule({0: 5, 1: 1, 2: 9}) == 5
        assert rule({0: 1, 1: 2, 2: 3, 3: 4}) == 2  # lower median

    def test_median_empty_default(self):
        assert median_rule(default=0)({0: None}) == 0


class TestInteractiveConsistency:
    def test_honest_vectors_identical_and_complete(self):
        n = 7
        inputs = {i: f"v{i}" for i in range(n)}
        result = run_interactive_consistency(small_config(n, seed=1), inputs)
        vectors = set(result.outputs.values())
        assert len(vectors) == 1
        vector = dict(vectors.pop())
        assert vector == inputs

    def test_silent_node_maps_to_bottom_for_everyone(self):
        n = 7
        inputs = {i: i * 10 for i in range(n)}
        result = run_interactive_consistency(
            small_config(n, seed=2), inputs,
            behaviors={3: DelayAdversary(n)},
        )
        vectors = {
            v for node, v in result.outputs.items() if node != 3
        }
        assert len(vectors) == 1
        vector = dict(vectors.pop())
        assert vector[3] is None
        assert all(vector[i] == i * 10 for i in range(n) if i != 3)

    def test_missing_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_interactive_consistency(small_config(3), {0: "x"})


class TestByzantineAgreement:
    def test_agreement_and_validity_unanimous(self):
        n = 7
        inputs = {i: "same" for i in range(n)}
        result = run_byzantine_agreement(small_config(n, seed=3), inputs)
        assert set(result.outputs.values()) == {"same"}

    def test_agreement_mixed_inputs(self):
        n = 9
        inputs = {i: ("X" if i < 6 else "Y") for i in range(n)}
        result = run_byzantine_agreement(small_config(n, seed=4), inputs)
        assert set(result.outputs.values()) == {"X"}

    def test_agreement_under_tamperer(self):
        n = 9
        inputs = {i: "v" for i in range(n)}
        result = run_byzantine_agreement(
            small_config(n, seed=5), inputs,
            behaviors={2: TamperAdversary()},
        )
        honest = result.honest_outputs({2})
        assert set(honest.values()) == {"v"}

    def test_agreement_under_selective_omission(self):
        n = 9
        inputs = {i: i % 3 for i in range(n)}
        result = run_byzantine_agreement(
            small_config(n, seed=6), inputs,
            behaviors={0: SelectiveOmission(victims=set(range(1, 6)))},
        )
        honest = result.honest_outputs({0})
        assert len(set(honest.values())) == 1

    def test_median_rule_for_numeric_agreement(self):
        n = 5
        inputs = {0: 10, 1: 20, 2: 30, 3: 40, 4: 50}
        result = run_byzantine_agreement(
            small_config(n, seed=7), inputs, rule=median_rule()
        )
        assert set(result.outputs.values()) == {30}

    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_agreement_property(self, n, seed):
        rng_inputs = {i: (i * seed) % 3 for i in range(n)}
        byzantine = {n - 1: DelayAdversary(1 + seed % 3)} if n >= 5 else None
        result = run_byzantine_agreement(
            small_config(n, seed=seed), rng_inputs, behaviors=byzantine
        )
        honest = result.honest_outputs(set(byzantine or ()))
        assert len(set(honest.values())) == 1
