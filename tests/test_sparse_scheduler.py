"""Active-set sparse scheduling must be invisible in every observable.

``extra["scheduler"]`` is purely a performance knob: a sparse run visits
only the nodes that can act each round, but its ``RunResult`` snapshot,
logical *and* physical traffic ledgers, and traced event streams must be
byte-identical to the dense sweep's — on the serial per-wire path, the
envelope path and the sharded parallel engine, over both data planes.
These tests pin that equivalence with a hypothesis property test across
ERB / ERNG / optimized-ERNG, plus the contract around it: the
``sparse_aware`` subclass-voiding rule, ``auto`` resolution, the skip
counters, the knob's validation, and the active-set cache eviction
(neighbour tuples + ACK-digest LRU) on halts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, run_erb, run_erng
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType, ProtocolMessage
from repro.core.erng_optimized import run_optimized_erng
from repro.net.simulator import SynchronousNetwork
from repro.obs.tracer import Tracer
from repro.sgx.program import EnclaveProgram, sparse_aware

from tests.test_parallel_engine import _snapshot, _workers_config


def _run(protocol, config, tracer=None):
    if tracer is not None:
        config = SimulationConfig(
            n=config.n, t=config.t, seed=config.seed, workers=config.workers,
            channel_security=config.channel_security,
            extra=dict(config.extra), tracer=tracer,
        )
    if protocol == "erb":
        return run_erb(config, initiator=0, message=b"sparse-eq")
    if protocol == "erng":
        return run_erng(config)
    return run_optimized_erng(config)


def _config(protocol, n, seed, scheduler, workers, data_plane):
    extra = {"scheduler": scheduler}
    if data_plane is not None:
        extra["parallel_data_plane"] = data_plane
    t = n // 3 if protocol == "erng-opt" else None
    kwargs = {"t": t} if t is not None else {}
    return SimulationConfig(
        n=n, seed=seed, workers=workers, extra=extra, **kwargs
    )


# ---------------------------------------------------------------------------
# the equivalence property: sparse == dense, byte for byte
# ---------------------------------------------------------------------------

@st.composite
def _equivalence_case(draw):
    protocol = draw(st.sampled_from(["erb", "erng", "erng-opt"]))
    n = draw(st.integers(min_value=8, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    workers = draw(st.sampled_from([1, 2]))
    data_plane = (
        draw(st.sampled_from(["shm", "pickle"])) if workers > 1 else None
    )
    return protocol, n, seed, workers, data_plane


@given(_equivalence_case())
@settings(max_examples=25, deadline=None)
def test_sparse_equals_dense_byte_identical(case):
    """Snapshots, both traffic ledgers and the traced event stream agree
    between scheduler modes on every engine path."""
    protocol, n, seed, workers, data_plane = case
    t_sparse, t_dense = Tracer.memory(), Tracer.memory()
    sparse = _run(
        protocol,
        _config(protocol, n, seed, "sparse", workers, data_plane),
        tracer=t_sparse,
    )
    dense = _run(
        protocol,
        _config(protocol, n, seed, "dense", workers, data_plane),
        tracer=t_dense,
    )
    assert _snapshot(sparse) == _snapshot(dense)
    assert t_sparse.events == t_dense.events


@pytest.mark.parametrize("protocol", ["erb", "erng", "erng-opt"])
@pytest.mark.parametrize("workers", [1, 2])
def test_sparse_equals_dense_pinned_seed(protocol, workers):
    """The deterministic anchor of the property above (fast to bisect)."""
    sparse = _run(protocol, _config(protocol, 12, 7, "sparse", workers, None))
    dense = _run(protocol, _config(protocol, 12, 7, "dense", workers, None))
    assert _snapshot(sparse) == _snapshot(dense)


# ---------------------------------------------------------------------------
# the contract: declarations, auto resolution, counters, validation
# ---------------------------------------------------------------------------

class _Aware(EnclaveProgram):
    PROGRAM_NAME = "sparse-aware"
    SPARSE_AWARE = True

    def on_round_end(self, ctx) -> None:
        if ctx.round >= 2 and not self.has_output:
            self._accept(ctx, b"done")

    def sparse_wake_round(self, rnd):
        return None if self.has_output else max(rnd + 1, 2)


class _VoidedByOverride(_Aware):
    """Overrides a vouched-for hook below the declaring class: the
    inherited promise no longer covers the new spontaneous behaviour."""

    def on_round_begin(self, ctx) -> None:
        pass


class _Redeclared(_VoidedByOverride):
    """Re-declaring SPARSE_AWARE in the overriding class renews the
    promise for the full override set."""

    SPARSE_AWARE = True


class _OptedOut(_Aware):
    SPARSE_AWARE = False


class _Plain(EnclaveProgram):
    PROGRAM_NAME = "sparse-plain"

    def on_round_end(self, ctx) -> None:
        if ctx.round >= 2 and not self.has_output:
            self._accept(ctx, b"done")


def test_sparse_aware_subclass_voiding_rule():
    assert sparse_aware(_Aware()) is True
    assert sparse_aware(_VoidedByOverride()) is False
    assert sparse_aware(_Redeclared()) is True
    assert sparse_aware(_OptedOut()) is False
    assert sparse_aware(_Plain()) is False


def test_auto_resolution_follows_awareness():
    aware_net = SynchronousNetwork(
        SimulationConfig(n=4, seed=1), lambda i: _Aware()
    )
    assert aware_net.scheduler == "sparse"
    plain_net = SynchronousNetwork(
        SimulationConfig(n=4, seed=1), lambda i: _Plain()
    )
    assert plain_net.scheduler == "dense"
    voided_net = SynchronousNetwork(
        SimulationConfig(n=4, seed=1), lambda i: _VoidedByOverride()
    )
    assert voided_net.scheduler == "dense"


def test_forced_sparse_keeps_non_aware_programs_on_always_list():
    """Mixed populations stay correct: non-aware programs are visited
    every round even under a forced-sparse scheduler."""
    def run(scheduler):
        net = SynchronousNetwork(
            SimulationConfig(n=6, seed=3, extra={"scheduler": scheduler}),
            lambda i: _Plain() if i % 2 else _Aware(),
        )
        return net.run(max_rounds=4), net

    sparse, sparse_net = run("sparse")
    dense, _ = run("dense")
    assert _snapshot(sparse) == _snapshot(dense)
    assert sparse_net.scheduler == "sparse"
    # The always list pins the three _Plain nodes into every visit.
    assert sparse_net.sched_counters["begin_visited"] >= 3 * 2


def test_sched_counters_account_for_every_node_round():
    net = SynchronousNetwork(
        SimulationConfig(n=8, seed=5, extra={"scheduler": "sparse"}),
        lambda i: _Aware(),
    )
    result = net.run(max_rounds=4)
    assert result.rounds_executed == 2
    counters = net.sched_counters
    total_rounds = result.rounds_executed * 8
    assert counters["begin_visited"] + counters["begin_skipped"] == total_rounds
    assert counters["end_visited"] + counters["end_skipped"] == total_rounds
    # Round 1 visits everyone (initial wake); round 2 is the deadline
    # wake — _Aware never sleeps past its accept round here, but a dense
    # run would report zero skips:
    dense_net = SynchronousNetwork(
        SimulationConfig(n=8, seed=5, extra={"scheduler": "dense"}),
        lambda i: _Aware(),
    )
    dense_net.run(max_rounds=4)
    assert all(v == 0 for v in dense_net.sched_counters.values())


def test_scheduler_knob_validation():
    with pytest.raises(ConfigurationError):
        SynchronousNetwork(
            SimulationConfig(n=4, seed=0, extra={"scheduler": "bogus"}),
            lambda i: _Plain(),
        )


# ---------------------------------------------------------------------------
# active-set cache eviction on halts / churn
# ---------------------------------------------------------------------------

class _HaltSecond(EnclaveProgram):
    """Node 1 voluntarily halts in round 2 after multicasting in round 1
    — the mid-run active-set change the caches must survive."""

    PROGRAM_NAME = "halt-second"

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1:
            ctx.multicast(
                ProtocolMessage(
                    MessageType.ECHO, ctx.node_id, 1, b"pre-halt", 0,
                    "halt-second",
                ),
                expect_acks=False,
            )

    def on_round_end(self, ctx) -> None:
        if ctx.round == 2 and ctx.node_id == 1:
            ctx.halt()
        if ctx.round >= 3 and not self.has_output:
            self._accept(ctx, b"done")


def test_halt_evicts_departed_node_from_caches():
    net = SynchronousNetwork(
        SimulationConfig(n=5, seed=9), lambda i: _HaltSecond()
    )
    # Prime the caches the way a running protocol would: neighbour
    # tuples for the fan-outs, digest-LRU entries keyed by sender
    # (key[2] is the sender in the ACK-digest LRU).
    for node in range(5):
        net.neighbour_tuple(node)
    net._digest_cache[("halt-second", 1, 1, 1)] = b"from-node-1"
    net._digest_cache[("halt-second", 1, 0, 1)] = b"from-node-0"
    result = net.run(max_rounds=5)
    assert result.halted == [1]
    # The departed node's cached views are gone; survivors' remain —
    # eviction is per-node, not a flush.
    assert 1 not in net._neighbour_cache
    assert all(key[2] != 1 for key in net._digest_cache)
    assert ("halt-second", 1, 0, 1) in net._digest_cache
    assert result.outputs.keys() == {0, 2, 3, 4}


def test_evict_departed_node_is_selective():
    net = SynchronousNetwork(
        SimulationConfig(n=4, seed=2), lambda i: _Plain()
    )
    # Prime the neighbour cache for two nodes, then evict one.
    net.neighbour_tuple(0)
    net.neighbour_tuple(1)
    net.evict_departed_node(1)
    assert 1 not in net._neighbour_cache
    assert 0 in net._neighbour_cache
