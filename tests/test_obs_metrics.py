"""Metrics registry, profiler switch, and the TrafficStats feed."""

from __future__ import annotations

import pytest

from repro.common.types import MessageType
from repro.net.stats import RoundRecord, RunStats, TrafficStats
from repro.obs import PROFILER, MetricsRegistry


class TestPrimitives:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("c") is counter  # get-or-create
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram_percentiles(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.p50 == 50.0
        assert histogram.p95 == 95.0
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(50.5)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p95"] == 95.0

    def test_histogram_decimation_keeps_memory_bounded(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.max_samples = 64
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._samples) <= 65
        assert histogram.max <= 999.0

    def test_histogram_percentile_empty(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(50) == 0.0
        assert histogram.percentile(100) == 0.0
        assert histogram.p50 == 0.0
        assert histogram.max == 0.0
        assert histogram.mean == 0.0

    def test_histogram_percentile_single_sample(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(7.0)
        for p in (0, 1, 50, 99, 100):
            assert histogram.percentile(p) == 7.0

    def test_histogram_percentile_extremes(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        # nearest-rank: p=0 clamps to the first sample, p=100 is the max
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 3.0
        assert histogram.percentile(50) == 2.0

    def test_histogram_merge_dump_adds_counts_and_totals(self):
        a = MetricsRegistry().histogram("h")
        b = MetricsRegistry().histogram("h")
        for value in range(10):
            a.observe(float(value))
        for value in range(10, 30):
            b.observe(float(value))
        a.merge_dump(b.dump())
        assert a.count == 30
        assert a.total == pytest.approx(sum(range(30)))
        assert a.max == 29.0
        assert a.percentile(100) == 29.0

    def test_registry_merge_dump(self):
        parent = MetricsRegistry()
        parent.counter("c").inc(3)
        parent.gauge("g").set(1.0)
        parent.histogram("h").observe(1.0)
        child = MetricsRegistry()
        child.counter("c").inc(4)
        child.counter("only_child").inc(1)
        child.gauge("g").set(9.0)
        child.histogram("h").observe(2.0)
        parent.merge_dump(child.dump())
        assert parent.counter("c").value == 7
        assert parent.counter("only_child").value == 1
        assert parent.gauge("g").value == 9.0  # last write wins
        assert parent.histogram("h").count == 2
        assert parent.histogram("h").total == pytest.approx(3.0)

    def test_timer_observes_elapsed_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        histogram = registry.histogram("t")
        assert histogram.count == 1
        assert histogram.max >= 0.0

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(7)
        registry.histogram("c").observe(1.0)
        snap = registry.as_dict()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 7}
        assert snap["histograms"]["c"]["count"] == 1


class TestProfiler:
    def test_disabled_by_default_and_observe_is_noop(self):
        assert PROFILER.enabled is False
        PROFILER.observe("x", 1.0)  # must not raise with no registry

    def test_enable_observe_disable(self):
        registry = PROFILER.enable()
        try:
            assert PROFILER.enabled is True
            PROFILER.observe("channel.write_s", 0.25)
            with PROFILER.time("channel.read_s"):
                pass
            assert registry.histogram("channel.write_s").count == 1
            assert registry.histogram("channel.read_s").count == 1
        finally:
            PROFILER.disable()
        assert PROFILER.enabled is False
        assert PROFILER.registry is None


class TestStatsPublishing:
    def test_negative_send_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TrafficStats().record_send(MessageType.INIT, -1, rnd=1)

    def test_bytes_by_round_is_a_counter(self):
        traffic = TrafficStats()
        traffic.record_send(MessageType.INIT, 100, rnd=1)
        traffic.record_send(MessageType.ECHO, 50, rnd=1)
        traffic.record_send(MessageType.ACK, 10, rnd=2)
        assert traffic.round_bytes(1) == 150
        assert traffic.round_bytes(2) == 10
        assert traffic.round_bytes(99) == 0  # missing round, no KeyError

    def test_traffic_publish_feeds_registry(self):
        traffic = TrafficStats()
        traffic.record_send(MessageType.INIT, 100, rnd=1)
        traffic.record_send(MessageType.ECHO, 60, rnd=2)
        traffic.record_omission()
        registry = MetricsRegistry()
        traffic.publish(registry)
        assert registry.counter("traffic.messages_sent").value == 2
        assert registry.counter("traffic.bytes_sent").value == 160
        assert registry.counter("traffic.omissions").value == 1
        assert registry.counter("traffic.messages.INIT").value == 1
        assert registry.histogram("traffic.bytes_per_round").count == 2

    def test_run_stats_publish(self):
        stats = RunStats()
        stats.rounds.append(RoundRecord(rnd=1, bytes=100, seconds=0.4))
        stats.rounds.append(RoundRecord(rnd=2, bytes=80, seconds=0.4))
        stats.traffic.record_send(MessageType.INIT, 100, rnd=1)
        registry = MetricsRegistry()
        stats.publish(registry)
        assert registry.counter("run.rounds").value == 2
        assert registry.histogram("run.round_seconds").count == 2
        assert registry.counter("run.traffic.messages_sent").value == 1
