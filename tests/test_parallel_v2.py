"""The v2 parallel data plane must be invisible in every observable.

The v2 engine replaced the per-round pickle round-trips with
shared-memory ring buffers, batched the per-wave crypto, and streamed
staged intents through the barrier.  None of that may show: these tests
pin the ring's framing discipline, the byte-identity of the shm and
pickle-pipe data planes against each other and against serial (results,
dual ledgers, traced event streams, timed vs untimed), the batched
transport verbs against their per-link loops, the one-line fallback
warning, and the coordinator's barrier attribution (< 0.3 of wall at
workers = 2 — the number that was 0.96 under the v1 protocol).
"""

from __future__ import annotations

import logging
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ChannelSecurity, SimulationConfig, run_erb, run_erng
from repro.adversary.omission import SelectiveOmission
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.core.erb import ErbProgram
from repro.net.parallel import planned_data_plane, resolve_data_plane
from repro.net.shm import (
    DATA_PLANE_PICKLE,
    DATA_PLANE_SHM,
    ShmRing,
    shared_memory_available,
)
from repro.net.simulator import SynchronousNetwork
from repro.net.transport import ModeledTransport, PlainTransport
from repro.obs.timing import TimingCollector
from repro.obs.tracer import Tracer
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock

from tests.test_parallel_engine import _snapshot, _workers_config

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


# ---------------------------------------------------------------------------
# ShmRing: framing, wrap, continuation, flow control
# ---------------------------------------------------------------------------

def test_ring_roundtrips_frames_in_order():
    ring = ShmRing(capacity=4096, create=True)
    try:
        frames = [b"", b"x", b"abc" * 7, bytes(range(256))]
        for frame in frames:
            ring.put(frame)
        for expected in frames:
            got = ring.try_get()
            assert got is not None
            assert bytes(got) == expected
            del got  # release the zero-copy view before closing the ring
            ring.consume()
        assert ring.try_get() is None
    finally:
        ring.close()


def test_ring_wraps_without_corrupting_frames():
    """Frames whose sizes do not divide the capacity force wrap markers
    and burnt tails; every frame must still come back intact."""
    ring = ShmRing(capacity=256, create=True)
    try:
        for i in range(200):
            payload = bytes([i % 251]) * (7 + i % 29)
            ring.put(payload)
            got = ring.try_get()
            assert got is not None and bytes(got) == payload
            del got
            ring.consume()
    finally:
        ring.close()


def test_ring_chunks_oversized_frames():
    """A frame bigger than half the capacity travels as continuation
    chunks and reassembles into one bytes object.  The writer blocks on
    ring space until the reader drains, so it runs on its own thread —
    exactly the cross-process flow-control discipline the engine uses."""
    ring = ShmRing(capacity=512, create=True)
    payload = bytes(range(256)) * 13  # 3328 B >> 512 B ring
    writer = threading.Thread(target=ring.put, args=(payload,))
    try:
        writer.start()
        got = ring.try_get()
        while got is None:
            got = ring.try_get()
        assert isinstance(got, bytes)
        assert got == payload
        ring.consume()
        writer.join(timeout=10)
        assert not writer.is_alive()
        assert ring.try_get() is None
    finally:
        writer.join(timeout=1)
        ring.close()


def test_ring_interleaves_small_and_oversized_frames():
    ring = ShmRing(capacity=1024, create=True)
    frames = [b"small", bytes(range(256)) * 9, b"tail"]

    def write_all():
        for frame in frames:
            ring.put(frame)

    writer = threading.Thread(target=write_all)
    try:
        writer.start()
        for expected in frames:
            got = ring.try_get()
            while got is None:
                got = ring.try_get()
            assert bytes(got) == expected
            del got
            ring.consume()
        writer.join(timeout=10)
        assert not writer.is_alive()
    finally:
        writer.join(timeout=1)
        ring.close()


def test_ring_consume_frees_space_for_the_writer():
    """The writer's free-space check must see consumed frames: fill the
    ring, drain it, and fill it again (regression guard for the cursor
    arithmetic — a stale read cursor deadlocks the second fill)."""
    ring = ShmRing(capacity=256, create=True)
    try:
        payload = b"z" * 64
        for _ in range(3):
            for _ in range(2):
                ring.put(payload)
            for _ in range(2):
                got = ring.try_get()
                assert got is not None and bytes(got) == payload
                del got
                ring.consume()
    finally:
        ring.close()


# ---------------------------------------------------------------------------
# data-plane resolution
# ---------------------------------------------------------------------------

def test_resolve_data_plane_honors_explicit_choice():
    assert resolve_data_plane({"parallel_data_plane": "pickle"}) \
        == DATA_PLANE_PICKLE
    assert resolve_data_plane({"parallel_data_plane": "shm"}) == DATA_PLANE_SHM
    assert resolve_data_plane({}) == DATA_PLANE_SHM  # auto, shm available


def test_planned_data_plane_is_none_for_serial_shapes():
    assert planned_data_plane(None) is None
    assert planned_data_plane(1) is None
    assert planned_data_plane(2) == DATA_PLANE_SHM
    assert planned_data_plane(
        2, {"parallel_data_plane": "pickle"}
    ) == DATA_PLANE_PICKLE


def test_run_records_the_data_plane_on_the_network():
    config = SimulationConfig(n=8, seed=3, workers=2)
    network = SynchronousNetwork(config, _erb_factory(config))
    network.run(config.t + 2)
    assert network.parallel_data_plane == DATA_PLANE_SHM

    config = SimulationConfig(
        n=8, seed=3, workers=2,
        extra={"parallel_data_plane": "pickle"},
    )
    network = SynchronousNetwork(config, _erb_factory(config))
    network.run(config.t + 2)
    assert network.parallel_data_plane == DATA_PLANE_PICKLE


def _erb_factory(config):
    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"v2" if node_id == 0 else None,
        )
    return factory


# ---------------------------------------------------------------------------
# equivalence: shm plane == pickle plane == serial, at 1/2/4 workers
# ---------------------------------------------------------------------------

def _plane_config(config: SimulationConfig, workers: int,
                  plane: str) -> SimulationConfig:
    forced = _workers_config(config, workers)
    forced.extra["parallel_data_plane"] = plane
    return forced


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_erb_planes_byte_identical(workers):
    config = SimulationConfig(n=16, seed=5)
    serial = run_erb(config, initiator=0, message=b"plane")
    shm = run_erb(
        _plane_config(config, workers, "shm"), initiator=0, message=b"plane"
    )
    pkl = run_erb(
        _plane_config(config, workers, "pickle"), initiator=0, message=b"plane"
    )
    assert _snapshot(shm) == _snapshot(serial)
    assert _snapshot(pkl) == _snapshot(serial)


@pytest.mark.parametrize("workers", [2, 4])
def test_erng_planes_byte_identical(workers):
    config = SimulationConfig(n=12, seed=8)
    serial = run_erng(config)
    shm = run_erng(_plane_config(config, workers, "shm"))
    pkl = run_erng(_plane_config(config, workers, "pickle"))
    assert _snapshot(shm) == _snapshot(serial)
    assert _snapshot(pkl) == _snapshot(serial)


@pytest.mark.parametrize("plane", ["shm", "pickle"])
def test_traced_planes_replay_serial_events(plane):
    """Both data planes must stream staged intents back in an order the
    keyed merge restores exactly: the traced event streams are the serial
    stream byte for byte."""
    t_par, t_ser = Tracer.memory(), Tracer.memory()
    serial = run_erng(SimulationConfig(n=8, seed=3, tracer=t_ser))
    parallel = run_erng(_plane_config(
        SimulationConfig(n=8, seed=3, tracer=t_par), 3, plane
    ))
    assert parallel.outputs == serial.outputs
    assert t_par.events == t_ser.events


@settings(max_examples=6, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.integers(min_value=2, max_value=5),
    plane=st.sampled_from(["shm", "pickle"]),
)
def test_planes_worker_invariant_property(n, seed, workers, plane):
    config = SimulationConfig(n=n, seed=seed)
    serial = run_erng(config)
    parallel = run_erng(_plane_config(config, workers, plane))
    assert _snapshot(parallel) == _snapshot(serial)


# ---------------------------------------------------------------------------
# fallback: forced pickle plane, and the one-line serial warning
# ---------------------------------------------------------------------------

def test_forced_pickle_plane_still_runs_parallel():
    """Forcing the fallback plane must not silently fall back to serial:
    the run still shards, only the channel transport changes."""
    config = SimulationConfig(
        n=10, seed=4, workers=2, extra={"parallel_data_plane": "pickle"}
    )
    network = SynchronousNetwork(config, _erb_factory(config))
    assert network._parallel_eligible() is True
    result = network.run(config.t + 2)
    assert network.parallel_data_plane == DATA_PLANE_PICKLE
    serial_cfg = SimulationConfig(n=10, seed=4)
    serial = SynchronousNetwork(
        serial_cfg, _erb_factory(serial_cfg)
    ).run(serial_cfg.t + 2)
    assert _snapshot(result) == _snapshot(serial)


def test_serial_fallback_warns_once_with_reason(caplog):
    """workers > 1 on an ineligible run (adversarial wires) must say so:
    one warning on the stdlib ``repro.engine`` logger naming the reason,
    not a silent serial run the user mistakes for a parallel one."""
    config = SimulationConfig(n=12, seed=9, workers=4)
    behaviors = {2: SelectiveOmission(victims=range(3, 9))}
    network = SynchronousNetwork(config, _erb_factory(config),
                                 behaviors=behaviors)
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        network.run(config.t + 2)
    warnings = [
        rec for rec in caplog.records
        if "parallel engine disabled for this run" in rec.message
    ]
    assert len(warnings) == 1
    assert "per-wire" in warnings[0].message
    assert "workers=4" in warnings[0].message


def test_serial_fallback_warning_is_per_network_not_per_round(caplog):
    """The warning must not repeat every round of the same run."""
    config = SimulationConfig(
        n=8, seed=1, workers=2,
        channel_security=ChannelSecurity.FULL,
        extra={"dh_group": "small"},
    )
    network = SynchronousNetwork(config, _erb_factory(config))
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        network.run(config.t + 2)
    warnings = [
        rec for rec in caplog.records
        if "parallel engine disabled" in rec.message
    ]
    assert len(warnings) == 1
    assert "FULL" in warnings[0].message


def test_explicit_disable_does_not_warn(caplog):
    """Opting out via config extra is intentional — no noise."""
    config = SimulationConfig(
        n=8, seed=1, workers=4, extra={"disable_parallel_engine": True}
    )
    network = SynchronousNetwork(config, _erb_factory(config))
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        network.run(config.t + 2)
    assert not [
        rec for rec in caplog.records
        if "parallel engine disabled" in rec.message
    ]


# ---------------------------------------------------------------------------
# batched transport verbs == their per-link loops
# ---------------------------------------------------------------------------

class _WaveProgram(EnclaveProgram):
    PROGRAM_NAME = "wave-equivalence"


def _enclaves(n: int):
    rng = DeterministicRNG("wave")
    clock = SimulationClock()
    authority = AttestationAuthority(rng)
    return {
        i: Enclave(i, _WaveProgram(), rng, clock, authority) for i in range(n)
    }


def _members(sender: int, count: int):
    return tuple(
        ProtocolMessage(MessageType.ECHO, sender, -1, b"wave%d" % k, 1, "w")
        for k in range(count)
    )


@pytest.mark.parametrize("transport_cls", [ModeledTransport, PlainTransport])
def test_seal_wave_equals_per_receiver_loop(transport_cls):
    """One wave call and the per-receiver loop must leave identical
    counter state and produce identical envelopes."""
    batched = transport_cls(_enclaves(6))
    looped = transport_cls(_enclaves(6))
    members = _members(0, 3)
    receivers = [1, 2, 4, 5]

    wave = batched.seal_envelope_wave(0, receivers, members, size=96)
    singles = [
        looped.seal_envelope(0, r, members, size=96) for r in receivers
    ]
    assert wave == singles

    # A second wave on the same links continues the same counter runs.
    wave2 = batched.seal_envelope_wave(0, receivers, members, size=96)
    singles2 = [
        looped.seal_envelope(0, r, members, size=96) for r in receivers
    ]
    assert wave2 == singles2
    if transport_cls is ModeledTransport:  # per-link counters, not global
        assert all(b.counter == 2 * len(members) for b in wave2)


def test_open_wave_equals_per_envelope_loop():
    batched = ModeledTransport(_enclaves(5))
    looped = ModeledTransport(_enclaves(5))
    envelopes = []
    for sender in (0, 2, 3):
        envelopes.append(
            batched.seal_envelope(sender, 1, _members(sender, 2), size=64)
        )
        looped.seal_envelope(sender, 1, _members(sender, 2), size=64)
    assert batched.open_envelope_wave(1, envelopes) == [
        looped.open_envelope(1, env) for env in envelopes
    ]


def test_open_wave_raises_on_replay_like_the_loop():
    from repro.common.errors import ReplayError

    transport = ModeledTransport(_enclaves(3))
    env = transport.seal_envelope(0, 1, _members(0, 2), size=64)
    assert transport.open_envelope_wave(1, [env]) == [env.members]
    with pytest.raises(ReplayError):
        transport.open_envelope_wave(1, [env])


def test_seal_wave_with_count_only_matches_loop():
    """The modeled ACK wave seals members=None with an explicit count."""
    batched = ModeledTransport(_enclaves(4))
    looped = ModeledTransport(_enclaves(4))
    wave = batched.seal_envelope_wave(0, [1, 2, 3], None, count=5, size=40)
    singles = [
        looped.seal_envelope(0, r, None, count=5, size=40) for r in (1, 2, 3)
    ]
    assert wave == singles


# ---------------------------------------------------------------------------
# timing: timed == untimed, and the barrier share bar
# ---------------------------------------------------------------------------

def test_timed_parallel_run_is_byte_identical_to_untimed():
    config = SimulationConfig(n=12, seed=8)
    untimed = run_erng(_workers_config(config, 2))
    timed_cfg = _workers_config(config, 2)
    timed_cfg.timing = TimingCollector()
    timed = run_erng(timed_cfg)
    assert _snapshot(timed) == _snapshot(untimed)
    assert timed_cfg.timing.engine == "parallel"
    assert timed_cfg.timing.totals  # something was attributed


def test_barrier_share_below_bar_at_two_workers():
    """The v2 acceptance bar: with the streaming protocol the barrier
    bucket (coordinator blocked *beyond* any shard's concurrent busy
    time) must be a minority cost — under 0.30 of attributed wall at
    workers = 2, where the v1 protocol measured ~0.96.  Best-of-three to
    keep loaded CI hosts from flaking the bound.
    """
    shares = []
    for attempt in range(3):
        tm = TimingCollector()
        config = SimulationConfig(n=24, seed=7, workers=2, timing=tm)
        run_erng(config)
        assert tm.engine == "parallel"
        total = sum(tm.totals.values())
        assert total > 0
        shares.append(tm.totals.get("barrier", 0.0) / total)
    assert min(shares) < 0.30, f"barrier shares {shares}"


def test_shm_plane_attributes_shm_not_serialize():
    """The shm data plane charges its traffic to the ``shm`` bucket; the
    pickle plane charges ``serialize`` (and no ``shm``)."""
    tm_shm = TimingCollector()
    run_erng(SimulationConfig(
        n=12, seed=8, workers=2, timing=tm_shm,
        extra={"parallel_data_plane": "shm"},
    ))
    assert tm_shm.totals.get("shm", 0.0) > 0

    tm_pkl = TimingCollector()
    run_erng(SimulationConfig(
        n=12, seed=8, workers=2, timing=tm_pkl,
        extra={"parallel_data_plane": "pickle"},
    ))
    assert "shm" not in tm_pkl.totals
    assert tm_pkl.totals.get("serialize", 0.0) > 0
