"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_erb_defaults(self):
        args = build_parser().parse_args(["erb"])
        assert args.n == 16 and args.initiator == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_erb(self, capsys):
        assert main(["erb", "--n", "8", "--message", "cli"]) == 0
        out = capsys.readouterr().out
        assert "b'cli'" in out
        assert "rounds:            2" in out

    def test_erb_chain(self, capsys):
        assert main(["erb", "--n", "16", "--t", "7", "--chain", "3"]) == 0
        out = capsys.readouterr().out
        assert "rounds:            5" in out  # f+2
        assert "[0, 1, 2]" in out

    def test_erng(self, capsys):
        assert main(["erng", "--n", "6"]) == 0
        assert "ERNG" in capsys.readouterr().out

    def test_erng_opt_fixed(self, capsys):
        assert main(
            ["erng-opt", "--n", "24", "--mode", "fixed_fraction"]
        ) == 0
        assert "optimized ERNG" in capsys.readouterr().out

    def test_agreement(self, capsys):
        assert main(["agreement", "--n", "5", "--inputs", "A,B,A,A,B"]) == 0
        assert "'A'" in capsys.readouterr().out

    def test_agreement_bad_input_count(self, capsys):
        assert main(["agreement", "--n", "5", "--inputs", "A,B"]) == 2
        assert "expected 5" in capsys.readouterr().err

    def test_beacon(self, capsys):
        assert main(["beacon", "--n", "5", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out and "epoch 1" in out
        assert "chain verifies: True" in out

    def test_churn(self, capsys):
        assert main(
            ["churn", "--n", "9", "--byzantine", "1,2", "--p", "1.0",
             "--instances", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "live byzantine per instance: [0, 0]" in out
