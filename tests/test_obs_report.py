"""The report renderers: input detection, CLI tables, HTML, flame export.

``python -m repro report`` accepts three input shapes — a
``--timing-out`` sidecar, a JSONL trace containing timing events, and a
``BENCH_*.json`` history — and every rendered artifact must be
self-contained (no external assets) and faithful to the payload.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro import SimulationConfig, run_erb
from repro.obs.report import (
    load_payload,
    render_bench_report,
    render_html,
    render_report,
    render_timing_report,
    timing_to_collapsed,
)
from repro.obs.timing import TimingCollector

DATA = Path(__file__).parent / "data"

#: A tiny hand-written timing payload with a parallel-style shard record
#: (values chosen so shares are easy to eyeball in failures).
TIMING_PAYLOAD = {
    "kind": "timing",
    "engine": "parallel",
    "wall_seconds": 1.0,
    "bucket_order": ["seal", "barrier", "merge", "other"],
    "totals": {"seal": 0.2, "barrier": 0.5, "merge": 0.2, "other": 0.1},
    "machine": {"git_rev": "abc1234", "cpu_count": 4, "workers": 2},
    "rounds": [
        {
            "rnd": 1,
            "wall": 1.0,
            "buckets": {"seal": 0.2, "barrier": 0.5, "merge": 0.2,
                        "other": 0.1},
            "shards": [
                {"shard": 0, "busy": 0.4, "idle": 0.1,
                 "buckets": {"seal": 0.3, "other": 0.1}},
                {"shard": 1, "busy": 0.3, "idle": 0.2,
                 "buckets": {"seal": 0.3}},
            ],
        }
    ],
    "traffic": {"summary": "8064 msgs / 0.750 MB"},
}


class TestLoadPayload:
    def test_detects_timing_sidecar(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(TIMING_PAYLOAD))
        kind, payload = load_payload(path)
        assert kind == "timing"
        assert payload["engine"] == "parallel"

    def test_detects_bench_history(self):
        kind, payload = load_payload(DATA / "bench_mini.json")
        assert kind == "bench"
        assert payload["benchmark"] == "engine_throughput"

    def test_aggregates_timing_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"kind": "meta",
             "machine": {"git_rev": "abc", "cpu_count": 2, "workers": 1},
             "rnd": 0},
            {"kind": "phase", "rnd": 1, "phase": "begin", "count": 1},
            {"kind": "timing", "rnd": 1, "wall": 0.5,
             "buckets": {"seal": 0.3, "other": 0.2}, "shards": []},
            {"kind": "timing", "rnd": 2, "wall": 0.25,
             "buckets": {"seal": 0.25}, "shards": []},
        ]
        path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
        kind, payload = load_payload(path)
        assert kind == "timing"
        assert payload["wall_seconds"] == pytest.approx(0.75)
        assert payload["totals"]["seal"] == pytest.approx(0.55)
        assert payload["machine"]["git_rev"] == "abc"
        assert len(payload["rounds"]) == 2

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("hello\nworld\n")
        with pytest.raises(ValueError):
            load_payload(path)

    def test_rejects_trace_without_timing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"kind": "phase", "rnd": 1, "phase": "begin",
                        "count": 0}) + "\n"
        )
        with pytest.raises(ValueError):
            load_payload(path)


class TestTimingTable:
    def test_renders_phases_shards_and_stamp(self):
        text = render_timing_report(TIMING_PAYLOAD)
        assert "engine=parallel" in text
        assert "git_rev=abc1234" in text
        assert "barrier" in text and "50.0%" in text
        # shard utilization: busy/(busy+idle) = 0.4/0.5 and 0.3/0.5
        assert "80.0%" in text
        assert "60.0%" in text
        assert "traffic" in text

    def test_renders_real_run(self):
        timing = TimingCollector()
        config = SimulationConfig(n=16, seed=1, timing=timing)
        run_erb(config, initiator=0, message=b"report")
        text = render_timing_report(timing.as_dict())
        assert "engine=envelope" in text
        assert "attributed" in text
        assert "slowest rounds" in text


class TestBenchTable:
    def test_renders_trend_and_gate(self):
        with open(DATA / "bench_mini.json") as fh:
            payload = json.load(fh)
        text = render_bench_report(payload)
        assert "throughput trend" in text
        assert "erb_n64_fanout" in text
        assert "320,000 → 330,000" in text
        assert "parallel_speedup_vs_serial" in text
        assert "bench gate: PASS" in text


class TestHtml:
    @pytest.mark.parametrize("kind,payload_path", [
        ("timing", None),
        ("bench", DATA / "bench_mini.json"),
    ])
    def test_html_is_self_contained(self, kind, payload_path):
        if payload_path is None:
            payload = TIMING_PAYLOAD
        else:
            with open(payload_path) as fh:
                payload = json.load(fh)
        html = render_html(kind, payload)
        assert html.startswith("<!doctype html>")
        # self-contained: no external scripts, stylesheets, or fetches
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert 'rel="stylesheet"' not in html

    def test_timing_html_contents(self):
        html = render_html("timing", TIMING_PAYLOAD)
        assert "Phase breakdown" in html
        assert "Per-shard utilization" in html
        assert "abc1234" in html

    def test_bench_html_contents(self):
        with open(DATA / "bench_mini.json") as fh:
            payload = json.load(fh)
        html = render_html("bench", payload)
        assert "Throughput trend" in html
        assert "PASS" in html


class TestCollapsedStacks:
    def test_format_and_values(self):
        text = timing_to_collapsed(TIMING_PAYLOAD)
        lines = text.strip().splitlines()
        # strict collapsed-stack grammar: frames;separated;by;semicolons
        # then a space and an integer microsecond count
        for line in lines:
            assert re.fullmatch(r"[\w;]+ \d+", line), line
        assert "parallel;round_1;barrier 500000" in lines
        assert "parallel;round_1;shard_0;seal 300000" in lines
        assert "parallel;round_1;shard_1;idle 200000" in lines

    def test_zero_buckets_are_dropped(self):
        payload = {
            "kind": "timing", "engine": "e", "wall_seconds": 1.0,
            "totals": {}, "rounds": [
                {"rnd": 1, "wall": 0.0,
                 "buckets": {"seal": 0.0}, "shards": []}
            ],
        }
        assert timing_to_collapsed(payload) == ""


class TestRenderReport:
    def test_writes_html_and_flame(self, tmp_path):
        sidecar = tmp_path / "t.json"
        sidecar.write_text(json.dumps(TIMING_PAYLOAD))
        html_out = tmp_path / "r.html"
        flame_out = tmp_path / "f.txt"
        text = render_report(sidecar, html_out=html_out, flame_out=flame_out)
        assert "engine=parallel" in text
        assert html_out.read_text().startswith("<!doctype html>")
        assert "barrier 500000" in flame_out.read_text()

    def test_flame_on_bench_input_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="flame"):
            render_report(
                DATA / "bench_mini.json",
                flame_out=tmp_path / "f.txt",
            )

    def test_bench_input_renders_gate(self):
        text = render_report(DATA / "bench_mini.json")
        assert "bench gate: PASS" in text
