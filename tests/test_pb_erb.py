"""pb-ERB: sample-based probabilistic broadcast, and its sample views.

At test sizes the default knobs resolve to full fan-out (``3⌈log₂N⌉ ≥
N-1``), where pb-ERB's agreement/validity hold *surely* for ``f ≤ n/4``
— so these tests can assert them exactly, while the ε-probabilistic
regime is exercised by the campaign sweep preset and the scaling
benchmarks.  Also covered: sample-view uniform sampling on implicit and
materialized topologies, the ε-knob validation and analytics, and the
campaign integration (run_case + the sweep preset)."""

from __future__ import annotations

import pytest

from repro.adversary import (
    RandomOmission,
    ReceiveOmission,
    SelectiveOmission,
    TamperAdversary,
)
from repro.campaign.runner import run_case, run_pb_erb_sweep
from repro.campaign.schedule import Fault, Schedule
from repro.campaign.spec import ERB_PAYLOAD, CaseSpec
from repro.common.config import SimulationConfig
from repro.common.rng import DeterministicRNG
from repro.core.pb_erb import PbErbConfig, run_pb_erb
from repro.net.topology import Topology

PAYLOAD = b"pb-test"


def _config(n, seed=0, **kwargs):
    return SimulationConfig(n=n, t=n // 4, seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# honest broadcasts
# ---------------------------------------------------------------------------

def test_honest_broadcast_delivers_everywhere():
    result = run_pb_erb(_config(24), initiator=3, message=PAYLOAD)
    assert set(result.outputs) == set(range(24))
    assert all(v == PAYLOAD for v in result.outputs.values())
    assert result.rounds_executed <= PbErbConfig().resolved_round_bound(24)
    assert result.halted == []


def test_honest_broadcast_is_deterministic():
    a = run_pb_erb(_config(16, seed=11), initiator=0, message=PAYLOAD)
    b = run_pb_erb(_config(16, seed=11), initiator=0, message=PAYLOAD)
    assert a.outputs == b.outputs
    assert a.decided_rounds == b.decided_rounds
    assert a.traffic.messages_sent == b.traffic.messages_sent
    assert a.traffic.bytes_sent == b.traffic.bytes_sent


def test_traffic_is_sampled_not_quadratic():
    """Every node sends at most one gossip + one vote sample: the ledger
    is bounded by ``n·(g+e)``, far below deterministic ERB's 2·n·(n-1)
    at scale (equal only when the samples saturate at n-1)."""
    n = 64
    pb = PbErbConfig()
    result = run_pb_erb(_config(n), initiator=0, message=PAYLOAD, pb=pb)
    cap = n * (pb.resolved_fanout(n) + pb.resolved_echo_sample(n))
    assert result.traffic.messages_sent <= cap


# ---------------------------------------------------------------------------
# adversarial broadcasts (full fan-out regime: properties hold surely)
# ---------------------------------------------------------------------------

def test_agreement_under_omission():
    n = 20
    rng = DeterministicRNG("pb-omission")
    behaviors = {
        4: SelectiveOmission(victims=set(range(0, n, 2))),
        9: RandomOmission(rng.fork("omit"), send_drop_p=0.5, recv_drop_p=0.2),
        14: ReceiveOmission(),
    }
    result = run_pb_erb(
        _config(n, seed=5), initiator=0, message=PAYLOAD, behaviors=behaviors
    )
    honest = result.honest_outputs(set(behaviors))
    assert honest
    assert len(set(honest.values())) == 1
    assert set(honest.values()) == {PAYLOAD}


def test_integrity_under_tampering():
    """Tampered ciphertexts are rejected by the channel MAC: honest
    nodes output the broadcast value or ⊥, never a fabrication."""
    n = 16
    result = run_pb_erb(
        _config(n, seed=7), initiator=0, message=PAYLOAD,
        behaviors={5: TamperAdversary()},
    )
    honest = result.honest_outputs({5})
    assert all(v in (None, PAYLOAD) for v in honest.values())
    assert PAYLOAD in honest.values()


def test_faulty_initiator_cannot_split_outputs():
    """A mute initiator yields ⊥ everywhere — never divergent values."""
    n = 12
    result = run_pb_erb(
        _config(n, seed=9), initiator=2, message=PAYLOAD,
        behaviors={2: SelectiveOmission(victims=set(range(n)))},
    )
    honest = result.honest_outputs({2})
    assert len(set(honest.values())) <= 1


# ---------------------------------------------------------------------------
# sample views
# ---------------------------------------------------------------------------

def test_sample_view_properties():
    topo = Topology.full_mesh(50)
    rng = DeterministicRNG("sample")
    view = topo.sample_view(7, 12, rng)
    assert len(view) == 12
    assert len(set(view)) == 12
    assert 7 not in view
    assert all(0 <= peer < 50 for peer in view)


def test_sample_view_caps_at_pool_size():
    topo = Topology.full_mesh(6)
    view = topo.sample_view(0, 99, DeterministicRNG("cap"))
    assert sorted(view) == [1, 2, 3, 4, 5]


def test_sample_view_deterministic_per_rng():
    topo = Topology.full_mesh(40)
    a = topo.sample_view(3, 8, DeterministicRNG(("s", 1)))
    b = topo.sample_view(3, 8, DeterministicRNG(("s", 1)))
    c = topo.sample_view(3, 8, DeterministicRNG(("s", 2)))
    assert a == b
    assert a != c  # different stream, different view (overwhelmingly)


def test_sample_view_implicit_equals_materialized_mesh():
    """The implicit O(1)-memory full mesh must sample exactly like an
    explicitly materialized one — same rng stream, same picks."""
    n = 30
    implicit = Topology.full_mesh(n)
    materialized = Topology(
        n, {i: {j for j in range(n) if j != i} for i in range(n)}
    )
    for node in (0, 13, n - 1):
        a = implicit.sample_view(node, 9, DeterministicRNG(("mesh", node)))
        b = materialized.sample_view(node, 9, DeterministicRNG(("mesh", node)))
        assert a == b


def test_sample_view_respects_partial_topology():
    n = 12
    ring = Topology(
        n, {i: {(i - 1) % n, (i + 1) % n} for i in range(n)}
    )
    view = ring.sample_view(4, 5, DeterministicRNG("ring"))
    assert set(view) <= set(ring.neighbours(4))
    assert len(view) == len(set(view)) == 2  # a ring node has 2 peers


# ---------------------------------------------------------------------------
# ε knobs and analytics
# ---------------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        PbErbConfig(threshold=0.0)
    with pytest.raises(ValueError):
        PbErbConfig(threshold=1.0)
    with pytest.raises(ValueError):
        PbErbConfig(epsilon=0.0)
    with pytest.raises(ValueError):
        PbErbConfig(sample_factor=0)
    with pytest.raises(ValueError):
        PbErbConfig(round_slack=0)


def test_resolved_knobs():
    pb = PbErbConfig()
    # 3·⌈log₂ 1024⌉ = 30 at N=1024; capped at N-1 for small networks.
    assert pb.resolved_fanout(1024) == 30
    assert pb.resolved_fanout(8) == 7
    assert pb.resolved_echo_sample(1024) == 30
    assert pb.echo_quorum(1024) == 15
    explicit = PbErbConfig(fanout=5, echo_sample=200)
    assert explicit.resolved_fanout(1024) == 5
    assert explicit.resolved_echo_sample(64) == 63  # capped
    # Full fan-out saturates in one hop; sampled gossip needs log_g N.
    assert pb.resolved_round_bound(8) == 1 + pb.round_slack
    assert pb.resolved_round_bound(16384) > pb.round_slack + 1


def test_failure_bound_analytics():
    pb = PbErbConfig()
    # Degenerate cases pin to 1.0 (no guarantee claimed).
    assert pb.failure_bound(1) == 1.0
    assert pb.failure_bound(100, f=100) == 1.0
    # More faults can only weaken the bound.
    n = 4096
    assert pb.failure_bound(n, 0) <= pb.failure_bound(n, n // 4) <= 1.0
    # A bigger echo sample tightens it (same τ, larger mean-quorum gap).
    loose = PbErbConfig(sample_factor=2).failure_bound(n, 0)
    tight = PbErbConfig(sample_factor=8).failure_bound(n, 0)
    assert tight <= loose


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------

def test_campaign_run_case_pb_erb():
    schedule = Schedule(faults=(
        Fault(node=3, kind="omit_send", victims=tuple(range(0, 8, 2))),
    ))
    spec = CaseSpec(
        protocol="pb-erb", n=8, t=2, seed=42, schedule=schedule,
        strategy="omission",
    )
    outcome = run_case(spec)
    assert outcome.passed, [v.detail for v in outcome.violations]
    assert outcome.result.outputs
    assert outcome.honest_output() == ERB_PAYLOAD


def test_pb_erb_sweep_smoke():
    cells = run_pb_erb_sweep(n=16, seeds=2, sample_factors=(3,))
    assert len(cells) == 2  # omission + byzantine
    for cell in cells:
        assert cell.runs == 2
        assert not cell.hard_violations
        assert cell.passed
