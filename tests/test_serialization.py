"""Unit and property tests for the deterministic serialization format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.common.serialization import compose_tuple, decode, encode, encoded_size


class TestEncodeBasics:
    def test_none_roundtrip(self):
        assert decode(encode(None)) is None

    def test_bool_roundtrip(self):
        assert decode(encode(True)) is True
        assert decode(encode(False)) is False

    def test_bool_is_not_int(self):
        # bools must not collide with ints 0/1
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    @pytest.mark.parametrize("value", [0, 1, -1, 255, 256, -256, 2**128, -(2**128)])
    def test_int_roundtrip(self, value):
        assert decode(encode(value)) == value

    @pytest.mark.parametrize("value", [b"", b"\x00", b"hello", bytes(range(256))])
    def test_bytes_roundtrip(self, value):
        assert decode(encode(value)) == value

    @pytest.mark.parametrize("value", ["", "ascii", "ünïcødé", "日本語"])
    def test_str_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_roundtrip(self):
        value = (1, "two", b"three", None, (4, 5))
        assert decode(encode(value)) == value

    def test_list_decodes_as_tuple(self):
        assert decode(encode([1, 2, 3])) == (1, 2, 3)

    def test_dict_roundtrip(self):
        value = {"b": 2, "a": 1, "c": (3,)}
        assert decode(encode(value)) == value

    def test_dict_encoding_is_order_independent(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_empty_containers(self):
        assert decode(encode(())) == ()
        assert decode(encode({})) == {}

    def test_encoded_size_matches_length(self):
        value = ("x", 42, b"abc")
        assert encoded_size(value) == len(encode(value))

    def test_compose_tuple_matches_encode(self):
        items = (7, "body", b"\x00\x01", (1, 2), None)
        composed = compose_tuple([encode(item) for item in items])
        assert composed == encode(items)
        assert decode(composed) == items

    def test_compose_tuple_empty(self):
        assert compose_tuple([]) == encode(())

    @given(
        st.lists(
            st.one_of(st.integers(), st.binary(max_size=32), st.text(max_size=16)),
            max_size=8,
        )
    )
    @settings(max_examples=50)
    def test_compose_tuple_property(self, items):
        composed = compose_tuple([encode(item) for item in items])
        assert composed == encode(tuple(items))


class TestEncodeErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode(3.14)

    def test_frozenset_rejected_with_hint(self):
        with pytest.raises(SerializationError, match="sorted tuples"):
            encode(frozenset({1, 2}))

    def test_unsortable_dict_keys_rejected(self):
        with pytest.raises(SerializationError):
            encode({1: "a", "b": 2})


class TestDecodeErrors:
    def test_empty_input(self):
        with pytest.raises(SerializationError):
            decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            decode(b"Z")

    def test_trailing_garbage(self):
        with pytest.raises(SerializationError, match="trailing"):
            decode(encode(1) + b"x")

    def test_truncated_length(self):
        with pytest.raises(SerializationError):
            decode(b"i\x00\x00")

    def test_truncated_bytes_body(self):
        with pytest.raises(SerializationError):
            decode(b"b\x00\x00\x00\x05ab")

    def test_truncated_tuple_items(self):
        with pytest.raises(SerializationError):
            decode(b"t\x00\x00\x00\x02" + encode(1))

    def test_bad_int_sign(self):
        with pytest.raises(SerializationError):
            decode(b"i\x00\x00\x00\x02?\x01")

    def test_invalid_utf8(self):
        with pytest.raises(SerializationError):
            decode(b"s\x00\x00\x00\x01\xff")


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**200), max_value=2**200),
    st.binary(max_size=64),
    st.text(max_size=32),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


class TestSerializationProperties:
    @given(_values)
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    @given(_values)
    @settings(max_examples=100)
    def test_determinism(self, value):
        assert encode(value) == encode(value)

    @given(_values, _values)
    @settings(max_examples=100)
    def test_injectivity(self, a, b):
        # Equal encodings imply equal values (1 == True in Python, but
        # their encodings are deliberately distinct, so test this
        # direction only).
        if encode(a) == encode(b):
            assert a == b

    @given(st.binary(max_size=64))
    @settings(max_examples=200)
    def test_decode_never_crashes_on_noise(self, noise):
        # Decoding attacker-controlled bytes must fail cleanly, not crash.
        try:
            decode(noise)
        except SerializationError:
            pass
