"""The P1-P6 registry stays consistent with the paper and the codebase."""

from __future__ import annotations

import pytest

from repro.core.properties import PROPERTIES, Property, property_by_key


class TestRegistryStructure:
    def test_all_six_properties_present(self):
        assert [prop.key for prop in PROPERTIES] == [
            "P1", "P2", "P3", "P4", "P5", "P6"
        ]

    def test_every_attack_is_covered(self):
        # Section 3.1: P1-P6 together defeat A1-A5.
        defeated = set()
        for prop in PROPERTIES:
            defeated |= set(prop.defeats)
        assert defeated == {"A1", "A2", "A3", "A4", "A5"}

    def test_features_are_known(self):
        for prop in PROPERTIES:
            assert set(prop.features) <= {"F1", "F2", "F3", "F4"}
            assert prop.features  # every property rests on some feature

    def test_paper_feature_mapping(self):
        # Spot-check the mapping stated in Section 3.1.
        assert property_by_key("P5").features == ("F4",)   # lockstep ← time
        assert "F2" in property_by_key("P3").features      # blind-box ← RDRAND
        assert "F3" in property_by_key("P1").features      # integrity ← attestation

    def test_lookup_unknown_key(self):
        with pytest.raises(KeyError):
            property_by_key("P7")


class TestRegistryAnchors:
    @pytest.mark.parametrize("prop", PROPERTIES, ids=lambda p: p.key)
    def test_implementation_anchors_resolve(self, prop: Property):
        # Executable documentation: every 'enforced_by' module:symbol must
        # actually exist, so the registry cannot silently go stale.
        prop.resolve_anchors()

    def test_stale_anchor_detected(self):
        broken = Property(
            key="PX",
            name="broken",
            features=("F1",),
            defeats=("A1",),
            enforced_by=("repro.core.erb:DoesNotExist",),
            summary="",
        )
        with pytest.raises(AttributeError):
            broken.resolve_anchors()
