"""The tracer against real runs: phase ordering, byte parity with the
traffic statistics, halts/decisions, and the ActionTrace view."""

from __future__ import annotations

from repro.adversary import (
    DelayAdversary,
    RandomOmission,
    ReceiveOmission,
    SelectiveOmission,
    TamperAdversary,
)
from repro.adversary.classification import classify_node, trace_from_wire_events
from repro.common.config import AdversaryModel, SimulationConfig
from repro.common.rng import DeterministicRNG
from repro.core.erb import ErbProgram, run_erb
from repro.net.simulator import SynchronousNetwork
from repro.obs import (
    DecisionEvent,
    HaltEvent,
    NULL_TRACER,
    NullSink,
    PhaseEvent,
    ROUND_PHASES,
    RoundSpan,
    Tracer,
    WireEvent,
    charged_bytes_by_round,
    render_timeline,
)

from tests.conftest import small_config


def _traced_erb(n, seed=0, behaviors=None, initiator=0, message=b"m"):
    tracer = Tracer.memory()
    config = small_config(n, seed=seed, tracer=tracer)
    result = run_erb(
        config, initiator=initiator, message=message, behaviors=behaviors
    )
    return tracer, result


class TestPhaseOrdering:
    def test_each_round_emits_the_six_phases_in_order(self):
        tracer, result = _traced_erb(8, seed=1)
        by_round = {}
        for event in tracer.events:
            if isinstance(event, PhaseEvent):
                by_round.setdefault(event.rnd, []).append(event.phase)
        assert set(by_round) == set(range(1, result.rounds_executed + 1))
        for phases in by_round.values():
            assert phases == list(ROUND_PHASES)

    def test_round_span_closes_each_round(self):
        tracer, result = _traced_erb(8, seed=1)
        spans = [e for e in tracer.events if isinstance(e, RoundSpan)]
        assert [s.rnd for s in spans] == list(
            range(1, result.rounds_executed + 1)
        )
        assert sum(s.bytes for s in spans) == result.traffic.bytes_sent
        assert spans[-1].decided == 8  # everyone accepted by the last round


class TestBytesParity:
    def test_charged_wire_events_match_traffic_stats(self):
        tracer, result = _traced_erb(16, seed=2)
        assert charged_bytes_by_round(tracer.events) == dict(
            result.traffic.bytes_by_round
        )

    def test_parity_holds_under_adversaries(self):
        behaviors = {
            1: RandomOmission(DeterministicRNG("p"), send_drop_p=0.5),
            2: DelayAdversary(1),
            3: TamperAdversary(),
        }
        tracer, result = _traced_erb(9, seed=3, behaviors=behaviors)
        assert charged_bytes_by_round(tracer.events) == dict(
            result.traffic.bytes_by_round
        )


class TestHaltAndDecisionEvents:
    def test_halt_on_divergence_emits_halt_event(self):
        # Initiator omits its INIT to 6 of 8 peers: too few ACKs, halts.
        behaviors = {0: SelectiveOmission(victims=set(range(3, 9)))}
        tracer, result = _traced_erb(9, seed=2, behaviors=behaviors)
        assert 0 in result.halted
        halts = [e for e in tracer.events if isinstance(e, HaltEvent)]
        assert any(h.node == 0 for h in halts)
        halt = next(h for h in halts if h.node == 0)
        assert halt.acks < halt.threshold
        assert halt.reason == "divergence"

    def test_every_accepting_node_emits_a_decision(self):
        tracer, result = _traced_erb(8, seed=4)
        decisions = [e for e in tracer.events if isinstance(e, DecisionEvent)]
        assert {d.node for d in decisions} == set(result.outputs)
        assert all(d.program == "erb" for d in decisions)
        assert all(d.value for d in decisions)


class TestDisabledByDefault:
    def test_default_run_uses_the_null_tracer(self):
        config = small_config(6, seed=5)
        network = SynchronousNetwork(
            config,
            lambda i: ErbProgram(
                i, 0, 6, config.t, message=b"m" if i == 0 else None
            ),
        )
        assert network.tracer is NULL_TRACER
        assert network.tracer.enabled is False
        network.run(max_rounds=config.t + 2)
        assert network.tracer.events is None
        assert network.action_trace is None

    def test_null_sink_tracer_stays_disabled(self):
        tracer = Tracer(NullSink())
        assert tracer.enabled is False
        tracer.phase(1, "begin", 3)  # all helpers must be no-ops
        tracer.halt(1, 0, 2, 5)
        assert tracer.events is None


class TestActionTraceView:
    """`classify_node` over the tracer-backed view must match the known
    Definition A.5 classes (identical to the pre-tracer ActionTrace)."""

    BEHAVIORS = staticmethod(
        lambda: {
            1: RandomOmission(DeterministicRNG("c"), send_drop_p=0.7),
            2: SelectiveOmission(victims={0, 3, 4}),
            3: DelayAdversary(1),
            4: TamperAdversary(),
            5: ReceiveOmission(),
        }
    )

    EXPECTED = {
        0: AdversaryModel.HONEST,
        1: AdversaryModel.GENERAL_OMISSION,
        2: AdversaryModel.GENERAL_OMISSION,
        3: AdversaryModel.ROD,
        4: AdversaryModel.BYZANTINE,
        5: AdversaryModel.GENERAL_OMISSION,
    }

    def _network(self, config):
        return SynchronousNetwork(
            config,
            lambda i: ErbProgram(
                i, 0, config.n, config.t,
                message=b"m" if i == 0 else None,
            ),
            self.BEHAVIORS(),
        )

    def test_view_classifies_identically_to_legacy_flag(self):
        # Path 1: the legacy extra flag (auto-attaches a memory tracer).
        legacy = self._network(
            SimulationConfig(n=11, seed=2, extra={"trace_actions": True})
        )
        legacy.run(max_rounds=legacy.config.t + 2)
        # Path 2: an explicit memory tracer and the standalone view builder.
        explicit = self._network(
            SimulationConfig(n=11, seed=2, tracer=Tracer.memory())
        )
        explicit.run(max_rounds=explicit.config.t + 2)
        view = trace_from_wire_events(explicit.tracer.wire_events())

        assert legacy.action_trace.records == view.records
        for node, expected in self.EXPECTED.items():
            assert classify_node(legacy.action_trace, node) is expected
            assert classify_node(view, node) is expected

    def test_view_skips_engine_bookkeeping_actions(self):
        tracer, _ = _traced_erb(9, seed=2, behaviors=self.BEHAVIORS())
        actions = {e.action for e in tracer.wire_events()}
        assert "send" in actions  # honest transmissions are traced ...
        view = trace_from_wire_events(tracer.wire_events())
        # ... but only the Definition A.5 OS actions enter the view.
        assert all(
            r.action.value in
            {"deliver", "drop_send", "drop_recv", "delay", "replay", "modify"}
            for r in view.records
        )


class TestTimeline:
    def test_render_timeline_shows_rounds_and_parity(self):
        tracer, result = _traced_erb(8, seed=6)
        text = render_timeline(tracer.events)
        assert f"{result.rounds_executed} round(s)" in text
        assert "begin→transmit→deliver→ack_wave→halt_check→end" in text
        assert "!!" not in text  # wire/span byte totals agree

    def test_render_timeline_reports_halts(self):
        behaviors = {0: SelectiveOmission(victims=set(range(3, 9)))}
        tracer, _ = _traced_erb(9, seed=2, behaviors=behaviors)
        text = render_timeline(tracer.events)
        assert "halts:" in text
        assert "node 0" in text
