"""The fault-injection campaign harness (``repro.campaign``)."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.campaign import (
    CaseSpec,
    ERB_PAYLOAD,
    Fault,
    Schedule,
    build_grid,
    build_schedule,
    case_fails,
    check_unbiasedness,
    cross_check_engines,
    derive_seed,
    make_artifact,
    read_artifact,
    replay_artifact,
    run_campaign,
    run_case,
    shrink_case,
    write_artifact,
)
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.obs import CampaignEvent, Tracer


class TestScheduleModel:
    def test_fault_round_trips(self):
        fault = Fault(node=3, kind="omit_send", victims=(1, 2), start=2, stop=4)
        assert Fault.from_dict(fault.to_dict()) == fault

    def test_schedule_round_trips(self):
        schedule = Schedule(faults=(
            Fault(node=0, kind="tamper"),
            Fault(node=1, kind="random_omission", p=0.5),
        ))
        assert Schedule.from_dict(schedule.to_dict()) == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Fault(node=0, kind="teleport")

    def test_validate_enforces_fault_bound(self):
        schedule = Schedule(faults=(
            Fault(node=0, kind="tamper"),
            Fault(node=1, kind="tamper"),
        ))
        with pytest.raises(ConfigurationError):
            schedule.validate(n=5, t=1)

    def test_compile_is_deterministic(self):
        schedule = Schedule(faults=(
            Fault(node=2, kind="random_omission", p=0.4),
        ))
        a = schedule.compile(seed=9)
        b = schedule.compile(seed=9)
        assert set(a) == set(b) == {2}

    def test_windowed_fault_is_honest_outside_window(self):
        # A fault active only in round 99 changes nothing in a 2-round run.
        windowed = Schedule(faults=(
            Fault(node=1, kind="omit_send", victims=(0, 2, 3, 4),
                  start=99, stop=100),
        ))
        spec = CaseSpec(protocol="erb", n=5, t=2, seed=1, schedule=windowed)
        outcome = run_case(spec)
        assert outcome.passed
        assert outcome.result.halted == []
        assert all(v == ERB_PAYLOAD for v in outcome.result.outputs.values())

    def test_derive_seed_is_stable_and_mixed(self):
        assert derive_seed(0, "erb", 5) == derive_seed(0, "erb", 5)
        assert derive_seed(0, "erb", 5) != derive_seed(0, "erb", 6)

    def test_build_schedule_deterministic(self):
        a = build_schedule("byzantine", n=8, t=3, seed=5, churn="late")
        b = build_schedule("byzantine", n=8, t=3, seed=5, churn="late")
        assert a == b
        assert all(f.start == 2 for f in a.faults)


class TestInvariantsOnHealthyGrid:
    def test_default_grid_holds_all_invariants(self):
        specs = build_grid(
            protocols=["erb", "erng", "erng-opt"],
            sizes=[5],
            strategies=["honest", "omission", "mute", "rod", "byzantine"],
            churns=["none", "late"],
            seeds=[0],
            master_seed=13,
        )
        report = run_campaign(specs, shrink_failures=False)
        assert report.passed, [
            (r.spec.label(), [v.to_dict() for v in r.violations])
            for r in report.failures
        ]

    def test_full_omitter_is_sanitized(self):
        # Identity-based starvation below the ACK threshold must trip P4.
        schedule = Schedule(faults=(
            Fault(node=2, kind="omit_send", victims=(0, 1, 3, 4)),
        ))
        spec = CaseSpec(protocol="erb", n=5, t=2, seed=3, schedule=schedule)
        outcome = run_case(spec)
        assert outcome.passed
        assert outcome.result.halted == [2]

    def test_tamperer_is_sanitized(self):
        schedule = Schedule(faults=(Fault(node=1, kind="tamper"),))
        spec = CaseSpec(protocol="erng", n=5, t=2, seed=3, schedule=schedule)
        outcome = run_case(spec)
        assert outcome.passed
        assert 1 in outcome.result.halted

    def test_cross_check_agrees_across_engines(self):
        spec = CaseSpec(protocol="erb", n=5, t=2, seed=11)
        assert cross_check_engines(spec) == []
        adversarial = CaseSpec(
            protocol="erb", n=5, t=2, seed=11,
            schedule=Schedule(faults=(Fault(node=4, kind="tamper"),)),
        )
        assert cross_check_engines(adversarial) == []

    def test_unbiasedness_catches_constant_outputs(self):
        samples = [(seed, 0xDEAD) for seed in range(4)]
        violations = check_unbiasedness(samples)
        assert [v.invariant for v in violations] == ["unbiasedness", "unbiasedness"]

    def test_unbiasedness_accepts_distinct_outputs(self):
        specs = build_grid(
            protocols=["erng"], sizes=[5], strategies=["honest"],
            churns=["none"], seeds=[0, 1, 2], master_seed=1,
        )
        report = run_campaign(specs)
        assert report.cross_run_violations == []


class TestInjectShrinkReplay:
    """The acceptance pipeline: a deliberately-injected invariant
    violation is caught, shrunk to a minimal spec, and byte-identically
    replayable."""

    def _failing_grid(self):
        return build_grid(
            protocols=["erb"], sizes=[6], strategies=["omission"],
            churns=["intermittent"], seeds=[0], master_seed=5,
            inject={"kind": "corrupt_output", "node": 2, "value": "evil"},
        )

    def test_injected_violation_is_caught(self):
        outcome = run_case(self._failing_grid()[0])
        assert {v.invariant for v in outcome.violations} == {
            "agreement", "validity", "integrity",
        }

    def test_shrinks_to_minimal_spec(self):
        spec = self._failing_grid()[0]
        shrunk = shrink_case(spec, case_fails)
        assert shrunk.improved
        minimal = shrunk.spec
        assert minimal.n == 3  # inject node 2 must stay in the network
        assert minimal.schedule.faults == ()  # faults were irrelevant
        assert minimal.inject == spec.inject
        # Determinism: shrinking again lands on the same spec.
        assert shrink_case(spec, case_fails).spec == minimal

    def test_artifact_replays_byte_identically(self, tmp_path):
        spec = self._failing_grid()[0]
        shrunk = shrink_case(spec, case_fails)
        artifact = make_artifact(shrunk.spec, original=spec,
                                 shrink_runs=shrunk.runs)
        path = write_artifact(artifact, str(tmp_path))
        loaded = read_artifact(path)
        assert loaded.spec == shrunk.spec
        outcome = replay_artifact(path)
        assert outcome.reproduced
        assert outcome.byte_identical
        assert outcome.ok

    def test_tampered_artifact_fails_replay(self, tmp_path):
        spec = self._failing_grid()[0]
        artifact = make_artifact(shrink_case(spec, case_fails).spec)
        path = write_artifact(artifact, str(tmp_path))
        data = json.loads(open(path).read())
        data["violations"] = data["violations"][:1]
        with open(path, "w") as handle:
            handle.write(json.dumps(data, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        outcome = replay_artifact(path)
        assert not outcome.reproduced
        assert not outcome.ok

    def test_campaign_emits_events_and_artifacts(self, tmp_path):
        tracer = Tracer.memory()
        report = run_campaign(
            self._failing_grid(), tracer=tracer, artifact_dir=str(tmp_path)
        )
        assert not report.passed
        assert len(report.artifacts) == 1
        events = [e for e in tracer.events if isinstance(e, CampaignEvent)]
        assert len(events) == 1
        assert events[0].violations == ["agreement", "validity", "integrity"]
        assert events[0].artifact == report.artifacts[0]

    def test_ignore_halt_inject_caught(self):
        # Suppressing a recorded ejection must break the sanitization check.
        schedule = Schedule(faults=(
            Fault(node=2, kind="omit_send", victims=(0, 1, 3, 4)),
        ))
        spec = CaseSpec(
            protocol="erb", n=5, t=2, seed=3, schedule=schedule,
            inject={"kind": "ignore_halt"},
        )
        outcome = run_case(spec)
        assert "sanitization" in {v.invariant for v in outcome.violations}


class TestShrinkerUnit:
    def test_drops_irrelevant_faults(self):
        # Failure oracle: "fails whenever node 0 tampers" — everything
        # else should shrink away.
        def fails(spec):
            return any(
                f.node == 0 and f.kind == "tamper"
                for f in spec.schedule.faults
            )

        spec = CaseSpec(
            protocol="erb", n=9, t=4, seed=1,
            schedule=Schedule(faults=(
                Fault(node=0, kind="tamper"),
                Fault(node=1, kind="delay", delay=1),
                Fault(node=2, kind="omit_send", victims=(3, 4, 5)),
            )),
        )
        result = shrink_case(spec, fails)
        assert result.improved
        assert [f.kind for f in result.spec.schedule.faults] == ["tamper"]
        assert result.spec.n < spec.n

    def test_non_failing_spec_returned_unchanged(self):
        spec = CaseSpec(protocol="erb", n=5, t=2, seed=1)
        result = shrink_case(spec, lambda s: False)
        assert result.spec == spec
        assert not result.improved

    def test_run_budget_caps_work(self):
        calls = []

        def fails(spec):
            calls.append(1)
            return True

        spec = CaseSpec(
            protocol="erb", n=64, t=31, seed=1,
            schedule=Schedule(faults=tuple(
                Fault(node=i, kind="delay") for i in range(20)
            )),
        )
        shrink_case(spec, fails, max_runs=25)
        assert len(calls) <= 25


class TestCampaignCli:
    def test_campaign_happy_path(self, capsys):
        assert main([
            "campaign", "--protocols", "erb,erng", "--sizes", "5",
            "--strategies", "honest,omission", "--churn", "none",
            "--seeds", "1", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "all paper invariants held" in out

    def test_campaign_rejects_unknown_strategy(self, capsys):
        assert main([
            "campaign", "--strategies", "quantum",
        ]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_campaign_inject_then_replay(self, tmp_path, capsys):
        out_dir = str(tmp_path)
        assert main([
            "campaign", "--protocols", "erb", "--sizes", "6",
            "--strategies", "omission", "--churn", "none",
            "--seeds", "1", "--seed", "5", "--inject", "2",
            "--out", out_dir,
        ]) == 1
        out = capsys.readouterr().out
        assert "reproducer:" in out
        artifacts = sorted(tmp_path.glob("repro-*.json"))
        assert len(artifacts) == 1
        assert main(["replay", str(artifacts[0])]) == 0
        out = capsys.readouterr().out
        assert "reproduced exactly" in out
        assert "byte-identical" in out

    def test_replay_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text("{}")
        assert main(["replay", str(bogus)]) == 2
        assert "not a campaign artifact" in capsys.readouterr().err


class TestEngineRoundHook:
    def test_hook_sees_every_round(self):
        spec = CaseSpec(protocol="erb", n=5, t=2, seed=1)
        outcome = run_case(spec)
        assert [rnd for rnd, _ in outcome.round_log] == list(
            range(1, outcome.result.rounds_executed + 1)
        )

    def test_hook_fires_on_parallel_path(self):
        spec = CaseSpec(protocol="erb", n=6, t=2, seed=1)
        serial = run_case(spec, workers=1)
        sharded = run_case(spec, workers=2)
        assert sharded.round_log == serial.round_log

    def test_inject_mutation_does_not_leak(self):
        # replace()-based injection must not mutate shared state between
        # the serial and cross-check legs.
        spec = CaseSpec(
            protocol="erb", n=5, t=2, seed=1,
            inject={"kind": "corrupt_output", "node": 1, "value": "x"},
        )
        first = run_case(spec)
        second = run_case(replace(spec, inject=None))
        assert second.passed
        assert first.result.outputs[1] == "x"
