"""Baselines: RBsig (Algorithm 4) and RBearly (Algorithm 5), plus the
Appendix B efficiency comparison against ERB."""

from __future__ import annotations

import pytest

from repro.adversary import DelayAdversary, SelectiveOmission
from repro.baselines.rb_early import run_rb_early
from repro.baselines.rb_sig import KeyRegistry, run_rb_sig
from repro.common.types import MessageType
from repro.core.erb import run_erb

from tests.conftest import small_config


class TestRbSigHonest:
    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_validity(self, n):
        result, _ = run_rb_sig(small_config(n, seed=n), 0, "value")
        assert set(result.outputs.values()) == {"value"}

    def test_runs_full_t_plus_one_rounds(self):
        # No early stopping in the signature-chain protocol.
        config = small_config(9, seed=1)
        result, _ = run_rb_sig(config, 0, "v")
        assert result.rounds_executed == config.t + 1

    def test_real_signatures_verify(self):
        result, registry = run_rb_sig(
            small_config(4, seed=2), 0, "signed", real_signatures=True
        )
        assert set(result.outputs.values()) == {"signed"}
        assert registry.verifications > 0

    def test_verification_work_grows_with_n(self):
        _, small_reg = run_rb_sig(small_config(4, seed=3), 0, "v")
        _, large_reg = run_rb_sig(small_config(8, seed=3), 0, "v")
        assert large_reg.verifications > small_reg.verifications

    def test_signed_messages_carry_chains(self):
        result, _ = run_rb_sig(small_config(5, seed=4), 0, "v")
        by_type = result.traffic.messages_by_type
        assert by_type[MessageType.SIGNED] > 0
        assert by_type[MessageType.ACK] == 0  # classic protocol: no ACKs


class TestRbSigAdversarial:
    def test_silent_initiator_yields_bottom(self):
        result, _ = run_rb_sig(
            small_config(7, seed=5), 0, "v",
            behaviors={0: SelectiveOmission(victims=set(range(1, 7)))},
        )
        honest = result.honest_outputs({0})
        assert set(honest.values()) == {None}

    def test_partial_omission_still_agrees(self):
        result, _ = run_rb_sig(
            small_config(7, seed=6), 0, "v",
            behaviors={0: SelectiveOmission(victims={1, 2})},
        )
        honest = result.honest_outputs({0})
        assert len(set(honest.values())) == 1


class TestRbSigForgeryResistance:
    def test_chain_with_duplicate_signers_rejected(self):
        registry = KeyRegistry(4, real_signatures=False)
        from repro.baselines.rb_sig import RbSigProgram, _chain_material

        program = RbSigProgram(3, 0, 4, 1, registry)
        chain = (
            registry.sign(0, _chain_material(0, "m", ())),
            registry.sign(0, _chain_material(0, "m", (0,))),
        )
        assert not program._chain_valid("m", chain, rnd=2)

    def test_chain_not_from_initiator_rejected(self):
        registry = KeyRegistry(4, real_signatures=False)
        from repro.baselines.rb_sig import RbSigProgram, _chain_material

        program = RbSigProgram(3, 0, 4, 1, registry)
        chain = (registry.sign(1, _chain_material(0, "m", ())),)
        assert not program._chain_valid("m", chain, rnd=1)

    def test_real_signature_forgery_rejected(self):
        registry = KeyRegistry(4, seed=9, real_signatures=True)
        from repro.baselines.rb_sig import RbSigProgram, _chain_material

        program = RbSigProgram(3, 0, 4, 1, registry)
        # Signature by key 1 presented as key 0's: must fail.
        entry = registry.sign(1, _chain_material(0, "m", ()))
        forged = (0, entry[1], entry[2])
        assert not program._chain_valid("m", (forged,), rnd=1)

    def test_wrong_length_chain_rejected(self):
        registry = KeyRegistry(4, real_signatures=False)
        from repro.baselines.rb_sig import RbSigProgram, _chain_material

        program = RbSigProgram(3, 0, 4, 1, registry)
        chain = (registry.sign(0, _chain_material(0, "m", ())),)
        assert not program._chain_valid("m", chain, rnd=2)  # needs 2 sigs


class TestRbEarly:
    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_validity(self, n):
        result = run_rb_early(small_config(n, seed=n), 0, "value")
        assert set(result.outputs.values()) == {"value"}

    def test_two_rounds_honest(self):
        result = run_rb_early(small_config(9, seed=1), 0, "v")
        assert result.rounds_executed == 2

    def test_liveness_broadcast_every_round(self):
        n = 6
        result = run_rb_early(small_config(n, seed=2), 0, "v")
        # Round 1: n broadcasters; round 2: the n-1 non-initiators relay.
        assert result.traffic.messages_by_type[MessageType.VALUE] == (
            n * (n - 1) + (n - 1) * (n - 1)
        )

    def test_silent_initiator_bottom_with_early_stop(self):
        config = small_config(9, seed=3)
        result = run_rb_early(
            config, 0, "v",
            behaviors={0: SelectiveOmission(victims=set(range(1, 9)))},
        )
        honest = result.honest_outputs({0})
        assert set(honest.values()) == {None}
        # Early stopping: decided well before t+1 (one fault observed).
        assert result.rounds_executed < config.t + 1

    def test_delayed_initiator_agreement(self):
        result = run_rb_early(
            small_config(9, seed=4), 0, "v", behaviors={0: DelayAdversary(2)}
        )
        honest = result.honest_outputs({0})
        assert len(set(honest.values())) == 1


class TestAppendixBComparison:
    """ERB's O(N^2) vs the baselines' O(N^3) liveness/signature costs."""

    def test_erb_cheaper_than_rb_early_with_faults(self):
        # With a delaying fault the early-stopping baseline keeps paying
        # its every-round liveness broadcasts while ERB does not.
        config_kwargs = dict(seed=5)
        n = 15
        behaviors = lambda: {1: DelayAdversary(3)}
        erb = run_erb(
            small_config(n, **config_kwargs), 0, b"v", behaviors=behaviors()
        )
        early = run_rb_early(
            small_config(n, **config_kwargs), 0, b"v", behaviors=behaviors()
        )
        assert erb.traffic.messages_sent < early.traffic.messages_sent * 2

    def test_erb_bytes_beat_rbsig_bytes(self):
        # Signature chains (192 B each) dominate RBsig's traffic.
        n = 10
        erb = run_erb(small_config(n, seed=6), 0, b"v")
        rbsig, _ = run_rb_sig(small_config(n, seed=6), 0, b"v")
        assert erb.traffic.bytes_sent < rbsig.traffic.bytes_sent

    def test_erb_avoids_signature_verification_entirely(self):
        _, registry = run_rb_sig(small_config(8, seed=7), 0, b"v")
        assert registry.verifications > 0  # the cost ERB never pays


class TestCommitteeBeaconModel:
    """The RandSolomon-flavored committee beacon cost model (the
    EXPERIMENTS.md "TEE-reduction vs error-correcting-code" row)."""

    def test_resilience_calibration(self):
        from repro.baselines import CommitteeBeaconModel
        from repro.common.errors import ConfigurationError

        model = CommitteeBeaconModel()
        # N = 4f+1 is the committee's bound; the TEE beacon needs 2f+1.
        assert model.fault_bound(9) == 2
        assert model.fault_bound(12) == 2
        assert model.fault_bound(13) == 3
        assert model.committee_for_tolerance(2) == 9
        with pytest.raises(ConfigurationError):
            model.fault_bound(4)

    def test_epoch_costs_are_structural(self):
        from repro.baselines import CommitteeBeaconModel

        model = CommitteeBeaconModel(share_bits=128)
        row = model.epoch_row(9)
        # Share wave + vector wave: every message signed and verified.
        assert row["messages"] == 2 * 9 * 8
        assert row["signature_verifications"] == row["messages"]
        # 128 bits over f+1 = 3 data symbols -> 6-byte fragments; the
        # vector wave carries all N fragments per message.
        assert model.fragment_bytes(9) == 6
        assert row["bytes"] > row["messages"] * model.signature_bytes
        assert row["field_operations"] == 9 * 9 * 3 ** 2

    def test_tolerance_row_prices_at_equal_f(self):
        from repro.baselines import CommitteeBeaconModel

        model = CommitteeBeaconModel()
        tee = {"epochs": 2, "messages": 400, "bytes": 40000}
        row = model.tolerance_row(2, tee)
        assert row["committee_n"] == 9
        assert row["tee_n"] == 5
        assert row["tee_messages_per_epoch"] == 200
        assert row["message_ratio_committee_over_tee"] == round(
            row["committee"]["messages"] / 200, 3
        )
        assert row["byte_ratio_committee_over_tee"] > 0
