"""Unit tests for the OS-behaviour building blocks themselves."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    CompositeBehavior,
    DelayAdversary,
    OSBehavior,
    PassthroughBehavior,
    RandomOmission,
    ReplayAdversary,
    SelectiveOmission,
    TamperAdversary,
)
from repro.channel.peer_channel import WireMessage
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType


def _wire(sender=0, receiver=1, counter=1):
    return WireMessage(
        sender=sender, receiver=receiver, counter=counter, size=100,
        mtype=MessageType.ECHO,
    )


class TestBaseBehavior:
    def test_default_is_faithful(self):
        behavior = OSBehavior()
        wire = _wire()
        assert list(behavior.filter_send(wire, 1)) == [(0, wire)]
        assert behavior.filter_receive(wire, 1)
        assert list(behavior.drain_injections(1)) == []

    def test_passthrough_identical(self):
        behavior = PassthroughBehavior()
        wire = _wire()
        assert list(behavior.filter_send(wire, 3)) == [(0, wire)]


class TestDelayAdversary:
    def test_delay_amount(self):
        wire = _wire()
        assert list(DelayAdversary(3).filter_send(wire, 1)) == [(3, wire)]

    def test_zero_delay_allowed(self):
        wire = _wire()
        assert list(DelayAdversary(0).filter_send(wire, 1)) == [(0, wire)]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DelayAdversary(-1)


class TestReplayAdversary:
    def test_stores_and_reinjects(self):
        adversary = ReplayAdversary(replay_after_rounds=2, burst=10)
        wire = _wire()
        assert list(adversary.filter_send(wire, 1)) == [(0, wire)]
        assert list(adversary.drain_injections(2)) == []
        ready = list(adversary.drain_injections(3))
        assert ready == [(0, wire)]
        assert adversary.replays_sent == 1

    def test_burst_limit(self):
        adversary = ReplayAdversary(replay_after_rounds=1, burst=2)
        wires = [_wire(counter=i) for i in range(5)]
        for wire in wires:
            adversary.filter_send(wire, 1)
        assert len(list(adversary.drain_injections(2))) == 2
        assert len(list(adversary.drain_injections(2))) == 2
        assert len(list(adversary.drain_injections(2))) == 1


class TestTamperAdversary:
    def test_tampers_everything_by_default(self):
        adversary = TamperAdversary()
        wire = _wire()
        [(delay, out)] = list(adversary.filter_send(wire, 1))
        assert delay == 0 and out.tampered and out is not wire
        assert adversary.tampered_count == 1

    def test_type_filter(self):
        adversary = TamperAdversary(tamper_types={MessageType.INIT})
        echo = _wire()
        [(_, out)] = list(adversary.filter_send(echo, 1))
        assert out is echo  # ECHO untouched
        init = WireMessage(
            sender=0, receiver=1, counter=2, size=100, mtype=MessageType.INIT
        )
        [(_, out)] = list(adversary.filter_send(init, 1))
        assert out.tampered

    def test_tampered_sealed_copy_differs(self):
        wire = WireMessage(
            sender=0, receiver=1, counter=1, size=50, sealed=b"\x01" * 50
        )
        copy = wire.tampered_copy()
        assert copy.sealed != wire.sealed
        assert copy.tampered


class TestComposite:
    def test_requires_stage(self):
        with pytest.raises(ValueError):
            CompositeBehavior([])

    def test_delays_accumulate(self):
        composite = CompositeBehavior([DelayAdversary(1), DelayAdversary(2)])
        wire = _wire()
        [(delay, out)] = list(composite.filter_send(wire, 1))
        assert delay == 3 and out is wire

    def test_drop_shortcircuits(self):
        composite = CompositeBehavior(
            [SelectiveOmission(victims={1}), DelayAdversary(5)]
        )
        assert list(composite.filter_send(_wire(receiver=1), 1)) == []

    def test_receive_all_stages_must_accept(self):
        composite = CompositeBehavior(
            [PassthroughBehavior(), SelectiveOmission(victims={9}, omit_sends=False, omit_receives=True)]
        )
        assert composite.filter_receive(_wire(sender=3), 1)
        assert not composite.filter_receive(_wire(sender=9), 1)

    def test_injections_merged(self):
        composite = CompositeBehavior(
            [
                ReplayAdversary(replay_after_rounds=1),
                ReplayAdversary(replay_after_rounds=1),
            ]
        )
        composite.filter_send(_wire(), 1)
        assert len(list(composite.drain_injections(2))) == 2


class TestRandomOmissionDistribution:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20)
    def test_drop_rate_tracks_probability(self, seed):
        adversary = RandomOmission(
            DeterministicRNG(("drop", seed)), send_drop_p=0.5
        )
        kept = sum(
            1 for i in range(200)
            if list(adversary.filter_send(_wire(counter=i), 1))
        )
        assert 60 <= kept <= 140  # Binomial(200, .5) tail bound

    def test_zero_probability_never_drops(self):
        adversary = RandomOmission(DeterministicRNG(0), send_drop_p=0.0)
        assert all(
            list(adversary.filter_send(_wire(counter=i), 1))
            for i in range(50)
        )
