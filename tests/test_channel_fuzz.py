"""Fuzzing the blinded channel: attacker-controlled bytes must fail
closed — a clean IntegrityError/ReplayError, never a crash or a bogus
accept."""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.peer_channel import SecureChannel
from repro.common.config import ChannelSecurity
from repro.common.errors import CryptoError, IntegrityError, ReplayError
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.crypto.dh import MODP_768
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock


class _FuzzProto(EnclaveProgram):
    PROGRAM_NAME = "fuzz-proto"


def _setup():
    rng = DeterministicRNG("fuzz")
    clock = SimulationClock()
    authority = AttestationAuthority(rng)
    a = Enclave(0, _FuzzProto(), rng, clock, authority)
    b = Enclave(1, _FuzzProto(), rng, clock, authority)
    channel = SecureChannel.establish(a, b, ChannelSecurity.FULL, MODP_768)
    return a, b, channel


_A, _B, _CHANNEL = _setup()
_MESSAGE = ProtocolMessage(MessageType.INIT, 0, 1, b"payload", 1, "fuzz")


class TestCiphertextFuzz:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=150)
    def test_random_bytes_rejected(self, noise):
        wire = _CHANNEL.write(0, _MESSAGE, _A.rdrand.rng(), _A.measurement)
        forged = replace(wire, sealed=noise)
        with pytest.raises(CryptoError):
            _CHANNEL.read(1, forged)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=150)
    def test_single_byte_corruption_rejected(self, position, xor):
        wire = _CHANNEL.write(0, _MESSAGE, _A.rdrand.rng(), _A.measurement)
        body = bytearray(wire.sealed)
        body[position % len(body)] ^= (xor or 1)
        with pytest.raises(CryptoError):
            _CHANNEL.read(1, replace(wire, sealed=bytes(body)))

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=50)
    def test_truncation_rejected(self, cut):
        wire = _CHANNEL.write(0, _MESSAGE, _A.rdrand.rng(), _A.measurement)
        truncated = replace(wire, sealed=wire.sealed[:-cut])
        with pytest.raises(CryptoError):
            _CHANNEL.read(1, truncated)

    def test_ciphertext_swap_between_directions_rejected(self):
        # Direction binding: b->a ciphertext presented on the a->b path.
        wire_ba = _CHANNEL.write(1, _MESSAGE, _B.rdrand.rng(), _B.measurement)
        forged = replace(wire_ba, sender=0, receiver=1)
        with pytest.raises(CryptoError):
            _CHANNEL.read(1, forged)

    def test_splice_two_valid_ciphertexts_rejected(self):
        w1 = _CHANNEL.write(0, _MESSAGE, _A.rdrand.rng(), _A.measurement)
        w2 = _CHANNEL.write(0, _MESSAGE, _A.rdrand.rng(), _A.measurement)
        half = len(w1.sealed) // 2
        spliced = replace(w1, sealed=w1.sealed[:half] + w2.sealed[half:])
        with pytest.raises(CryptoError):
            _CHANNEL.read(1, spliced)
