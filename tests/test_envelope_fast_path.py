"""The round-envelope layer must be invisible in every logical observable.

The engine coalesces all messages sharing a ``(sender, receiver, round)``
triple into one :class:`~repro.channel.peer_channel.Envelope` per link
crossing when a run is honest and measurement-homogeneous (and, for FULL
channels, untraced).  These tests pin the mandatory equivalence:
byte-identical logical ``TrafficStats`` (including per-round bytes),
outputs, halted sets and decided rounds between the envelope and per-wire
paths, on seeded honest and adversarial ERB *and* ERNG runs over all
three channel fidelities — plus traced-run event identity, the dual
physical ledger invariants, the transport seal/open semantics, and the
satellite fixes that rode along (neighbour-tuple caching, skipping
``message_size`` for empty fan-outs).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ChannelSecurity, SimulationConfig, run_erb, run_erng
from repro.adversary.omission import RandomOmission, SelectiveOmission
from repro.common.errors import ReplayError
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.core.erb import ErbProgram
from repro.net.simulator import SynchronousNetwork
from repro.net.transport import ModeledTransport, PlainTransport
from repro.obs.events import EnvelopeEvent
from repro.obs.tracer import Tracer
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock


def _snapshot(result):
    """Every logical observable of a run the equivalence claim covers."""
    traffic = result.traffic
    return {
        "messages_sent": traffic.messages_sent,
        "bytes_sent": traffic.bytes_sent,
        "messages_by_type": dict(traffic.messages_by_type),
        "bytes_by_type": dict(traffic.bytes_by_type),
        "bytes_by_round": dict(traffic.bytes_by_round),
        "omissions": traffic.omissions,
        "rejections": traffic.rejections,
        "outputs": result.outputs,
        "halted": result.halted,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "termination_seconds": result.stats.termination_seconds,
    }


def _legacy_config(config: SimulationConfig) -> SimulationConfig:
    return SimulationConfig(
        n=config.n,
        t=config.t,
        delta=config.delta,
        bandwidth_bytes_per_s=config.bandwidth_bytes_per_s,
        channel_security=config.channel_security,
        ack_threshold=config.ack_threshold,
        seed=config.seed,
        random_bits=config.random_bits,
        tracer=config.tracer,
        extra={
            **config.extra,
            "disable_envelope_fast_path": True,
            "disable_fanout_fast_path": True,
        },
    )


_FIDELITIES = [
    (ChannelSecurity.MODELED, 24),
    (ChannelSecurity.NONE, 16),
    (ChannelSecurity.FULL, 6),
]


@pytest.mark.parametrize("security, n", _FIDELITIES)
def test_honest_erb_envelope_equals_legacy(security, n):
    extra = {"dh_group": "small"} if security is ChannelSecurity.FULL else {}
    config = SimulationConfig(n=n, seed=5, channel_security=security, extra=extra)
    env = run_erb(config, initiator=0, message=b"equiv")
    legacy = run_erb(_legacy_config(config), initiator=0, message=b"equiv")
    assert _snapshot(env) == _snapshot(legacy)
    assert env.outputs and all(v == b"equiv" for v in env.outputs.values())
    # The physical ledger diverges from the logical one: crossings never
    # exceed messages.  ERB sends one message per link per wave, so there
    # is nothing to coalesce; a FULL singleton envelope even pays a few
    # bytes of tuple framing on top of the per-message seal.
    assert 0 < env.traffic.envelopes_sent <= env.traffic.messages_sent
    if security is ChannelSecurity.FULL:
        assert env.traffic.envelope_bytes_sent <= (
            env.traffic.bytes_sent + 5 * env.traffic.envelopes_sent
        )
    else:
        assert env.traffic.envelope_bytes_sent <= env.traffic.bytes_sent
    # The legacy run (envelope layer off) mirrors 1:1.
    assert legacy.traffic.envelopes_sent == legacy.traffic.messages_sent
    assert legacy.traffic.envelope_bytes_sent == legacy.traffic.bytes_sent


@pytest.mark.parametrize(
    "security, n",
    [
        (ChannelSecurity.MODELED, 12),
        (ChannelSecurity.NONE, 12),
        (ChannelSecurity.FULL, 5),
    ],
)
def test_honest_erng_envelope_equals_legacy(security, n):
    """ERNG runs N concurrent ERB instances — the coalescing showcase."""
    extra = {"dh_group": "small"} if security is ChannelSecurity.FULL else {}
    config = SimulationConfig(n=n, seed=8, channel_security=security, extra=extra)
    env = run_erng(config)
    legacy = run_erng(_legacy_config(config))
    assert _snapshot(env) == _snapshot(legacy)
    assert len(set(env.outputs.values())) == 1
    # N concurrent instances per link must actually coalesce.
    assert env.traffic.coalescing_ratio > 1.5
    assert env.traffic.envelope_bytes_sent < env.traffic.bytes_sent


def _omission_behaviors():
    # Stateful behaviours must be rebuilt per run so both paths consume
    # identical adversary coin flips.
    return {
        1: RandomOmission(DeterministicRNG(("adv", 1)), send_drop_p=0.5),
        2: SelectiveOmission(victims=range(3, 12)),
    }


def test_adversarial_erb_falls_back_and_matches():
    config = SimulationConfig(n=16, seed=9)

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"adv" if node_id == 0 else None,
        )

    network = SynchronousNetwork(config, factory, behaviors=_omission_behaviors())
    assert network._envelope_fast_path is False
    adv = network.run(config.t + 2)

    legacy = run_erb(
        _legacy_config(config),
        initiator=0,
        message=b"adv",
        behaviors=_omission_behaviors(),
    )
    assert _snapshot(adv) == _snapshot(legacy)
    assert adv.traffic.omissions > 0
    # Per-wire fallback with envelope accounting: messages keep their own
    # sealing (physical bytes == logical bytes) but crossings coalesce.
    assert adv.traffic.envelope_bytes_sent == adv.traffic.bytes_sent
    assert 0 < adv.traffic.envelopes_sent <= adv.traffic.messages_sent


def test_adversarial_erng_falls_back_and_matches():
    config = SimulationConfig(n=12, seed=13)
    adv = run_erng(config, behaviors=_omission_behaviors())
    legacy = run_erng(_legacy_config(config), behaviors=_omission_behaviors())
    assert _snapshot(adv) == _snapshot(legacy)
    assert adv.traffic.envelope_bytes_sent == adv.traffic.bytes_sent


@pytest.mark.parametrize(
    "security", [ChannelSecurity.MODELED, ChannelSecurity.NONE]
)
def test_traced_envelope_run_replays_per_wire_events(security):
    """A traced MODELED/NONE run takes the envelope path and must emit the
    per-wire event stream of the legacy path exactly, plus the envelope
    events that expose the coalescing."""
    t_env, t_leg = Tracer.memory(), Tracer.memory()
    env = run_erng(
        SimulationConfig(n=8, seed=3, channel_security=security, tracer=t_env)
    )
    run_erng(_legacy_config(
        SimulationConfig(n=8, seed=3, channel_security=security, tracer=t_leg)
    ))
    shared = [e for e in t_env.events if not isinstance(e, EnvelopeEvent)]
    envelopes = [e for e in t_env.events if isinstance(e, EnvelopeEvent)]
    assert shared == t_leg.events
    assert envelopes
    assert sum(e.count for e in envelopes) == env.traffic.messages_sent
    assert sum(e.size for e in envelopes) == env.traffic.envelope_bytes_sent
    assert {e.wave for e in envelopes} == {"transmit", "ack"}


def test_traced_full_run_falls_back_to_per_wire():
    """Traced FULL events carry real per-message sealed sizes, which only
    per-message sealing can produce — the envelope path must decline."""
    config = SimulationConfig(
        n=4,
        seed=2,
        channel_security=ChannelSecurity.FULL,
        tracer=Tracer.memory(),
        extra={"dh_group": "small"},
    )

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"full" if node_id == 0 else None,
        )

    network = SynchronousNetwork(config, factory)
    assert network._envelope_fast_path is False
    assert network._envelope_accounting is True


def test_envelope_path_is_active_by_default():
    config = SimulationConfig(n=8, seed=1)

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"on" if node_id == 0 else None,
        )

    network = SynchronousNetwork(config, factory)
    assert network._envelope_fast_path is True
    assert network._envelope_accounting is False
    # A tracer keeps the envelope path on for non-FULL fidelities.
    traced = SimulationConfig(n=8, seed=1, tracer=Tracer.memory())
    assert SynchronousNetwork(traced, factory)._envelope_fast_path is True


# ---------------------------------------------------------------------------
# property test: the logical ledger is envelope-invariant
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=14),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_logical_stats_envelope_invariant(n, seed):
    config = SimulationConfig(n=n, seed=seed)
    env = run_erng(config)
    legacy = run_erng(_legacy_config(config))
    assert _snapshot(env) == _snapshot(legacy)
    # Physical invariants: crossings never exceed logical messages, and
    # coalescing only ever removes per-message channel overhead.
    assert env.traffic.envelopes_sent <= env.traffic.messages_sent
    assert env.traffic.envelope_bytes_sent <= env.traffic.bytes_sent


# ---------------------------------------------------------------------------
# transport seal/open semantics
# ---------------------------------------------------------------------------

class _EnvelopeProgram(ErbProgram):
    PROGRAM_NAME = "envelope-unit"


class _SilentProgram(EnclaveProgram):
    PROGRAM_NAME = "silent-unit"


def _enclaves(count, seed):
    master = DeterministicRNG(("envelope-unit", seed))
    clock = SimulationClock()
    return {
        node: Enclave(
            node,
            _EnvelopeProgram(node_id=node, initiator=0, n=count, t=0, seq=1),
            master,
            clock,
            None,
        )
        for node in range(count)
    }


def _message(seq):
    return ProtocolMessage(MessageType.ECHO, 0, seq, b"payload", 1, "unit")


@pytest.mark.parametrize("transport_cls", [ModeledTransport, PlainTransport])
def test_seal_envelope_advances_counters_like_writes(transport_cls):
    sequential = transport_cls(_enclaves(4, 7))
    coalesced = transport_cls(_enclaves(4, 7))
    members = [_message(seq) for seq in range(1, 4)]
    size = sum(sequential.message_size(m) for m in members)
    for member in members:
        sequential.write(0, 1, member, sequential.message_size(member))
    env = coalesced.seal_envelope(0, 1, members, size=size)
    assert env.count == len(members)
    assert env.size == size
    # One more write on each side lands on the same counter.
    follow_a = sequential.write(0, 1, _message(9), 10)
    follow_b = coalesced.write(0, 1, _message(9), 10)
    assert follow_a.counter == follow_b.counter


def test_modeled_open_envelope_rejects_replay():
    transport = ModeledTransport(_enclaves(3, 11))
    members = [_message(1)]
    env = transport.seal_envelope(0, 1, members, size=100)
    assert transport.open_envelope(1, env) == members
    with pytest.raises(ReplayError):
        transport.open_envelope(1, env)


def test_full_envelope_member_sizes_match_per_wire_writes():
    """FULL-mode logical accounting: each envelope member's reported size
    must equal what a per-message seal would have produced — the member
    keeps its own channel counter, only the AEAD call is amortized."""
    from repro.crypto.dh import MODP_768
    from repro.net.transport import FullTransport
    from repro.sgx.attestation import AttestationAuthority

    def full_transport(seed):
        master = DeterministicRNG(("envelope-full", seed))
        clock = SimulationClock()
        authority = AttestationAuthority(master, MODP_768)
        enclaves = {
            node: Enclave(
                node,
                _EnvelopeProgram(node_id=node, initiator=0, n=3, t=0, seq=1),
                master,
                clock,
                authority,
            )
            for node in range(3)
        }
        return FullTransport(enclaves, MODP_768)

    members = [_message(seq) for seq in range(1, 5)]
    sequential = full_transport(5)
    per_wire_sizes = [sequential.write(0, 1, m).size for m in members]

    coalesced = full_transport(5)
    env = coalesced.seal_envelope(0, 1, members)
    assert env.member_sizes == per_wire_sizes
    # One seal for the whole link: physically smaller than the sum.
    assert env.size < sum(per_wire_sizes)
    # Opening verifies and returns the members in order.
    assert list(coalesced.open_envelope(1, env)) == members
    with pytest.raises(ReplayError):
        coalesced.open_envelope(1, env)


# ---------------------------------------------------------------------------
# satellites: neighbour-tuple cache, empty-fanout sizing
# ---------------------------------------------------------------------------

def _build_network(config):
    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"cache" if node_id == 0 else None,
        )

    return SynchronousNetwork(config, factory)


def test_neighbour_tuple_is_cached_per_node():
    network = _build_network(SimulationConfig(n=8, seed=4))
    calls = []
    original = network.topology.neighbours

    def counting(node):
        calls.append(node)
        return original(node)

    network.topology.neighbours = counting
    first = network.neighbour_tuple(3)
    second = network.neighbour_tuple(3)
    assert first is second  # same tuple object: recomputation skipped
    assert calls == [3]
    network.invalidate_neighbour_cache(3)
    assert network.neighbour_tuple(3) == first
    assert calls == [3, 3]


def test_neighbour_cache_survives_a_run_and_clears_on_replace():
    config = SimulationConfig(n=6, seed=4)
    network = _build_network(config)
    network.run(config.t + 2)
    assert network._neighbour_cache  # populated by the run's multicasts

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=1, n=config.n, t=config.t, seq=2,
            message=b"next" if node_id == 1 else None,
        )

    network.replace_programs(factory)
    assert network._neighbour_cache == {}


def test_context_halt_invalidates_neighbour_cache():
    network = _build_network(SimulationConfig(n=6, seed=4))
    context = network.nodes[2].context
    network.neighbour_tuple(2)
    assert 2 in network._neighbour_cache
    context.halt()
    assert 2 not in network._neighbour_cache
    assert network.nodes[2].alive is False


def test_empty_fanout_skips_message_size():
    """A multicast with no targets (n == 1, or an explicit empty list)
    must not compute a wire size on either engine path."""
    for extra in ({}, {"disable_envelope_fast_path": True,
                       "disable_fanout_fast_path": True}):
        config = SimulationConfig(n=2, seed=6, extra=dict(extra))
        # A no-op program: nothing is staged except the empty-target
        # multicast injected below.
        network = SynchronousNetwork(config, lambda node_id: _SilentProgram())
        calls = []
        original = network.transport.message_size

        def counting(message):
            calls.append(message)
            return original(message)

        network.transport.message_size = counting
        # Staged outside on_round_begin: transmits at the start of round 1.
        network.nodes[0].context.multicast(_message(1), targets=())
        network.run(1)
        assert calls == []
