"""Appendix H applications: beacon, random walk, shared keys, load
balancing."""

from __future__ import annotations

import pytest

from repro.adversary import DelayAdversary
from repro.apps.beacon import BeaconRecord, RandomBeacon
from repro.apps.load_balancer import (
    PregeneratedRandomness,
    RandomizedLoadBalancer,
)
from repro.apps.random_walk import RandomWalk
from repro.apps.shared_key import GroupKeyAgreement, derive_group_key
from repro.common.errors import ConfigurationError, IntegrityError, ProtocolError
from repro.common.rng import DeterministicRNG
from repro.net.topology import Topology


class TestBeacon:
    def test_chain_grows_and_verifies(self):
        beacon = RandomBeacon(n=5, seed=1)
        for _ in range(3):
            beacon.next_beacon()
        assert len(beacon.log) == 3
        assert RandomBeacon.verify_chain(beacon.log)

    def test_epochs_differ(self):
        beacon = RandomBeacon(n=5, seed=2)
        values = {beacon.next_beacon().value for _ in range(4)}
        assert len(values) == 4

    def test_tampered_chain_detected(self):
        beacon = RandomBeacon(n=5, seed=3)
        for _ in range(3):
            beacon.next_beacon()
        from dataclasses import replace

        forged = list(beacon.log)
        forged[1] = replace(forged[1], value=forged[1].value ^ 1)
        assert not RandomBeacon.verify_chain(forged)

    def test_reordered_chain_detected(self):
        beacon = RandomBeacon(n=5, seed=4)
        for _ in range(3):
            beacon.next_beacon()
        assert not RandomBeacon.verify_chain(list(reversed(beacon.log)))

    def test_beacon_with_byzantine_participant(self):
        beacon = RandomBeacon(
            n=7, seed=5, behaviors={0: DelayAdversary(2)}
        )
        record = beacon.next_beacon()
        assert isinstance(record.value, int)
        assert RandomBeacon.verify_chain(beacon.log)

    def test_optimized_backend(self):
        from repro.core.erng_optimized import ClusterConfig

        beacon = RandomBeacon(
            n=24, t=8, optimized=True,
            cluster=ClusterConfig(mode="fixed_fraction"), seed=6,
        )
        record = beacon.next_beacon()
        assert isinstance(record.value, int)

    def test_record_digest_deterministic(self):
        digest1 = BeaconRecord.compute_digest(0, 42, b"prev")
        digest2 = BeaconRecord.compute_digest(0, 42, b"prev")
        assert digest1 == digest2
        assert BeaconRecord.compute_digest(1, 42, b"prev") != digest1


class TestRandomWalk:
    def _topology(self):
        return Topology.random_regular(24, 4, DeterministicRNG("walk-topo"))

    def test_walk_follows_edges(self):
        topo = self._topology()
        walk = RandomWalk(topo, beacon_value=12345)
        path = walk.run(start=0, steps=20)
        assert path[0] == 0 and len(path) == 21
        for a, b in zip(path, path[1:]):
            assert topo.are_connected(a, b)

    def test_walk_verifiable(self):
        walk = RandomWalk(self._topology(), beacon_value=999)
        path = walk.run(start=3, steps=10, walk_id="w1")
        assert walk.verify(3, path, walk_id="w1")
        assert not walk.verify(3, path[:-1] + [path[-1] ^ 1], walk_id="w1")

    def test_different_walk_ids_diverge(self):
        walk = RandomWalk(self._topology(), beacon_value=7)
        assert walk.run(0, 15, walk_id=1) != walk.run(0, 15, walk_id=2)

    def test_same_beacon_same_walk(self):
        topo = self._topology()
        a = RandomWalk(topo, beacon_value=5).run(0, 15)
        b = RandomWalk(topo, beacon_value=5).run(0, 15)
        assert a == b

    def test_endpoint_distribution_mixes(self):
        topo = Topology.full_mesh(10)
        walk = RandomWalk(topo, beacon_value=31337)
        counts = walk.endpoint_distribution(start=0, steps=8, walks=600)
        # On a complete graph the endpoint is near-uniform: every node
        # should be hit, none should dominate.
        assert all(count > 0 for count in counts)
        assert max(counts) < 4 * min(counts)

    def test_bad_inputs(self):
        walk = RandomWalk(self._topology(), beacon_value=1)
        with pytest.raises(ConfigurationError):
            walk.run(start=99, steps=5)
        with pytest.raises(ConfigurationError):
            walk.run(start=0, steps=-1)


class TestSharedKey:
    def test_all_honest_nodes_same_key(self):
        keys = GroupKeyAgreement(n=5, seed=1).agree("session-1")
        assert len(set(keys.values())) == 1
        assert len(next(iter(keys.values()))) == 32

    def test_context_separation(self):
        value = 123456789
        assert derive_group_key(value, "a") != derive_group_key(value, "b")

    def test_value_separation(self):
        assert derive_group_key(1, "ctx") != derive_group_key(2, "ctx")

    def test_short_keys_refused(self):
        with pytest.raises(ProtocolError):
            derive_group_key(1, "ctx", length=8)

    def test_agreement_with_byzantine(self):
        keys = GroupKeyAgreement(
            n=7, seed=2, behaviors={0: DelayAdversary(3)}
        ).agree("session-2")
        assert len(set(keys.values())) == 1
        assert 0 not in keys  # byzantine node excluded from the view


class TestLoadBalancer:
    def test_assignment_deterministic_across_peers(self):
        a = RandomizedLoadBalancer(["w1", "w2", "w3"], beacon_value=42)
        b = RandomizedLoadBalancer(["w1", "w2", "w3"], beacon_value=42)
        for i in range(50):
            assert a.assign(f"task-{i}") == b.assign(f"task-{i}")

    def test_different_beacons_shuffle(self):
        a = RandomizedLoadBalancer(["w1", "w2", "w3", "w4"], beacon_value=1)
        b = RandomizedLoadBalancer(["w1", "w2", "w3", "w4"], beacon_value=2)
        assignments_a = [a.assign(f"t{i}") for i in range(40)]
        assignments_b = [b.assign(f"t{i}") for i in range(40)]
        assert assignments_a != assignments_b

    def test_roughly_fair(self):
        balancer = RandomizedLoadBalancer(
            [f"w{i}" for i in range(4)], beacon_value=7
        )
        histogram = balancer.assignment_histogram(800)
        assert all(100 < count < 300 for count in histogram.values())

    def test_failure_migrates_only_failed_workers_tasks(self):
        balancer = RandomizedLoadBalancer(["a", "b", "c"], beacon_value=9)
        before = {f"t{i}": balancer.assign(f"t{i}") for i in range(60)}
        balancer.mark_failed("b")
        after = {f"t{i}": balancer.assign(f"t{i}") for i in range(60)}
        for task, worker in before.items():
            if worker != "b":
                assert after[task] == worker  # rendezvous stability
            else:
                assert after[task] != "b"

    def test_recovery(self):
        balancer = RandomizedLoadBalancer(["a", "b"], beacon_value=1)
        balancer.mark_failed("a")
        balancer.mark_recovered("a")
        assert balancer.assignment_histogram(100)["a"] > 0

    def test_all_failed_rejected(self):
        balancer = RandomizedLoadBalancer(["a"], beacon_value=1)
        balancer.mark_failed("a")
        with pytest.raises(ConfigurationError):
            balancer.assign("t")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomizedLoadBalancer([], beacon_value=1)
        with pytest.raises(ConfigurationError):
            RandomizedLoadBalancer(["a", "a"], beacon_value=1)
        with pytest.raises(ConfigurationError):
            RandomizedLoadBalancer(["a"], beacon_value=1).mark_failed("zz")


class TestPregeneratedRandomness:
    def test_seal_unseal_roundtrip(self):
        rng = DeterministicRNG("pool")
        pre = PregeneratedRandomness(b"platform", b"measurement")
        sealed = pre.generate_and_seal(count=10, bits=32, rng=rng)
        pool = pre.unseal_pool(sealed)
        assert pool.remaining == 10
        values = [pool.draw() for _ in range(10)]
        assert len(set(values)) > 1

    def test_pool_exhaustion(self):
        rng = DeterministicRNG("pool2")
        pre = PregeneratedRandomness(b"p", b"m")
        pool = pre.unseal_pool(pre.generate_and_seal(2, 16, rng))
        pool.draw()
        pool.draw()
        with pytest.raises(ConfigurationError):
            pool.draw()

    def test_wrong_program_cannot_unseal(self):
        rng = DeterministicRNG("pool3")
        sealed = PregeneratedRandomness(b"p", b"m1").generate_and_seal(
            4, 16, rng
        )
        with pytest.raises(IntegrityError):
            PregeneratedRandomness(b"p", b"m2").unseal_pool(sealed)

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            PregeneratedRandomness(b"p", b"m").generate_and_seal(
                0, 16, DeterministicRNG(0)
            )
