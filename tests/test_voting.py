"""Commit-reveal voting with ERNG tie-breaking (Appendix H)."""

from __future__ import annotations

import pytest

from repro.adversary import DelayAdversary
from repro.apps.voting import CommitRevealPoll, _commitment
from repro.common.errors import ConfigurationError, ProtocolError


class TestCommitment:
    def test_binding(self):
        assert _commitment("A", b"n1") != _commitment("B", b"n1")
        assert _commitment("A", b"n1") != _commitment("A", b"n2")

    def test_deterministic(self):
        assert _commitment("A", b"n") == _commitment("A", b"n")


class TestPollBasics:
    def test_clear_majority(self):
        poll = CommitRevealPoll(n=5, options=["yes", "no"], seed=1)
        result = poll.run({0: "yes", 1: "yes", 2: "yes", 3: "no", 4: "no"})
        assert result.winner == "yes"
        assert result.tally == {"yes": 3, "no": 2}
        assert not result.tie_broken
        assert result.discarded == 0

    def test_abstentions_allowed(self):
        poll = CommitRevealPoll(n=5, options=["a", "b"], seed=2)
        result = poll.run({0: "a", 2: "a", 4: "b"})
        assert result.winner == "a"
        assert result.revealed == 3

    def test_tie_break_is_common_and_unbiased_source(self):
        poll = CommitRevealPoll(n=4, options=["a", "b"], seed=3)
        result = poll.run({0: "a", 1: "b"})
        assert result.tie_broken
        assert result.tie_break_value is not None
        assert result.winner in ("a", "b")

    def test_tie_break_deterministic_per_seed(self):
        first = CommitRevealPoll(n=4, options=["a", "b"], seed=4).run(
            {0: "a", 1: "b"}
        )
        second = CommitRevealPoll(n=4, options=["a", "b"], seed=4).run(
            {0: "a", 1: "b"}
        )
        assert first.winner == second.winner
        assert first.tie_break_value == second.tie_break_value

    def test_tie_break_varies_with_seed(self):
        winners = {
            CommitRevealPoll(n=4, options=["a", "b"], seed=s).run(
                {0: "a", 1: "b"}
            ).winner
            for s in range(10)
        }
        assert winners == {"a", "b"}  # both outcomes occur across seeds

    def test_no_ballots_rejected(self):
        poll = CommitRevealPoll(n=3, options=["a", "b"], seed=5)
        with pytest.raises(ProtocolError):
            poll.run({})

    def test_unknown_option_rejected(self):
        poll = CommitRevealPoll(n=3, options=["a", "b"], seed=6)
        with pytest.raises(ConfigurationError):
            poll.run({0: "c"})

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            CommitRevealPoll(n=3, options=["only"])
        with pytest.raises(ConfigurationError):
            CommitRevealPoll(n=3, options=["a", "a"])


class TestPollUnderAttack:
    def test_byzantine_voter_cannot_block_the_poll(self):
        poll = CommitRevealPoll(
            n=7, options=["x", "y"], seed=7,
            behaviors={3: DelayAdversary(3)},
        )
        result = poll.run({0: "x", 1: "x", 2: "y", 3: "y", 4: "x"})
        # Node 3's commitments/reveals never land (delayed => stale):
        # its ballot silently drops, the rest tally normally.
        assert result.winner == "x"
        assert result.tally["x"] == 3
        assert result.tally.get("y", 0) == 1

    def test_delayed_voter_counts_as_abstained_not_equivocated(self):
        poll = CommitRevealPoll(
            n=5, options=["x", "y"], seed=8,
            behaviors={1: DelayAdversary(2)},
        )
        result = poll.run({0: "x", 1: "y", 2: "x"})
        assert result.discarded == 0
        assert result.revealed == 2
