"""Unoptimized ERNG (Algorithm 3): agreement, unbiasedness machinery,
attack resistance."""

from __future__ import annotations

import pytest

from repro.adversary import (
    DelayAdversary,
    LookaheadBiasAdversary,
    SelectiveOmission,
    TamperAdversary,
)
from repro.analysis.bias import empirical_bias, uniformity_chi_square
from repro.common.types import MessageType
from repro.core.erng import run_erng, xor_fold

from tests.conftest import full_crypto_config, small_config


class TestXorFold:
    def test_empty(self):
        assert xor_fold([]) == 0

    def test_single(self):
        assert xor_fold([42]) == 42

    def test_self_inverse(self):
        assert xor_fold([7, 7]) == 0

    def test_order_independent(self):
        assert xor_fold([1, 2, 3]) == xor_fold([3, 1, 2])


class TestHonestErng:
    @pytest.mark.parametrize("n", [2, 3, 5, 9])
    def test_agreement(self, n):
        result = run_erng(small_config(n, seed=n))
        values = set(result.outputs.values())
        assert len(values) == 1
        assert isinstance(values.pop(), int)

    def test_early_stopping_honest(self):
        result = run_erng(small_config(9, seed=1))
        assert result.rounds_executed == 2

    def test_output_is_xor_of_contributions(self):
        from repro.common.config import SimulationConfig
        from repro.core.erng import ErngProgram
        from repro.net.simulator import SynchronousNetwork

        config = small_config(5, seed=2)
        programs = {}

        def factory(node_id):
            programs[node_id] = ErngProgram(
                node_id, config.n, config.t, config.random_bits
            )
            return programs[node_id]

        network = SynchronousNetwork(config, factory)
        result = network.run(max_rounds=config.t + 2)
        contributions = [p.contribution for p in programs.values()]
        assert set(result.outputs.values()) == {xor_fold(contributions)}

    def test_final_set_complete_when_honest(self):
        from repro.common.config import SimulationConfig
        from repro.core.erng import ErngProgram
        from repro.net.simulator import SynchronousNetwork

        config = small_config(5, seed=3)
        programs = {}

        def factory(node_id):
            programs[node_id] = ErngProgram(
                node_id, config.n, config.t, config.random_bits
            )
            return programs[node_id]

        SynchronousNetwork(config, factory).run(max_rounds=config.t + 2)
        for program in programs.values():
            assert set(program.final_set) == set(range(5))

    def test_cubic_traffic_scaling(self):
        small = run_erng(small_config(6, seed=0)).traffic.bytes_sent
        large = run_erng(small_config(12, seed=0)).traffic.bytes_sent
        ratio = large / small
        assert 6.0 < ratio < 10.0  # 2x nodes -> ~8x traffic

    def test_message_counts_match_theory(self):
        n = 6
        result = run_erng(small_config(n, seed=1))
        by_type = result.traffic.messages_by_type
        assert by_type[MessageType.INIT] == n * (n - 1)
        assert by_type[MessageType.ECHO] == n * (n - 1) ** 2

    def test_full_crypto_agreement(self):
        result = run_erng(full_crypto_config(3, seed=4))
        assert len(set(result.outputs.values())) == 1

    def test_distinct_seeds_distinct_outputs(self):
        a = run_erng(small_config(5, seed=10)).outputs[0]
        b = run_erng(small_config(5, seed=11)).outputs[0]
        assert a != b


class TestErngUnderAttack:
    def test_silent_byzantine_contributions_excluded_consistently(self):
        # Byzantine node 0 delays everything: its instance times out to ⊥
        # for *everyone*, and all honest nodes agree on the same XOR.
        result = run_erng(
            small_config(7, seed=5), behaviors={0: DelayAdversary(2)}
        )
        honest = result.honest_outputs({0})
        assert len(set(honest.values())) == 1

    def test_selective_omission_does_not_split_network(self):
        result = run_erng(
            small_config(7, seed=6),
            behaviors={1: SelectiveOmission(victims={2, 3, 4, 5, 6})},
        )
        honest = result.honest_outputs({1})
        assert len(set(honest.values())) == 1

    def test_tamperer_excluded(self):
        result = run_erng(
            small_config(7, seed=7), behaviors={2: TamperAdversary()}
        )
        honest = result.honest_outputs({2})
        assert len(set(honest.values())) == 1
        assert 2 in result.halted

    def test_lookahead_attacker_cannot_bias_erng(self):
        """Attack A4 against ERNG: blind channels hide contributions and
        the round check rejects late releases, so the attacker's
        favourable-set frequency stays at ~1/2 (vs ~3/4 on the strawman —
        see test_strawman_attacks)."""
        favourable = lambda value: value % 2 == 0
        hits = 0
        trials = 40
        for seed in range(trials):
            adversary = LookaheadBiasAdversary(0, favourable)
            result = run_erng(
                small_config(5, seed=seed, random_bits=16),
                behaviors={0: adversary},
            )
            honest = result.honest_outputs({0})
            value = next(iter(honest.values()))
            if favourable(value):
                hits += 1
            # The adversary never saw its own plaintext contribution:
            assert adversary._own_value is None
        # Binomial(40, 1/2): being outside [12, 28] has p < 0.002.
        assert 12 <= hits <= 28

    def test_rounds_grow_with_silent_byzantine(self):
        # With a silent byzantine initiator the deadline t+2 applies.
        result = run_erng(
            small_config(7, seed=8), behaviors={0: DelayAdversary(5)}
        )
        t = small_config(7).t
        assert result.rounds_executed == t + 2


class TestErngStatistics:
    def test_outputs_look_uniform(self):
        k = 16
        samples = [
            next(iter(run_erng(small_config(4, seed=s, random_bits=k)).outputs.values()))
            for s in range(120)
        ]
        stat, critical = uniformity_chi_square(samples, k, buckets=8)
        assert stat < 2 * critical  # loose: no gross non-uniformity

    def test_bias_estimator_near_one(self):
        k = 16
        samples = [
            next(iter(run_erng(small_config(4, seed=s, random_bits=k)).outputs.values()))
            for s in range(120)
        ]
        report = empirical_bias(samples, k)
        assert report["beta"] < 1.5
