"""Tests for the blinded peer channel (Fig. 4) and replay guard."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.peer_channel import SecureChannel, modeled_wire_size
from repro.channel.replay import ReplayGuard
from repro.common.config import CHANNEL_OVERHEAD_BYTES, ChannelSecurity
from repro.common.errors import (
    AttestationError,
    IntegrityError,
    ProtocolError,
    ReplayError,
)
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.crypto.dh import MODP_768
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock


class _Proto(EnclaveProgram):
    PROGRAM_NAME = "channel-test-proto"


class _OtherProto(EnclaveProgram):
    PROGRAM_NAME = "channel-test-other"


def _enclaves(program_b_cls=_Proto, label="chan"):
    rng = DeterministicRNG(label)
    clock = SimulationClock()
    authority = AttestationAuthority(rng)
    a = Enclave(0, _Proto(), rng, clock, authority)
    b = Enclave(1, program_b_cls(), rng, clock, authority)
    return a, b


def _message(payload=b"m", rnd=1):
    return ProtocolMessage(
        type=MessageType.INIT,
        initiator=0,
        seq=1,
        payload=payload,
        rnd=rnd,
        instance="test",
    )


class TestReplayGuard:
    def test_accepts_increasing(self):
        guard = ReplayGuard(10)
        guard.check_and_update(11)
        guard.check_and_update(15)
        assert guard.highest == 15

    def test_rejects_equal(self):
        guard = ReplayGuard(10)
        guard.check_and_update(11)
        with pytest.raises(ReplayError):
            guard.check_and_update(11)

    def test_rejects_stale(self):
        guard = ReplayGuard(10)
        with pytest.raises(ReplayError):
            guard.check_and_update(10)
        with pytest.raises(ReplayError):
            guard.check_and_update(3)

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_only_strictly_increasing_sequences_pass(self, counters):
        guard = ReplayGuard(0)
        accepted = []
        for counter in counters:
            try:
                guard.check_and_update(counter)
                accepted.append(counter)
            except ReplayError:
                pass
        assert accepted == sorted(set(accepted))


class TestFullChannel:
    def _channel(self, program_b_cls=_Proto, label="chan"):
        a, b = _enclaves(program_b_cls, label)
        channel = SecureChannel.establish(
            a, b, ChannelSecurity.FULL, group=MODP_768
        )
        return a, b, channel

    def test_write_read_roundtrip(self):
        a, b, channel = self._channel()
        wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
        assert channel.read(1, wire) == _message()

    def test_wire_is_ciphertext(self):
        a, b, channel = self._channel()
        wire = channel.write(0, _message(b"secret"), a.rdrand.rng(), a.measurement)
        assert wire.plain is None
        assert b"secret" not in wire.sealed  # P3: content hidden from the OS

    def test_tamper_rejected(self):
        a, b, channel = self._channel()
        wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
        with pytest.raises(IntegrityError):
            channel.read(1, wire.tampered_copy())

    def test_replay_rejected(self):
        a, b, channel = self._channel()
        wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
        channel.read(1, wire)
        with pytest.raises(ReplayError):
            channel.read(1, wire)

    def test_cross_direction_replay_rejected(self):
        # A message b wrote cannot be read back by b.
        a, b, channel = self._channel()
        wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
        with pytest.raises(IntegrityError):
            channel.read(0, wire)

    def test_wrong_program_measurement_rejected(self):
        # The H(pi) binding inside the ciphertext (Fig. 4's Read check).
        a, b, channel = self._channel()
        other_measurement = bytes(32)
        wire = channel.write(0, _message(), a.rdrand.rng(), other_measurement)
        with pytest.raises(IntegrityError, match="H\\(pi\\)"):
            channel.read(1, wire)

    def test_establish_rejects_program_mismatch(self):
        a, b = _enclaves(_OtherProto)
        with pytest.raises(AttestationError):
            SecureChannel.establish(a, b, ChannelSecurity.FULL, group=MODP_768)

    def test_bidirectional(self):
        a, b, channel = self._channel()
        wire_ab = channel.write(0, _message(b"a->b"), a.rdrand.rng(), a.measurement)
        wire_ba = channel.write(1, _message(b"b->a"), b.rdrand.rng(), b.measurement)
        assert channel.read(1, wire_ab).payload == b"a->b"
        assert channel.read(0, wire_ba).payload == b"b->a"

    def test_counters_independent_per_direction(self):
        a, b, channel = self._channel()
        for _ in range(3):
            wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
            channel.read(1, wire)
        wire = channel.write(1, _message(), b.rdrand.rng(), b.measurement)
        channel.read(0, wire)  # should not be confused by a->b counters

    def test_non_endpoint_rejected(self):
        a, b, channel = self._channel()
        with pytest.raises(ProtocolError):
            channel.write(99, _message(), a.rdrand.rng(), a.measurement)

    def test_halted_enclave_cannot_establish(self):
        a, b = _enclaves()
        a.halt()
        from repro.common.errors import EnclaveHaltedError

        with pytest.raises(EnclaveHaltedError):
            SecureChannel.establish(a, b, ChannelSecurity.FULL, group=MODP_768)


class TestModeledChannel:
    def _channel(self):
        a, b = _enclaves(label="modeled")
        channel = SecureChannel.establish(a, b, ChannelSecurity.MODELED)
        return a, b, channel

    def test_roundtrip(self):
        a, b, channel = self._channel()
        wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
        assert channel.read(1, wire) == _message()

    def test_modeled_tamper_rejected(self):
        a, b, channel = self._channel()
        wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
        with pytest.raises(IntegrityError):
            channel.read(1, wire.tampered_copy())

    def test_modeled_replay_rejected(self):
        a, b, channel = self._channel()
        wire = channel.write(0, _message(), a.rdrand.rng(), a.measurement)
        channel.read(1, wire)
        with pytest.raises(ReplayError):
            channel.read(1, wire)

    def test_modeled_size_formula(self):
        msg = _message()
        a, b, channel = self._channel()
        wire = channel.write(0, msg, a.rdrand.rng(), a.measurement)
        assert wire.size == modeled_wire_size(msg)

    def test_size_calibration_near_paper_values(self):
        # Section 6.1: INIT ~100 B, ACK ~80 B.
        init = ProtocolMessage(MessageType.INIT, 0, 1, 12345678, 1, "erb")
        ack = ProtocolMessage(
            MessageType.ACK, 0, 1, ("INIT", 1), 1, "erb"
        )
        assert 90 <= modeled_wire_size(init) <= 140
        assert 70 <= modeled_wire_size(ack) <= 130
        assert modeled_wire_size(ack) < modeled_wire_size(init) + 20

    def test_overhead_constant_applied(self):
        msg = _message(b"")
        from repro.common.serialization import encode

        assert modeled_wire_size(msg) == len(encode(msg.to_tuple())) + CHANNEL_OVERHEAD_BYTES
