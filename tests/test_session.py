"""Engine sessions: cross-run reuse, cache hygiene, beacon pipelining.

The contract under test is the one ``repro.net.session`` documents: a
run on a recycled session is **bit-identical** to the same run on a
freshly built network — session reuse (and, with ``workers > 1``, the
persistent forked crew) is purely a performance property.  The cache
-eviction regression test pins the hygiene that makes this true: stale
digest-LRU entries, ack-size hints and neighbour tuples from a prior
run must never leak into the next one.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, run_erng
from repro.apps.beacon import RandomBeacon, _ErngEpochFactory
from repro.common.errors import ConfigurationError
from repro.net.session import EngineSession
from repro.net.shm import shared_memory_available

fork_only = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="parallel engine needs os.fork"
)


def _assert_same_run(session_result, fresh_result) -> None:
    """Bit-identity between a session run and a fresh-network run."""
    assert session_result.outputs == fresh_result.outputs
    assert session_result.halted == fresh_result.halted
    assert session_result.decided_rounds == fresh_result.decided_rounds
    assert (
        dict(session_result.traffic.bytes_by_round)
        == dict(fresh_result.traffic.bytes_by_round)
    )
    assert (
        session_result.traffic.messages_sent
        == fresh_result.traffic.messages_sent
    )
    assert (
        session_result.traffic.bytes_sent == fresh_result.traffic.bytes_sent
    )


class TestSerialSessionReuse:
    def test_session_runs_match_fresh_networks(self):
        factory = _ErngEpochFactory(5, 2, 64)
        with EngineSession(
            SimulationConfig(n=5, seed=3, random_bits=64), factory
        ) as session:
            first = session.run(4)
            reseeded = session.run(4, seed=9)
            # Back to the first seed: the recycled network must
            # reproduce run one bit-for-bit (label-derived RNG forks,
            # not construction-order-dependent state).
            replay = session.run(4, seed=3)
            assert session.runs_started == 3

        _assert_same_run(
            first, run_erng(SimulationConfig(n=5, seed=3, random_bits=64))
        )
        _assert_same_run(
            reseeded, run_erng(SimulationConfig(n=5, seed=9, random_bits=64))
        )
        _assert_same_run(replay, first)

    def test_recycle_evicts_every_cross_run_cache(self):
        """The hygiene regression pin: warm caches from run 1 — plus
        deliberately planted stale entries — must all be evicted by
        ``begin_session_run``, and the next run must still be
        bit-identical to a fresh network's."""
        factory = _ErngEpochFactory(5, 2, 64)
        session = EngineSession(
            SimulationConfig(n=5, seed=3, random_bits=64), factory
        )
        net = session.network
        try:
            session.run(4)
            # The run warmed the digest LRU (the ack-size cache is
            # transient — the engine clears it per wave)...
            assert net._digest_cache
            stats_before = net.stats
            # ...and a hostile prior run could have left anything in
            # them: plant sentinels that would poison run 2 if kept.
            net._digest_cache[("stale",)] = b"poison"
            net._ack_size_cache[("stale",)] = 1
            net._neighbour_cache[999] = (1, 2, 3)

            net.begin_session_run(factory, seed=3)
            assert not net._digest_cache
            assert not net._ack_size_cache
            assert not net._neighbour_cache
            assert net._dispatch_cache is None
            assert net.current_round == 0
            assert net.stats is not stats_before  # per-run TrafficStats

            replay = net.run(4)
            _assert_same_run(
                replay,
                run_erng(SimulationConfig(n=5, seed=3, random_bits=64)),
            )
        finally:
            session.close()

    def test_close_is_idempotent_and_final(self):
        factory = _ErngEpochFactory(5, 2, 64)
        session = EngineSession(
            SimulationConfig(n=5, seed=3, random_bits=64), factory
        )
        session.run(4)
        session.close()
        session.close()
        with pytest.raises(ConfigurationError):
            session.run(4)


@fork_only
class TestParallelCrewReuse:
    @pytest.mark.parametrize("plane", ["shm", "pickle"])
    def test_crew_survives_runs_and_stays_bit_identical(self, plane):
        if plane == "shm" and not shared_memory_available():
            pytest.skip("POSIX shared memory unavailable")
        factory = _ErngEpochFactory(9, 4, 64)
        config = SimulationConfig(
            n=9, seed=5, workers=2, random_bits=64,
            extra={"parallel_data_plane": plane},
        )
        with EngineSession(config, factory) as session:
            first = session.run(6)
            crew = session.network._session_crew
            assert crew is not None  # the fork happened...
            second = session.run(6, seed=11)
            # ...exactly once: the same crew served the recycled run.
            assert session.network._session_crew is crew

        _assert_same_run(
            first, run_erng(SimulationConfig(n=9, seed=5, random_bits=64))
        )
        _assert_same_run(
            second, run_erng(SimulationConfig(n=9, seed=11, random_bits=64))
        )


# ---------------------------------------------------------------------------
# Beacon chains across execution shapes
# ---------------------------------------------------------------------------

def _chain_digests(beacon: RandomBeacon):
    return [record.digest for record in beacon.log]


def _sequential_chain(epochs: int, seed: int = 7, **kwargs):
    beacon = RandomBeacon(n=5, t=2, seed=seed, **kwargs)
    for _ in range(epochs):
        beacon.next_beacon()
    assert RandomBeacon.verify_chain(beacon.log)
    return _chain_digests(beacon)


class TestBeaconChainIdentity:
    @pytest.mark.parametrize("workers,plane", [
        (1, None),
        pytest.param(2, "shm", marks=fork_only),
        pytest.param(2, "pickle", marks=fork_only),
    ])
    def test_sequential_session_pipelined_agree(self, workers, plane):
        if plane == "shm" and not shared_memory_available():
            pytest.skip("POSIX shared memory unavailable")
        extra = {"parallel_data_plane": plane} if plane else None
        epochs = 3
        reference = _sequential_chain(epochs)

        kwargs = dict(n=5, t=2, seed=7, workers=workers, extra=extra)
        with RandomBeacon(session=True, **kwargs) as session_beacon:
            for _ in range(epochs):
                session_beacon.next_beacon()
            assert _chain_digests(session_beacon) == reference

        with RandomBeacon(session=True, **kwargs) as pipelined:
            pipelined.run_pipelined(epochs)
            assert _chain_digests(pipelined) == reference
            assert RandomBeacon.verify_chain(pipelined.log)

    def test_split_batches_resume_the_same_chain(self):
        """Pipelined batches and per-epoch runs interleaved on one
        session extend one chain — identical to all-sequential."""
        reference = _sequential_chain(5)
        with RandomBeacon(n=5, t=2, seed=7, session=True) as beacon:
            beacon.run_pipelined(2)
            beacon.next_beacon()
            beacon.run_pipelined(2)
            assert _chain_digests(beacon) == reference

    def test_overlap_window_is_explicit_and_steady(self):
        """Every epoch after the first stages its INIT inside the
        previous epoch's ACK-wave round (the seed-dependency bound:
        depth-1 overlap), settling at two engine rounds per epoch."""
        with RandomBeacon(n=5, t=2, seed=7, session=True) as beacon:
            beacon.run_pipelined(4)
            stats = beacon.pipeline_stats
        assert [s["overlaps_prev_ack_wave"] for s in stats] == [
            False, True, True, True,
        ]
        for prev, cur in zip(stats, stats[1:]):
            assert cur["staged_round"] == prev["decided_round"]
            assert cur["start_round"] == prev["decided_round"] + 1
            assert cur["rounds"] == 2

    @given(
        epochs=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_pipelined_matches_sequential_for_any_epoch_count(
        self, epochs, seed
    ):
        reference = _sequential_chain(epochs, seed=seed)
        with RandomBeacon(n=5, t=2, seed=seed, session=True) as beacon:
            beacon.run_pipelined(epochs)
            assert _chain_digests(beacon) == reference

    def test_pipelined_rejects_unsupported_shapes(self):
        with RandomBeacon(n=5, t=1, optimized=True, session=True) as beacon:
            with pytest.raises(ConfigurationError):
                beacon.run_pipelined(2)
