"""Optimized ERNG (Algorithm 6): cluster formation, agreement, traffic
savings, and the fixed-schedule adversarial path."""

from __future__ import annotations

import pytest

from repro.adversary import DelayAdversary, SelectiveOmission, TamperAdversary
from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType
from repro.core.erng import run_erng
from repro.core.erng_optimized import (
    ClusterConfig,
    OptimizedErngProgram,
    run_optimized_erng,
)
from repro.net.simulator import SynchronousNetwork



def _config(n, t=None, seed=0, **kwargs):
    return SimulationConfig(n=n, t=t if t is not None else n // 3, seed=seed, **kwargs)


class TestClusterConfig:
    def test_default_gamma_logarithmic(self):
        assert ClusterConfig().resolved_gamma(1024) == 10
        assert ClusterConfig().resolved_gamma(8) == 4  # floor of 4

    def test_explicit_gamma_wins(self):
        assert ClusterConfig(gamma=7).resolved_gamma(1024) == 7

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(mode="bogus").validate(100)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(mode="fixed_fraction", fraction=0.0).validate(100)

    def test_bound_enforced(self):
        with pytest.raises(ConfigurationError):
            run_optimized_erng(SimulationConfig(n=9, t=4, seed=0))


class TestFixedFractionMode:
    def test_agreement(self):
        result = run_optimized_erng(
            _config(24, seed=1), cluster=ClusterConfig(mode="fixed_fraction")
        )
        assert len(set(result.outputs.values())) == 1

    def test_all_nodes_decide(self):
        result = run_optimized_erng(
            _config(24, seed=1), cluster=ClusterConfig(mode="fixed_fraction")
        )
        assert len(result.outputs) == 24

    def test_cluster_members_only_initiate(self):
        config = _config(24, seed=2)
        cluster = ClusterConfig(mode="fixed_fraction")
        programs = {}

        def factory(node_id):
            programs[node_id] = OptimizedErngProgram(
                node_id, config.n, config.t, cluster, config.random_bits
            )
            return programs[node_id]

        SynchronousNetwork(config, factory).run(max_rounds=20)
        cutoff = 16  # ceil(2/3 * 24)
        for node_id, program in programs.items():
            assert program.is_member == (node_id < cutoff)
            assert program.is_initiator == program.is_member

    def test_traffic_beats_unoptimized_at_scale(self):
        """The Fig. 3b comparison: fixed 2N/3 cluster cuts traffic vs the
        cubic unoptimized protocol."""
        n = 27
        unopt = run_erng(SimulationConfig(n=n, t=n // 3, seed=3))
        opt = run_optimized_erng(
            _config(n, seed=3), cluster=ClusterConfig(mode="fixed_fraction")
        )
        assert opt.traffic.bytes_sent < unopt.traffic.bytes_sent

    def test_early_stop_constant_rounds(self):
        result = run_optimized_erng(
            _config(30, seed=4), cluster=ClusterConfig(mode="fixed_fraction")
        )
        assert result.rounds_executed <= 5


class TestSampledMode:
    def test_agreement_large_network(self):
        result = run_optimized_erng(
            _config(120, seed=5), cluster=ClusterConfig(mode="sampled", gamma=7)
        )
        assert len(set(result.outputs.values())) == 1

    def test_cluster_size_near_expectation(self):
        config = _config(200, seed=6)
        cluster = ClusterConfig(mode="sampled", gamma=8)
        programs = {}

        def factory(node_id):
            programs[node_id] = OptimizedErngProgram(
                node_id, config.n, config.t, cluster, config.random_bits
            )
            return programs[node_id]

        SynchronousNetwork(config, factory).run(max_rounds=20)
        members = sum(1 for p in programs.values() if p.is_member)
        # E[|cluster|] ~ 2 gamma = 16; allow a wide band.
        assert 4 <= members <= 40

    def test_second_cluster_smaller(self):
        config = _config(200, seed=7)
        cluster = ClusterConfig(mode="sampled", gamma=9)
        programs = {}

        def factory(node_id):
            programs[node_id] = OptimizedErngProgram(
                node_id, config.n, config.t, cluster, config.random_bits
            )
            return programs[node_id]

        SynchronousNetwork(config, factory).run(max_rounds=20)
        members = sum(1 for p in programs.values() if p.is_member)
        initiators = sum(1 for p in programs.values() if p.is_initiator)
        assert initiators <= members
        assert initiators >= 1

    def test_chosen_and_final_messages_present(self):
        result = run_optimized_erng(
            _config(60, seed=8), cluster=ClusterConfig(mode="sampled", gamma=6)
        )
        by_type = result.traffic.messages_by_type
        assert by_type[MessageType.CHOSEN] > 0
        assert by_type[MessageType.FINAL] > 0

    def test_deterministic(self):
        a = run_optimized_erng(_config(60, seed=9), ClusterConfig(gamma=6))
        b = run_optimized_erng(_config(60, seed=9), ClusterConfig(gamma=6))
        assert a.outputs == b.outputs
        assert a.traffic.bytes_sent == b.traffic.bytes_sent


class TestOptimizedUnderAttack:
    def _run_fixed_schedule(self, n, seed, behaviors):
        config = _config(n, seed=seed, extra={"erng_early_stop": False})
        return run_optimized_erng(
            config,
            cluster=ClusterConfig(mode="fixed_fraction"),
            behaviors=behaviors,
        )

    def test_delaying_member_does_not_break_agreement(self):
        result = self._run_fixed_schedule(
            24, 10, behaviors={0: DelayAdversary(2)}
        )
        honest = result.honest_outputs({0})
        assert len(set(honest.values())) == 1

    def test_tampering_member_ejected(self):
        result = self._run_fixed_schedule(
            24, 11, behaviors={1: TamperAdversary()}
        )
        assert 1 in result.halted
        honest = result.honest_outputs({1})
        assert len(set(honest.values())) == 1

    def test_selective_omission_in_final_phase(self):
        # A member that withholds FINAL from half the network: the
        # remaining >= threshold honest FINALs still deliver agreement.
        result = self._run_fixed_schedule(
            24, 12,
            behaviors={2: SelectiveOmission(victims=set(range(12, 24)))},
        )
        honest = result.honest_outputs({2})
        assert len(set(honest.values())) == 1

    def test_non_bottom_output_under_attack(self):
        result = self._run_fixed_schedule(
            24, 13, behaviors={3: DelayAdversary(1)}
        )
        honest = result.honest_outputs({3})
        value = next(iter(honest.values()))
        assert value is not None
