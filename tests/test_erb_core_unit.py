"""Direct unit tests of the ErbCore state machine (no engine).

A fake context drives the core through hand-crafted message sequences so
every guard of Algorithm 2 is exercised in isolation: round validity
(P5), sequence validity (P6), initiator binding, duplicate counting,
quorum edges, and the ⊥ deadline.
"""

from __future__ import annotations

import pytest

from repro.common.types import MessageType, ProtocolMessage
from repro.core.erb import BOTTOM, ErbCore


class FakeContext:
    """Minimal stand-in for EnclaveContext."""

    def __init__(self, node_id: int, rnd: int = 1) -> None:
        self.node_id = node_id
        self.round = rnd
        self.acks = []        # (dest, message)
        self.multicasts = []  # (message, targets, threshold)

    def acknowledge(self, dest, message):
        self.acks.append((dest, message))

    def multicast(self, message, targets=None, expect_acks=True, threshold=None):
        self.multicasts.append((message, targets, threshold))


def _core(node=5, initiator=0, n=9, t=4, seq=1):
    return ErbCore(
        instance="unit",
        initiator=initiator,
        expected_seq=seq,
        group_size=n,
        fault_bound=t,
    )


def _init(payload=b"m", rnd=1, seq=1, initiator=0, instance="unit"):
    return ProtocolMessage(
        MessageType.INIT, initiator, seq, payload, rnd, instance
    )


def _echo(payload=b"m", rnd=2, seq=1, initiator=0, instance="unit"):
    return ProtocolMessage(
        MessageType.ECHO, initiator, seq, payload, rnd, instance
    )


class TestValidityGuards:
    def test_valid_init_acked_and_staged(self):
        core, ctx = _core(), FakeContext(5)
        assert core.handle_message(ctx, 0, _init())
        assert len(ctx.acks) == 1
        assert len(ctx.multicasts) == 1  # the staged ECHO
        assert core.m_hat == b"m"
        assert core.s_echo == {0, 5}

    def test_stale_round_ignored_no_ack(self):
        """Lockstep (P5): a round-1 INIT arriving in round 2 is omitted."""
        core, ctx = _core(), FakeContext(5, rnd=2)
        core.handle_message(ctx, 0, _init(rnd=1))
        assert ctx.acks == []
        assert core.m_hat != b"m"  # still the <unset> sentinel
        assert core.s_echo == set()

    def test_wrong_seq_ignored(self):
        """Freshness (P6): a replayed past-instance seq is omitted."""
        core, ctx = _core(), FakeContext(5)
        core.handle_message(ctx, 0, _init(seq=99))
        assert ctx.acks == []

    def test_init_from_non_initiator_ignored(self):
        core, ctx = _core(), FakeContext(5)
        core.handle_message(ctx, 3, _init())
        assert ctx.acks == []
        assert core.s_echo == set()

    def test_wrong_instance_not_consumed(self):
        core, ctx = _core(), FakeContext(5)
        assert not core.handle_message(ctx, 0, _init(instance="other"))

    def test_echo_value_mismatch_ignored(self):
        core, ctx = _core(), FakeContext(5)
        core.handle_message(ctx, 0, _init(b"m"))
        before = set(core.s_echo)
        ctx.round = 2
        core.handle_message(ctx, 3, _echo(b"DIFFERENT"))
        assert core.s_echo == before  # not counted, not acked twice


class TestQuorumCounting:
    def test_duplicate_echo_sender_counted_once(self):
        core, ctx = _core(), FakeContext(5)
        ctx.round = 2
        core.handle_message(ctx, 3, _echo())
        core.handle_message(ctx, 3, _echo())
        # sender 3 + self 5: {3, 5}
        assert core.s_echo == {3, 5}

    def test_accept_at_exactly_n_minus_t(self):
        core, ctx = _core(n=9, t=4), FakeContext(5)
        ctx.round = 2
        # quorum = 5 distinct members of S_echo
        senders = [1, 2, 3]
        for sender in senders:
            core.handle_message(ctx, sender, _echo())
            assert not core.decided  # 2..4 entries: below quorum
        core.handle_message(ctx, 4, _echo())
        # {1,2,3,4,5(self)} = 5 = N - t: accept
        assert core.decided
        assert core.output == b"m"
        assert core.decided_round == 2

    def test_first_echo_stages_own_echo(self):
        core, ctx = _core(), FakeContext(5)
        ctx.round = 2
        core.handle_message(ctx, 3, _echo())
        assert len(ctx.multicasts) == 1
        staged, _, _ = ctx.multicasts[0]
        assert staged.type is MessageType.ECHO
        assert staged.payload == b"m"

    def test_second_echo_does_not_restage(self):
        core, ctx = _core(), FakeContext(5)
        ctx.round = 2
        core.handle_message(ctx, 3, _echo())
        core.handle_message(ctx, 4, _echo())
        assert len(ctx.multicasts) == 1


class TestInitiatorPath:
    def test_begin_multicasts_init(self):
        core, ctx = _core(node=0), FakeContext(0)
        core.begin(ctx, b"value")
        assert core.m_hat == b"value"
        assert core.s_echo == {0}
        message, targets, threshold = ctx.multicasts[0]
        assert message.type is MessageType.INIT
        assert targets is None  # whole network

    def test_begin_by_non_initiator_rejected(self):
        core, ctx = _core(), FakeContext(5)
        with pytest.raises(ValueError):
            core.begin(ctx, b"x")

    def test_single_node_group_accepts_immediately(self):
        core = ErbCore("solo", 0, 1, 1, 0)
        ctx = FakeContext(0)
        core.begin(ctx, "v")
        assert core.decided and core.output == "v"


class TestDeadline:
    def test_finish_without_quorum_yields_bottom(self):
        core, ctx = _core(), FakeContext(5)
        ctx.round = 2
        core.handle_message(ctx, 3, _echo())
        ctx.round = 6
        core.finish(ctx)
        assert core.decided
        assert core.output is BOTTOM

    def test_finish_after_accept_keeps_value(self):
        core, ctx = _core(n=3, t=1), FakeContext(2)
        ctx.round = 2
        core.handle_message(ctx, 1, _echo())
        assert core.decided and core.output == b"m"
        core.finish(ctx)
        assert core.output == b"m"

    def test_broadcasting_bottom_payload_is_distinguishable(self):
        """A legitimately broadcast None payload must not be confused
        with the timeout ⊥ — the sentinel keeps them apart."""
        core, ctx = _core(n=3, t=1), FakeContext(2)
        ctx.round = 2
        core.handle_message(ctx, 1, _echo(payload=None))
        assert core.decided
        assert core.output is None
        assert core.decided_round == 2  # accepted, not timed out


class TestClusterParameters:
    def test_participants_restrict_targets(self):
        core = ErbCore(
            "cluster", 0, 1, group_size=4, fault_bound=1,
            participants=[0, 2, 4, 6], ack_threshold=1,
        )
        ctx = FakeContext(0)
        core.begin(ctx, b"v")
        _, targets, threshold = ctx.multicasts[0]
        assert targets == (0, 2, 4, 6)
        assert threshold == 1

    def test_cluster_quorum(self):
        core = ErbCore("cluster", 0, 1, group_size=4, fault_bound=1)
        assert core.accept_quorum == 3
