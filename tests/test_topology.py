"""Tests for topologies (assumption S5 and its Appendix G relaxation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.net.topology import Topology


class TestFullMesh:
    def test_everyone_connected(self):
        topo = Topology.full_mesh(5)
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert topo.are_connected(a, b)

    def test_no_self_loops(self):
        topo = Topology.full_mesh(5)
        for node in range(5):
            assert node not in topo.neighbours(node)

    def test_degree(self):
        topo = Topology.full_mesh(7)
        assert all(topo.degree(node) == 6 for node in range(7))

    def test_is_full_mesh_flag(self):
        assert Topology.full_mesh(4).is_full_mesh

    def test_connected(self):
        assert Topology.full_mesh(10).is_connected()

    def test_edge_count(self):
        topo = Topology.full_mesh(6)
        assert len(list(topo.edges())) == 15  # C(6,2)

    def test_singleton(self):
        topo = Topology.full_mesh(1)
        assert topo.neighbours(0) == frozenset()
        assert topo.is_connected()


class TestRandomRegular:
    def test_connected_whp(self):
        rng = DeterministicRNG("expander")
        topo = Topology.random_regular(64, 4, rng)
        assert topo.is_connected()

    def test_degree_bounds(self):
        rng = DeterministicRNG("deg")
        topo = Topology.random_regular(50, 6, rng)
        # Union of 3 Hamiltonian cycles: degree between 2 and 6.
        for node in range(50):
            assert 2 <= topo.degree(node) <= 6

    def test_not_full_mesh(self):
        rng = DeterministicRNG("sparse")
        topo = Topology.random_regular(30, 4, rng)
        assert not topo.is_full_mesh

    def test_symmetric(self):
        rng = DeterministicRNG("sym")
        topo = Topology.random_regular(20, 4, rng)
        for a, b in topo.edges():
            assert topo.are_connected(a, b)
            assert topo.are_connected(b, a)

    def test_odd_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.random_regular(10, 3, DeterministicRNG(0))

    def test_tiny_network_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.random_regular(2, 2, DeterministicRNG(0))

    @given(st.integers(min_value=5, max_value=40), st.integers(min_value=0, max_value=10))
    @settings(max_examples=30)
    def test_always_connected_property(self, n, seed):
        # A single Hamiltonian cycle is connected by construction; the
        # superposition keeps that invariant for any n and seed.
        topo = Topology.random_regular(n, 4, DeterministicRNG(seed))
        assert topo.is_connected()
