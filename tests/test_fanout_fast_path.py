"""The fan-out fast path must be invisible in every observable result.

The engine takes a batched send/deliver path when a run is honest
(no OS behaviours), untraced, and measurement-homogeneous; everything
else falls back to the per-wire path.  These tests pin the mandatory
equivalence: byte-identical ``TrafficStats`` (including per-round bytes),
outputs, halted sets and decided rounds between the two paths, on seeded
honest and adversarial runs over all three channel fidelities — plus the
cache-lifecycle fixes that rode along (per-round ACK size cache,
per-network digest cache with oldest-half eviction).
"""

from __future__ import annotations

import pytest

from repro import ChannelSecurity, SimulationConfig, run_erb, run_erng
from repro.adversary.classification import trace_from_wire_events
from repro.adversary.omission import RandomOmission, SelectiveOmission
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.core.erb import ErbProgram
from repro.net.simulator import _DIGEST_CACHE_LIMIT, SynchronousNetwork
from repro.net.transport import ModeledTransport, PlainTransport
from repro.sgx.enclave import Enclave
from repro.sgx.trusted_time import SimulationClock


def _snapshot(result):
    """Every observable of a run the equivalence claim covers."""
    traffic = result.traffic
    return {
        "messages_sent": traffic.messages_sent,
        "bytes_sent": traffic.bytes_sent,
        "messages_by_type": dict(traffic.messages_by_type),
        "bytes_by_type": dict(traffic.bytes_by_type),
        "bytes_by_round": dict(traffic.bytes_by_round),
        "omissions": traffic.omissions,
        "rejections": traffic.rejections,
        "outputs": result.outputs,
        "halted": result.halted,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "termination_seconds": result.stats.termination_seconds,
    }


def _legacy_config(config: SimulationConfig) -> SimulationConfig:
    # Both fast paths off: the true per-wire baseline.  (The round-envelope
    # path outranks the fan-out path, so pinning fan-out vs per-wire
    # requires disabling the envelope layer on both sides; the envelope
    # layer has its own equivalence suite in test_envelope_fast_path.py.)
    return SimulationConfig(
        n=config.n,
        t=config.t,
        delta=config.delta,
        bandwidth_bytes_per_s=config.bandwidth_bytes_per_s,
        channel_security=config.channel_security,
        ack_threshold=config.ack_threshold,
        seed=config.seed,
        random_bits=config.random_bits,
        extra={
            **config.extra,
            "disable_fanout_fast_path": True,
            "disable_envelope_fast_path": True,
        },
    )


@pytest.mark.parametrize(
    "security, n",
    [
        (ChannelSecurity.MODELED, 24),
        (ChannelSecurity.NONE, 16),
        (ChannelSecurity.FULL, 6),
    ],
)
def test_honest_erb_fast_equals_legacy(security, n):
    extra = {"disable_envelope_fast_path": True}
    if security is ChannelSecurity.FULL:
        extra["dh_group"] = "small"
    config = SimulationConfig(n=n, seed=5, channel_security=security, extra=extra)
    fast = run_erb(config, initiator=0, message=b"equiv")
    legacy = run_erb(_legacy_config(config), initiator=0, message=b"equiv")
    assert _snapshot(fast) == _snapshot(legacy)
    assert fast.outputs and all(v == b"equiv" for v in fast.outputs.values())


def test_honest_erng_fast_equals_legacy():
    config = SimulationConfig(
        n=12, seed=8, extra={"disable_envelope_fast_path": True}
    )
    fast = run_erng(config)
    legacy = run_erng(_legacy_config(config))
    assert _snapshot(fast) == _snapshot(legacy)
    assert len(set(fast.outputs.values())) == 1


def _omission_behaviors():
    # Stateful behaviours must be rebuilt per run so both paths consume
    # identical adversary coin flips.
    return {
        1: RandomOmission(DeterministicRNG(("adv", 1)), send_drop_p=0.5),
        2: SelectiveOmission(victims=range(3, 12)),
    }


def test_adversarial_run_falls_back_and_matches():
    """Behaviours disable the fast path; results still match a run with
    the fast path explicitly disabled (both execute per-wire)."""
    config = SimulationConfig(n=16, seed=9)

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"adv" if node_id == 0 else None,
        )

    network = SynchronousNetwork(config, factory, behaviors=_omission_behaviors())
    assert network._fanout_fast_path is False
    fast_requested = network.run(config.t + 2)

    legacy = run_erb(
        _legacy_config(config),
        initiator=0,
        message=b"adv",
        behaviors=_omission_behaviors(),
    )
    assert _snapshot(fast_requested) == _snapshot(legacy)
    assert fast_requested.traffic.omissions > 0


def test_traced_run_falls_back_with_identical_action_trace():
    """Tracing disables the fast path, and the batched write still emits
    per-wire events: charged sizes per round reproduce bytes_by_round and
    the Definition A.5 ActionTrace view keeps working."""
    config = SimulationConfig(
        n=8,
        seed=3,
        extra={"trace_actions": True, "disable_envelope_fast_path": True},
    )

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"traced" if node_id == 0 else None,
        )

    network = SynchronousNetwork(config, factory)
    assert network._fanout_fast_path is False
    result = network.run(config.t + 2)

    charged_by_round: dict = {}
    for event in network.tracer.wire_events():
        if event.charged:
            charged_by_round[event.rnd] = (
                charged_by_round.get(event.rnd, 0) + event.size
            )
    assert charged_by_round == dict(result.traffic.bytes_by_round)
    assert trace_from_wire_events(network.tracer.wire_events()) is not None
    assert network.action_trace is not None


def test_honest_fast_path_is_active_by_default():
    config = SimulationConfig(n=8, seed=1)

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"on" if node_id == 0 else None,
        )

    assert SynchronousNetwork(config, factory)._fanout_fast_path is True


# ---------------------------------------------------------------------------
# write_fanout: batched writes must equal sequential per-receiver writes
# ---------------------------------------------------------------------------

class _FanoutProgram(ErbProgram):
    PROGRAM_NAME = "fanout-unit"


def _enclaves(count, seed):
    master = DeterministicRNG(("fanout-unit", seed))
    clock = SimulationClock()
    return {
        node: Enclave(
            node,
            _FanoutProgram(node_id=node, initiator=0, n=count, t=0, seq=1),
            master,
            clock,
            None,
        )
        for node in range(count)
    }


@pytest.mark.parametrize("transport_cls", [ModeledTransport, PlainTransport])
def test_write_fanout_matches_sequential_writes(transport_cls):
    message = ProtocolMessage(MessageType.ECHO, 0, 1, b"payload", 1, "unit")
    sequential = transport_cls(_enclaves(5, 7))
    batched = transport_cls(_enclaves(5, 7))
    targets = [1, 2, 3, 4]
    size = sequential.message_size(message)
    expected = [sequential.write(0, r, message, size) for r in targets]
    got = batched.write_fanout(0, targets, message, size)
    assert got == expected
    # A second fan-out continues the same counter sequence.
    expected2 = [sequential.write(0, r, message, size) for r in targets]
    assert batched.write_fanout(0, targets, message, size) == expected2


# ---------------------------------------------------------------------------
# satellite: cache lifecycles
# ---------------------------------------------------------------------------

def _build_network(config):
    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=0, n=config.n, t=config.t, seq=1,
            message=b"cache" if node_id == 0 else None,
        )

    return SynchronousNetwork(config, factory)


def test_ack_size_cache_does_not_grow_across_rounds():
    """ACK size cache keys embed the round, so old entries are garbage;
    the engine clears the cache at every round start."""
    network = _build_network(SimulationConfig(n=10, seed=4))
    network.run(6)
    # After a multi-round run, only the final round's entries may remain.
    assert all(key[3] == network.current_round for key in network._ack_size_cache)
    assert len(network._ack_size_cache) <= network.config.n


def test_replace_programs_clears_ack_size_cache():
    config = SimulationConfig(n=6, seed=4)
    network = _build_network(config)
    network.run(config.t + 2)
    network._ack_size_cache[("stale", 0, 0, 1, b"x")] = 99

    def factory(node_id):
        return ErbProgram(
            node_id=node_id, initiator=1, n=config.n, t=config.t, seq=2,
            message=b"next" if node_id == 1 else None,
        )

    network.replace_programs(factory)
    assert network._ack_size_cache == {}


def test_digest_cache_is_per_network():
    net_a = _build_network(SimulationConfig(n=6, seed=11))
    net_b = _build_network(SimulationConfig(n=6, seed=11))
    assert net_a._digest_cache is not net_b._digest_cache
    net_a.run(3)
    assert net_a._digest_cache  # populated by the run
    assert net_b._digest_cache == {}  # untouched by the other network


def test_digest_cache_evicts_least_recently_used():
    network = _build_network(SimulationConfig(n=4, seed=12))
    cache = network._digest_cache
    for index in range(_DIGEST_CACHE_LIMIT):
        network._ack_digest(("filler", index))
    assert len(cache) == _DIGEST_CACHE_LIMIT
    # A hit refreshes recency: touch the oldest entry, then overflow.
    refreshed = network._ack_digest(("filler", 0))
    digest = network._ack_digest(("fresh", 0))
    assert len(digest) == 8
    # Exactly one entry is evicted — the least recently used, which is
    # ("filler", 1) now that ("filler", 0) was touched.
    assert len(cache) == _DIGEST_CACHE_LIMIT
    assert ("filler", 1) not in cache
    assert ("filler", 0) in cache
    assert ("fresh", 0) in cache
    # Cached digests are stable across hits.
    assert network._ack_digest(("filler", 0)) == refreshed
    assert network._ack_digest(("fresh", 0)) == digest
    # Eviction order is exactly insertion-refreshed LRU order: the next
    # overflow removes ("filler", 2), the current least recently used.
    network._ack_digest(("fresh", 1))
    assert ("filler", 2) not in cache
    assert ("filler", 3) in cache
