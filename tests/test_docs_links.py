"""Documentation hygiene: every relative link in the markdown docs
resolves, and the documentation index covers all of docs/."""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_docs_links.py")


def test_no_broken_relative_links():
    proc = subprocess.run(
        [sys.executable, CHECKER], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_readme_indexes_every_doc():
    readme = open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8").read()
    docs = sorted(
        name for name in os.listdir(os.path.join(REPO_ROOT, "docs"))
        if name.endswith(".md")
    )
    assert docs, "docs/ directory is empty?"
    missing = [name for name in docs if f"docs/{name}" not in readme]
    assert not missing, f"README documentation index is missing: {missing}"


def test_protocols_links_adversaries():
    protocols = open(
        os.path.join(REPO_ROOT, "docs", "PROTOCOLS.md"), encoding="utf-8"
    ).read()
    assert "ADVERSARIES.md" in protocols
