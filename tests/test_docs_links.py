"""Documentation hygiene: every relative link in the markdown docs
resolves, every backticked ``repro.*`` path and ``python -m repro``
subcommand named in a doc actually exists, and the documentation index
covers all of docs/."""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_docs_links.py")


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_docs_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_broken_relative_links():
    proc = subprocess.run(
        [sys.executable, CHECKER], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_module_path_verifier(checker):
    assert checker._resolve_repro_path("repro.net.wire")
    assert checker._resolve_repro_path("repro.net.wire.fit_round_model")
    assert checker._resolve_repro_path("repro.obs.machine.machine_stamp")
    # logger names are legitimate doc references, not modules
    assert checker._resolve_repro_path("repro.engine")
    assert not checker._resolve_repro_path("repro.net.no_such_module")
    assert not checker._resolve_repro_path("repro.net.wire.no_such_attr")


def test_cli_subcommand_verifier(checker):
    commands = checker.cli_commands()
    assert {"erb", "erng", "beacon", "node", "cluster", "replay"} <= commands


def test_checker_reports_stale_references(checker, tmp_path):
    """A doc naming a dead module or unknown subcommand must fail."""
    bad = checker.REPO_ROOT / "docs" / "_tmp_stale_check.md"
    bad.write_text(
        "see `repro.net.nonexistent` and run `python -m repro frobnicate`\n",
        encoding="utf-8",
    )
    try:
        problems = checker.check_file(bad)
    finally:
        bad.unlink()
    assert any("unresolvable module path" in p for p in problems)
    assert any("unknown CLI subcommand" in p for p in problems)


def test_readme_indexes_every_doc():
    readme = open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8").read()
    docs = sorted(
        name for name in os.listdir(os.path.join(REPO_ROOT, "docs"))
        if name.endswith(".md")
    )
    assert docs, "docs/ directory is empty?"
    missing = [name for name in docs if f"docs/{name}" not in readme]
    assert not missing, f"README documentation index is missing: {missing}"


def test_protocols_links_adversaries():
    protocols = open(
        os.path.join(REPO_ROOT, "docs", "PROTOCOLS.md"), encoding="utf-8"
    ).read()
    assert "ADVERSARIES.md" in protocols
