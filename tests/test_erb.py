"""ERB (Algorithm 2) — honest-case behaviour and Definition 2.1 properties."""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType
from repro.core.erb import run_erb

from tests.conftest import full_crypto_config, small_config


class TestHonestBroadcast:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8, 17, 33])
    def test_validity_all_sizes(self, n):
        result = run_erb(small_config(n, seed=n), initiator=0, message=b"m")
        assert set(result.outputs.values()) == {b"m"}
        assert len(result.outputs) == n

    @pytest.mark.parametrize("n", [3, 8, 16])
    def test_terminates_in_two_rounds(self, n):
        result = run_erb(small_config(n, seed=n), initiator=0, message=b"m")
        assert result.rounds_executed == 2

    def test_single_node_terminates_round_one(self):
        result = run_erb(small_config(1), initiator=0, message="solo")
        assert result.outputs == {0: "solo"}
        assert result.rounds_executed == 1

    def test_any_initiator_works(self):
        for initiator in range(5):
            result = run_erb(
                small_config(5, seed=initiator), initiator=initiator, message=1
            )
            assert set(result.outputs.values()) == {1}

    def test_no_halts_in_honest_run(self):
        result = run_erb(small_config(12, seed=0), initiator=3, message=b"x")
        assert result.halted == []

    def test_message_counts_match_theory(self):
        n = 10
        result = run_erb(small_config(n, seed=0), initiator=0, message=b"x")
        by_type = result.traffic.messages_by_type
        assert by_type[MessageType.INIT] == n - 1
        assert by_type[MessageType.ECHO] == (n - 1) ** 2
        assert by_type[MessageType.ACK] == (n - 1) + (n - 1) ** 2

    def test_traffic_quadratic_scaling(self):
        small = run_erb(small_config(8, seed=0), 0, b"x").traffic.bytes_sent
        large = run_erb(small_config(16, seed=0), 0, b"x").traffic.bytes_sent
        # 2x nodes -> ~4x traffic (quadratic).
        assert 3.0 < large / small < 5.0

    def test_decided_rounds_all_two(self):
        result = run_erb(small_config(9, seed=1), initiator=0, message=b"x")
        assert set(result.decided_rounds.values()) == {2}

    def test_deterministic_given_seed(self):
        a = run_erb(small_config(8, seed=5), 0, b"x")
        b = run_erb(small_config(8, seed=5), 0, b"x")
        assert a.traffic.bytes_sent == b.traffic.bytes_sent
        assert a.outputs == b.outputs

    def test_payload_types(self):
        for payload in (b"bytes", "string", 123456789, ("tuple", 1), None):
            result = run_erb(small_config(4, seed=2), 0, payload)
            assert set(result.outputs.values()) == {payload}

    def test_bound_validation(self):
        with pytest.raises(ConfigurationError):
            run_erb(SimulationConfig(n=4, t=2), initiator=0, message=b"x")


class TestFullCryptoBroadcast:
    """The same protocol over real blinded channels (byte-exact Fig. 4)."""

    def test_validity(self):
        result = run_erb(full_crypto_config(4, seed=1), 0, b"sealed")
        assert set(result.outputs.values()) == {b"sealed"}
        assert result.rounds_executed == 2

    def test_full_and_modeled_agree_on_structure(self):
        full = run_erb(full_crypto_config(4, seed=1), 0, b"m")
        modeled = run_erb(small_config(4, seed=1), 0, b"m")
        assert (
            full.traffic.messages_by_type == modeled.traffic.messages_by_type
        )
        assert full.rounds_executed == modeled.rounds_executed

    def test_full_crypto_traffic_larger(self):
        # Real AEAD framing outweighs the modeled constant.
        full = run_erb(full_crypto_config(4, seed=1), 0, b"m")
        modeled = run_erb(small_config(4, seed=1), 0, b"m")
        assert full.traffic.bytes_sent > modeled.traffic.bytes_sent
