"""Tests for the deterministic, forkable RNG."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(42)
        b = DeterministicRNG(42)
        assert [a.randint(0, 1000) for _ in range(50)] == [
            b.randint(0, 1000) for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert a.randbytes(32) != b.randbytes(32)

    def test_fork_is_deterministic(self):
        a = DeterministicRNG(7).fork("child")
        b = DeterministicRNG(7).fork("child")
        assert a.randbytes(16) == b.randbytes(16)

    def test_forks_are_independent(self):
        root = DeterministicRNG(7)
        child_a = root.fork("a")
        child_b = root.fork("b")
        assert child_a.randbytes(16) != child_b.randbytes(16)

    def test_fork_does_not_consume_parent(self):
        root1 = DeterministicRNG(9)
        root2 = DeterministicRNG(9)
        root1.fork("x")
        assert root1.randbytes(8) == root2.randbytes(8)


class TestRanges:
    def test_randbytes_length(self):
        rng = DeterministicRNG(0)
        for n in (0, 1, 31, 32, 33, 100):
            assert len(rng.randbytes(n)) == n

    def test_randbytes_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randbytes(-1)

    def test_randbits_zero(self):
        assert DeterministicRNG(0).randbits(0) == 0

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_randbits_in_range(self, k):
        value = DeterministicRNG(k).randbits(k)
        assert 0 <= value < 2**k

    @given(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_randint_inclusive(self, low, span):
        value = DeterministicRNG((low, span)).randint(low, low + span)
        assert low <= value <= low + span

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randint(5, 4)

    def test_randrange(self):
        rng = DeterministicRNG(1)
        assert all(0 <= rng.randrange(7) < 7 for _ in range(100))

    def test_randrange_zero_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randrange(0)

    def test_random_unit_interval(self):
        rng = DeterministicRNG(2)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))


class TestCollections:
    def test_choice(self):
        rng = DeterministicRNG(3)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(30))

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).choice([])

    def test_sample_distinct(self):
        rng = DeterministicRNG(4)
        sample = rng.sample(list(range(20)), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_too_many_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).sample([1, 2], 3)

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(5)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_bernoulli_extremes(self):
        rng = DeterministicRNG(6)
        assert not any(rng.bernoulli(0.0) for _ in range(20))
        assert all(rng.bernoulli(1.0) for _ in range(20))

    def test_bernoulli_out_of_range(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).bernoulli(1.5)

    def test_subset_probabilities(self):
        rng = DeterministicRNG(7)
        assert rng.subset(range(100), 0.0) == []
        assert rng.subset(range(100), 1.0) == list(range(100))


class TestDistribution:
    def test_randint_roughly_uniform(self):
        rng = DeterministicRNG("uniformity")
        counts = [0] * 8
        trials = 8000
        for _ in range(trials):
            counts[rng.randint(0, 7)] += 1
        expected = trials / 8
        # chi-square with 7 dof; 40 is far beyond the 1e-6 quantile
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        assert chi2 < 40

    def test_bit_balance(self):
        rng = DeterministicRNG("bits")
        ones = sum(bin(b).count("1") for b in rng.randbytes(4096))
        total = 4096 * 8
        assert abs(ones / total - 0.5) < 0.02
