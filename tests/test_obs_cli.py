"""CLI observability flags end-to-end: --trace-out, inspect, --verbose."""

from __future__ import annotations

import json
import logging

from repro.cli import main
from repro.obs import charged_bytes_by_round, read_trace


class TestTraceOut:
    def test_erb_trace_out_then_inspect(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(
            [
                "erb", "--n", "16", "--initiator", "0",
                "--message", "hello", "--trace-out", trace_path,
            ]
        ) == 0
        run_output = capsys.readouterr()
        assert "ERB broadcast over N=16" in run_output.out
        assert f"trace written to {trace_path}" in run_output.err

        events = read_trace(trace_path)
        assert events, "trace file is empty"
        # Per-round byte totals in the trace match the printed traffic line
        # (total bytes across rounds == the run's bytes_sent).
        per_round = charged_bytes_by_round(events)
        assert per_round and all(v > 0 for v in per_round.values())

        assert main(["inspect", trace_path]) == 0
        timeline = capsys.readouterr().out
        assert "round(s)" in timeline
        assert "begin→transmit→deliver→ack_wave→halt_check→end" in timeline
        assert "!!" not in timeline

    def test_trace_is_valid_jsonl(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        main(["erb", "--n", "8", "--message", "x", "--trace-out", trace_path])
        with open(trace_path) as fh:
            kinds = {json.loads(line)["kind"] for line in fh}
        assert {"phase", "wire", "round", "decision"} <= kinds

    def test_churn_trace_includes_churn_events(self, tmp_path):
        trace_path = str(tmp_path / "c.jsonl")
        assert main(
            [
                "churn", "--n", "9", "--byzantine", "1", "--p", "1.0",
                "--instances", "2", "--trace-out", trace_path,
            ]
        ) == 0
        kinds = {e.kind for e in read_trace(trace_path)}
        assert "churn" in kinds

    def test_no_trace_by_default(self, tmp_path, capsys):
        assert main(["erb", "--n", "8", "--message", "x"]) == 0
        assert "trace written" not in capsys.readouterr().err


class TestVerbose:
    def test_verbose_raises_logger_level(self):
        logger = logging.getLogger("repro")
        previous = logger.level
        try:
            main(["erb", "--n", "8", "--message", "x", "-v"])
            assert logging.getLogger("repro").getEffectiveLevel() <= logging.INFO
            main(["erb", "--n", "8", "--message", "x", "-vv"])
            assert logging.getLogger("repro").getEffectiveLevel() <= logging.DEBUG
        finally:
            logger.setLevel(previous)
            logger.handlers.clear()

    def test_protocol_decisions_logged(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.protocol"):
            main(["erb", "--n", "8", "--message", "x"])
        accepted = [r for r in caplog.records if "accepted" in r.getMessage()]
        assert accepted, "expected accept lines on repro.protocol"
