"""CLI observability flags end-to-end: --trace-out, inspect, --verbose."""

from __future__ import annotations

import json
import logging

from repro.cli import main
from repro.obs import charged_bytes_by_round, read_trace


class TestTraceOut:
    def test_erb_trace_out_then_inspect(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(
            [
                "erb", "--n", "16", "--initiator", "0",
                "--message", "hello", "--trace-out", trace_path,
            ]
        ) == 0
        run_output = capsys.readouterr()
        assert "ERB broadcast over N=16" in run_output.out
        assert f"trace written to {trace_path}" in run_output.err

        events = read_trace(trace_path)
        assert events, "trace file is empty"
        # Per-round byte totals in the trace match the printed traffic line
        # (total bytes across rounds == the run's bytes_sent).
        per_round = charged_bytes_by_round(events)
        assert per_round and all(v > 0 for v in per_round.values())

        assert main(["inspect", trace_path]) == 0
        timeline = capsys.readouterr().out
        assert "round(s)" in timeline
        assert "begin→transmit→deliver→ack_wave→halt_check→end" in timeline
        assert "!!" not in timeline

    def test_trace_is_valid_jsonl(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        main(["erb", "--n", "8", "--message", "x", "--trace-out", trace_path])
        with open(trace_path) as fh:
            kinds = {json.loads(line)["kind"] for line in fh}
        assert {"phase", "wire", "round", "decision"} <= kinds

    def test_churn_trace_includes_churn_events(self, tmp_path):
        trace_path = str(tmp_path / "c.jsonl")
        assert main(
            [
                "churn", "--n", "9", "--byzantine", "1", "--p", "1.0",
                "--instances", "2", "--trace-out", trace_path,
            ]
        ) == 0
        kinds = {e.kind for e in read_trace(trace_path)}
        assert "churn" in kinds

    def test_no_trace_by_default(self, tmp_path, capsys):
        assert main(["erb", "--n", "8", "--message", "x"]) == 0
        assert "trace written" not in capsys.readouterr().err


class TestVerbose:
    def test_verbose_raises_logger_level(self):
        logger = logging.getLogger("repro")
        previous = logger.level
        try:
            main(["erb", "--n", "8", "--message", "x", "-v"])
            assert logging.getLogger("repro").getEffectiveLevel() <= logging.INFO
            main(["erb", "--n", "8", "--message", "x", "-vv"])
            assert logging.getLogger("repro").getEffectiveLevel() <= logging.DEBUG
        finally:
            logger.setLevel(previous)
            logger.handlers.clear()

    def test_protocol_decisions_logged(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.protocol"):
            main(["erb", "--n", "8", "--message", "x"])
        accepted = [r for r in caplog.records if "accepted" in r.getMessage()]
        assert accepted, "expected accept lines on repro.protocol"


class TestTimingOut:
    def test_erb_timing_out_sidecar(self, tmp_path, capsys):
        sidecar = str(tmp_path / "tm.json")
        assert main(
            ["erb", "--n", "16", "--message", "x", "--timing-out", sidecar]
        ) == 0
        err = capsys.readouterr().err
        assert "timing written to" in err
        assert "attributed" in err
        with open(sidecar) as fh:
            payload = json.load(fh)
        assert payload["kind"] == "timing"
        assert payload["engine"] == "envelope"
        assert payload["machine"]["workers"] == 1
        assert payload["machine"]["cpu_count"] is not None
        assert payload["rounds"]
        assert sum(payload["totals"].values()) > 0

    def test_metrics_out_sidecar_is_stamped(self, tmp_path, capsys):
        sidecar = str(tmp_path / "mx.json")
        assert main(
            ["erb", "--n", "8", "--message", "x", "--metrics-out", sidecar]
        ) == 0
        assert "metrics written to" in capsys.readouterr().err
        with open(sidecar) as fh:
            payload = json.load(fh)
        assert "machine" in payload
        assert payload["machine"]["cpu_count"] is not None
        # the run's stats were published into the profiler registry
        assert payload["metrics"]["counters"]["run.rounds"] >= 1
        # and the CLI turned the profiler back off afterwards
        from repro.obs import PROFILER
        assert PROFILER.enabled is False

    def test_traced_and_timed_run_emits_timing_events(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        sidecar = str(tmp_path / "tm.json")
        assert main(
            [
                "erb", "--n", "16", "--message", "x",
                "--trace-out", trace_path, "--timing-out", sidecar,
            ]
        ) == 0
        capsys.readouterr()
        with open(trace_path) as fh:
            records = [json.loads(line) for line in fh]
        assert records[0]["kind"] == "meta"
        assert records[0]["machine"]["cpu_count"] is not None
        assert any(r["kind"] == "timing" for r in records)
        # inspect summarizes the timing events instead of failing on them
        assert main(["inspect", trace_path]) == 0
        timeline = capsys.readouterr().out
        assert "machine:" in timeline
        assert "timing (top buckets per round" in timeline

    def test_beacon_honours_observability_flags(self, tmp_path, capsys):
        """The beacon service threads --timing-out through its engine
        session: one collector spans every epoch's run."""
        sidecar = tmp_path / "t.json"
        assert main(
            [
                "beacon", "--n", "9", "--epochs", "2",
                "--timing-out", str(sidecar),
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "not supported" not in err
        assert f"timing written to {sidecar}" in err
        payload = json.loads(sidecar.read_text())
        assert payload["rounds"]


class TestReportCommand:
    def test_report_on_timing_sidecar(self, tmp_path, capsys):
        sidecar = str(tmp_path / "tm.json")
        main(["erb", "--n", "16", "--message", "x", "--timing-out", sidecar])
        capsys.readouterr()
        html_out = str(tmp_path / "r.html")
        flame_out = str(tmp_path / "f.txt")
        assert main(
            ["report", sidecar, "--html", html_out, "--flame", flame_out]
        ) == 0
        out = capsys.readouterr().out
        assert "engine=envelope" in out
        assert "phase" in out
        with open(html_out) as fh:
            assert fh.read().startswith("<!doctype html>")
        with open(flame_out) as fh:
            assert ";" in fh.read()

    def test_report_on_bench_fixture(self, capsys):
        from pathlib import Path

        fixture = str(Path(__file__).parent / "data" / "bench_mini.json")
        assert main(["report", fixture]) == 0
        out = capsys.readouterr().out
        assert "throughput trend" in out
        assert "bench gate: PASS" in out

    def test_report_on_garbage_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("nope")
        assert main(["report", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
