"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.common.config import ChannelSecurity, SimulationConfig
from repro.common.rng import DeterministicRNG


@pytest.fixture
def rng() -> DeterministicRNG:
    return DeterministicRNG("test-fixture")


def small_config(n: int, seed: int = 0, **kwargs) -> SimulationConfig:
    """A MODELED-channel config for protocol tests."""
    return SimulationConfig(n=n, seed=seed, **kwargs)


def full_crypto_config(n: int, seed: int = 0, **kwargs) -> SimulationConfig:
    """A FULL-channel config using the small DH group for speed."""
    extra = kwargs.pop("extra", {})
    extra.setdefault("dh_group", "small")
    return SimulationConfig(
        n=n,
        seed=seed,
        channel_security=ChannelSecurity.FULL,
        extra=extra,
        **kwargs,
    )


def plain_config(n: int, seed: int = 0, **kwargs) -> SimulationConfig:
    """A NONE-channel config for strawman attack tests."""
    return SimulationConfig(
        n=n, seed=seed, channel_security=ChannelSecurity.NONE, **kwargs
    )
