"""Engine-level tests: round phases, ACK accounting, halt-on-divergence,
bandwidth model, staging semantics."""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType, ProtocolMessage
from repro.net.simulator import SynchronousNetwork
from repro.net.topology import Topology
from repro.sgx.program import EnclaveProgram


class _PingProgram(EnclaveProgram):
    """Round 1: node 0 multicasts; receivers acknowledge and record."""

    PROGRAM_NAME = "ping"

    def __init__(self, node_id: int) -> None:
        super().__init__()
        self.node_id = node_id
        self.received = []

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1 and ctx.node_id == 0:
            ctx.multicast(
                ProtocolMessage(
                    MessageType.INIT, 0, 1, b"ping", ctx.round, "ping"
                )
            )

    def on_message(self, ctx, sender, message) -> None:
        self.received.append((ctx.round, sender, message.payload))
        ctx.acknowledge(sender, message)
        if not self.has_output:
            self._accept(ctx, message.payload)

    def on_round_end(self, ctx) -> None:
        if ctx.round >= 2 and not self.has_output:
            self._accept(ctx, None)


class _StagedEchoProgram(EnclaveProgram):
    """Demonstrates Wait semantics: echo staged in on_message flows next
    round."""

    PROGRAM_NAME = "staged-echo"

    def __init__(self, node_id: int) -> None:
        super().__init__()
        self.node_id = node_id
        self.echo_rounds = []

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1 and ctx.node_id == 0:
            ctx.multicast(
                ProtocolMessage(MessageType.INIT, 0, 1, b"x", ctx.round, "s")
            )

    def on_message(self, ctx, sender, message) -> None:
        ctx.acknowledge(sender, message)
        if message.type is MessageType.INIT:
            # Staged: must be transmitted at the *next* round's start.
            ctx.multicast(
                ProtocolMessage(MessageType.ECHO, 0, 1, b"y", 0, "s")
            )
        elif message.type is MessageType.ECHO:
            self.echo_rounds.append((message.rnd, ctx.round))
            if not self.has_output:
                self._accept(ctx, message.rnd)

    def on_round_end(self, ctx) -> None:
        if ctx.round >= 3 and not self.has_output:
            self._accept(ctx, None)


def _network(n, program_cls, behaviors=None, **cfg_kwargs):
    config = SimulationConfig(n=n, **cfg_kwargs)
    return SynchronousNetwork(config, lambda i: program_cls(i), behaviors)


class TestEngineBasics:
    def test_multicast_delivered_same_round(self):
        net = _network(4, _PingProgram, seed=1)
        result = net.run(max_rounds=3)
        for node in (1, 2, 3):
            program = net.nodes[node].program
            assert program.received == [(1, 0, b"ping")]
        assert result.outputs[1] == b"ping"

    def test_early_stop_when_all_decided(self):
        net = _network(4, _PingProgram, seed=1)
        result = net.run(max_rounds=10)
        assert result.rounds_executed == 2  # node 0 decides ⊥ at round 2 end

    def test_staged_multicast_flows_next_round(self):
        net = _network(3, _StagedEchoProgram, seed=2)
        net.run(max_rounds=4)
        for node in range(3):
            for stamped_rnd, seen_rnd in net.nodes[node].program.echo_rounds:
                assert stamped_rnd == 2  # stamped at transmission round
                assert seen_rnd == 2     # delivered within it

    def test_max_rounds_validation(self):
        net = _network(3, _PingProgram, seed=0)
        with pytest.raises(ConfigurationError):
            net.run(max_rounds=0)

    def test_topology_size_mismatch_rejected(self):
        config = SimulationConfig(n=4)
        with pytest.raises(ConfigurationError):
            SynchronousNetwork(
                config, lambda i: _PingProgram(i), topology=Topology.full_mesh(5)
            )


class TestAckAccounting:
    def test_ack_traffic_counted(self):
        net = _network(5, _PingProgram, seed=3)
        net.run(max_rounds=2)
        traffic = net.stats.traffic
        assert traffic.messages_by_type[MessageType.INIT] == 4
        assert traffic.messages_by_type[MessageType.ACK] == 4

    def test_sender_survives_with_full_acks(self):
        net = _network(5, _PingProgram, seed=3)
        result = net.run(max_rounds=2)
        assert result.halted == []


class _MuteReceiverBehavior:
    """OS that drops all incoming traffic (so its enclave never ACKs)."""

    def filter_send(self, wire, rnd):
        return ((0, wire),)

    def filter_receive(self, wire, rnd):
        return False

    def drain_injections(self, rnd):
        return ()

    def on_round_end(self, rnd):
        pass


class TestHaltOnDivergence:
    def test_sender_halts_without_quorum(self):
        # 5 nodes, t=2: sender needs >= 2 ACKs.  Mute 3 receivers: only 1
        # ACK arrives, the sender's enclave must halt.
        behaviors = {
            node: _MuteReceiverBehavior() for node in (1, 2, 3)
        }
        net = _network(5, _PingProgram, behaviors=behaviors, seed=4)
        result = net.run(max_rounds=2)
        assert 0 in result.halted

    def test_sender_survives_at_exact_threshold(self):
        # Mute 2 of 4 receivers: 2 ACKs = t, not below it.
        behaviors = {node: _MuteReceiverBehavior() for node in (1, 2)}
        net = _network(5, _PingProgram, behaviors=behaviors, seed=5)
        result = net.run(max_rounds=2)
        assert 0 not in result.halted

    def test_halted_node_sends_nothing_afterwards(self):
        # All receivers mute: node 0 halts in round 1 with zero ACKs and
        # nobody ever saw the INIT, so no ECHO may ever flow.
        behaviors = {node: _MuteReceiverBehavior() for node in (1, 2, 3, 4)}
        net = _network(5, _StagedEchoProgram, behaviors=behaviors, seed=6)
        result = net.run(max_rounds=4)
        assert 0 in result.halted
        assert net.stats.traffic.messages_by_type[MessageType.ECHO] == 0
        assert net.stats.traffic.messages_by_type[MessageType.ACK] == 0


class TestBandwidthModel:
    def test_rounds_take_2delta_when_link_idle(self):
        net = _network(4, _PingProgram, seed=7, delta=1.5)
        result = net.run(max_rounds=2)
        assert result.termination_seconds == pytest.approx(2 * 3.0)

    def test_saturated_link_stretches_round(self):
        # Bandwidth of 100 B/s with ~1 KB of round-1 traffic: the round
        # must take far longer than 2 delta.
        net = _network(4, _PingProgram, seed=8, bandwidth_bytes_per_s=100.0)
        result = net.run(max_rounds=2)
        round1 = net.stats.rounds[0]
        assert round1.seconds == pytest.approx(round1.bytes / 100.0)
        assert round1.seconds > 2.0

    def test_no_bandwidth_model(self):
        net = _network(4, _PingProgram, seed=9, bandwidth_bytes_per_s=0.0)
        result = net.run(max_rounds=2)
        assert result.termination_seconds == pytest.approx(4.0)


class TestConfigValidation:
    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n=0)

    def test_default_t_is_minority(self):
        assert SimulationConfig(n=9).t == 4
        assert SimulationConfig(n=10).t == 4

    def test_erb_bound_check(self):
        config = SimulationConfig(n=4, t=2)
        with pytest.raises(ConfigurationError):
            config.require_erb_bound()

    def test_erng_opt_bound_check(self):
        config = SimulationConfig(n=9, t=4)
        with pytest.raises(ConfigurationError):
            config.require_erng_opt_bound()
        SimulationConfig(n=9, t=3).require_erng_opt_bound()

    def test_bad_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n=3, delta=0)

    def test_round_seconds(self):
        assert SimulationConfig(n=3, delta=2.0).round_seconds == 4.0


class TestTrustedClockIntegration:
    def test_enclave_clocks_advance_with_rounds(self):
        net = _network(3, _PingProgram, seed=10)
        net.run(max_rounds=2)
        clock = net.nodes[0].enclave.clock
        assert clock.elapsed() == pytest.approx(net.clock.now)
        assert clock.current_round(2.0) == 3  # after two 2s rounds
