"""Tests for the real-network wire transport (`repro.net.wire`).

The load-bearing claims:

* an N=5 loopback cluster over real TCP sockets reaches **decisions
  identical to the simulator** at the same seed — outputs, decided
  rounds and round counts — for ERB, ERNG, pb-ERB, and chained beacon
  epochs, under both MODELED and FULL channel security;
* dead and silent peers are **ejected cleanly** (EOF and barrier-timeout
  paths) and the survivors still decide;
* shutdown is clean: SIGTERM-driven daemons exit zero with a parseable
  report, and the in-process runner leaves **no orphan asyncio tasks**.
"""

from __future__ import annotations

import asyncio
import json
import signal
import subprocess
import tempfile
import time

import pytest

from repro.apps.beacon import RandomBeacon
from repro.common.config import ChannelSecurity, SimulationConfig
from repro.common.errors import ConfigurationError
from repro.core.erb import run_erb
from repro.core.erng import run_erng
from repro.core.pb_erb import run_pb_erb
from repro.net.wire import (
    WireNodeConfig,
    allocate_loopback_ports,
    calibrate_from_results,
    cluster_configs,
    fit_round_model,
    run_cluster,
    run_cluster_async,
    spawn_node_processes,
)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------

class TestWireNodeConfig:
    def test_json_round_trip(self):
        cfg = cluster_configs(
            3, "erng", seed=2, ports=[9001, 9002, 9003]
        )[1]
        assert WireNodeConfig.from_json(cfg.to_json()) == cfg

    def test_json_round_trip_fail_knobs(self):
        cfg = cluster_configs(
            3, "erb", fail_at_round={0: 2}, fail_mode="hang",
            ports=[9001, 9002, 9003],
        )[0]
        restored = WireNodeConfig.from_json(cfg.to_json())
        assert restored.fail_at_round == 2
        assert restored.fail_mode == "hang"

    def test_t_defaults_to_protocol_maximum(self):
        cfg = WireNodeConfig(node_id=0, n=7)
        assert cfg.t == 3

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            WireNodeConfig(node_id=0, n=3, protocol="zab")

    def test_rejects_unknown_security(self):
        with pytest.raises(ConfigurationError):
            WireNodeConfig(node_id=0, n=3, security="tls")

    def test_config_digest_binds_run_parameters(self):
        a = WireNodeConfig(node_id=0, n=5, seed=1)
        b = WireNodeConfig(node_id=1, n=5, seed=1)
        c = WireNodeConfig(node_id=0, n=5, seed=2)
        # Same run parameters from different nodes agree; a different
        # seed must not (the HELLO handshake refuses mismatched peers).
        assert a.config_digest() == b.config_digest()
        assert a.config_digest() != c.config_digest()


# ----------------------------------------------------------------------
# decision identity with the simulator
# ----------------------------------------------------------------------

class TestDecisionIdentity:
    def test_erb_n5_matches_simulator(self):
        result = run_cluster(
            cluster_configs(5, "erb", seed=7, message=b"wire-payload")
        )
        sim = run_erb(
            SimulationConfig(n=5, seed=7),
            initiator=0, message=b"wire-payload",
        )
        assert result.outputs == sim.outputs
        assert result.decided_rounds == sim.decided_rounds
        assert result.rounds_executed == sim.rounds_executed

    def test_erng_n5_matches_simulator(self):
        result = run_cluster(cluster_configs(5, "erng", seed=11))
        sim = run_erng(SimulationConfig(n=5, seed=11))
        assert result.outputs == sim.outputs
        assert result.decided_rounds == sim.decided_rounds
        assert result.rounds_executed == sim.rounds_executed

    def test_pb_erb_n5_matches_simulator(self):
        result = run_cluster(
            cluster_configs(5, "pb-erb", seed=3, message=b"pb")
        )
        sim = run_pb_erb(
            SimulationConfig(n=5, seed=3), initiator=0, message=b"pb"
        )
        assert result.outputs == sim.outputs
        assert result.decided_rounds == sim.decided_rounds

    def test_full_security_matches_simulator(self):
        """FULL channels: real AEAD envelopes cross the sockets, and the
        per-link counter sequences replayed from the shared seed line up
        with the simulator's establishment order exactly."""
        result = run_cluster(
            cluster_configs(5, "erb", seed=5, message=b"sealed",
                            security="full")
        )
        sim = run_erb(
            SimulationConfig(
                n=5, seed=5, channel_security=ChannelSecurity.FULL
            ),
            initiator=0, message=b"sealed",
        )
        assert result.outputs == sim.outputs
        assert result.decided_rounds == sim.decided_rounds

    def test_erb_seed_sweep_matches_simulator(self):
        for seed in (0, 1, 42):
            result = run_cluster(
                cluster_configs(5, "erb", seed=seed, message=b"s")
            )
            sim = run_erb(
                SimulationConfig(n=5, seed=seed), initiator=0, message=b"s"
            )
            assert result.outputs == sim.outputs, f"seed {seed}"

    def test_beacon_epochs_match_random_beacon(self):
        """Two chained epochs over TCP reproduce RandomBeacon's log —
        values, previous-digest links and record digests."""
        result = run_cluster(cluster_configs(5, "beacon", seed=13, epochs=2))
        beacon = RandomBeacon(n=5, seed=13)
        beacon.next_beacon()
        beacon.next_beacon()
        assert result.records == beacon.log
        assert RandomBeacon.verify_chain(result.records)


# ----------------------------------------------------------------------
# dead/slow peer handling
# ----------------------------------------------------------------------

class TestDeadPeers:
    def test_crashed_peer_is_ejected_and_survivors_decide(self):
        result = run_cluster(
            cluster_configs(5, "erb", seed=7, message=b"x",
                            fail_at_round={4: 2})
        )
        assert sorted(result.outputs) == [0, 1, 2, 3]
        assert result.reports[4].crashed
        for survivor in (0, 1, 2, 3):
            assert result.reports[survivor].ejected_peers == [4]

    def test_silent_peer_ejected_on_barrier_timeout(self):
        """A hung peer (sockets open, nothing sent) must be ejected
        after the timeout + grace retry, and the survivors decide."""
        result = run_cluster(
            cluster_configs(5, "erb", seed=7, message=b"x",
                            fail_at_round={3: 2}, fail_mode="hang",
                            round_timeout_s=0.4)
        )
        assert sorted(result.outputs) == [0, 1, 2, 4]
        for survivor in (0, 1, 2, 4):
            assert result.reports[survivor].ejected_peers == [3]

    def test_crashed_initiator_leaves_no_decision(self):
        """If the initiator dies before round 1 nothing was ever sent;
        the cluster must terminate round-bounded, not hang."""
        result = run_cluster(
            cluster_configs(4, "erb", seed=1, message=b"x",
                            fail_at_round={0: 1})
        )
        assert result.outputs == {}
        assert result.reports[0].crashed


# ----------------------------------------------------------------------
# clean shutdown
# ----------------------------------------------------------------------

class TestShutdown:
    def test_in_process_cluster_leaves_no_orphan_tasks(self):
        async def main():
            result = await run_cluster_async(
                cluster_configs(5, "erb", seed=7, message=b"x")
            )
            # Every reader task, dialer and server must be joined by the
            # time run_service returns — only this coroutine remains.
            leftovers = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            return result, leftovers

        result, leftovers = asyncio.run(main())
        assert sorted(result.outputs) == [0, 1, 2, 3, 4]
        assert leftovers == []

    def test_shutdown_request_stops_multi_epoch_run(self):
        """node.shutdown() (the SIGTERM handler's body) stops a beacon
        service at the next boundary with no orphan tasks."""
        from repro.net.wire import WireNode

        async def main():
            configs = cluster_configs(3, "beacon", seed=2, epochs=10_000)
            nodes = [WireNode(cfg) for cfg in configs]
            ports = {}
            for node in nodes:
                _, port = await node.start_server()
                ports[node.cfg.node_id] = port
            for node in nodes:
                node.cfg.peers = {
                    pid: ("127.0.0.1", p) for pid, p in ports.items()
                    if pid != node.cfg.node_id
                }
            tasks = [
                asyncio.ensure_future(node.run_service()) for node in nodes
            ]
            # Let a few epochs complete, then stop every daemon.
            await asyncio.sleep(0.3)
            for node in nodes:
                node.shutdown()
            reports = await asyncio.wait_for(asyncio.gather(*tasks), 30)
            leftovers = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            return reports, leftovers

        reports, leftovers = asyncio.run(main())
        assert leftovers == []
        for report in reports:
            assert not report.crashed
            # Interrupted long before 10k epochs: the stop actually
            # took effect rather than the service running to completion.
            assert len(report.records) < 10_000

    def test_sigterm_daemon_processes_exit_cleanly(self):
        """Real daemons, real signals: SIGTERM mid-service must produce
        exit code 0 and a parseable report — no kill -9, no orphans."""
        ports = allocate_loopback_ports(3)
        configs = cluster_configs(
            3, "beacon", seed=2, epochs=100_000, ports=ports
        )
        with tempfile.TemporaryDirectory() as config_dir:
            procs = spawn_node_processes(configs, config_dir)
            try:
                time.sleep(2.0)     # past startup, service mid-stream
                assert all(p.poll() is None for p in procs), \
                    "daemons died before SIGTERM"
                for proc in procs:
                    proc.send_signal(signal.SIGTERM)
                for proc in procs:
                    out, _ = proc.communicate(timeout=30)
                    assert proc.returncode == 0, out
                    report = json.loads(out.strip().splitlines()[-1])
                    assert report["crashed"] is False
            finally:
                for proc in procs:
                    if proc.poll() is None:
                        proc.kill()
                        proc.wait()


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------

class TestCalibration:
    def test_fit_recovers_synthetic_model(self):
        samples = [(b, 0.002 + b / 1e6) for b in (1_000, 5_000, 20_000, 80_000)]
        fit = fit_round_model(samples)
        assert fit.latency_s == pytest.approx(0.002, abs=1e-9)
        assert fit.bandwidth_bytes_per_s == pytest.approx(1e6, rel=1e-9)
        assert fit.residual_s < 1e-9
        assert fit.suggested_delta == pytest.approx(0.001, abs=1e-9)

    def test_fit_degenerate_single_byte_count(self):
        fit = fit_round_model([(100, 0.01), (100, 0.03)])
        assert fit.bandwidth_bytes_per_s is None
        assert fit.latency_s == pytest.approx(0.02)
        assert fit.residual_s == pytest.approx(0.01)

    def test_fit_noise_dominated_falls_back_to_latency(self):
        # More bytes measured *faster*: a negative slope must not be
        # reported as a bandwidth.
        fit = fit_round_model([(1_000, 0.05), (50_000, 0.01)])
        assert fit.bandwidth_bytes_per_s is None

    def test_fit_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            fit_round_model([])

    def test_calibrate_from_measured_cluster(self):
        result = run_cluster(cluster_configs(5, "erng", seed=9))
        fit = calibrate_from_results([result])
        assert fit.samples == result.rounds_executed
        assert fit.latency_s >= 0.0
        assert fit.residual_s >= 0.0


# ----------------------------------------------------------------------
# observability stamps
# ----------------------------------------------------------------------

class TestTransportStamp:
    def test_wire_stats_snapshot_is_tcp_stamped(self):
        result = run_cluster(cluster_configs(3, "erb", seed=1, message=b"x"))
        snap = result.reports[0].stats.snapshot()
        assert snap["transport"] == "tcp"
        assert snap["total_bytes_sent"] > 0
        assert set(snap["bytes_sent_by_peer"]) == {1, 2}

    def test_machine_stamp_transport_axis(self):
        from repro.obs.machine import machine_stamp, stamps_comparable

        assert "transport" not in machine_stamp()
        tcp = machine_stamp(workers=1, transport="tcp")
        sim = machine_stamp(workers=1)
        assert tcp["transport"] == "tcp"
        # A real-TCP number is never evidence about a simulated one.
        assert not stamps_comparable(tcp, sim)
        assert stamps_comparable(tcp, machine_stamp(workers=1, transport="tcp"))

    def test_bench_entries_transport_axis(self):
        from repro.obs.bench import entries_comparable

        base = {"cpu_count": 4, "workers": 1, "scale": "default"}
        assert entries_comparable(dict(base), dict(base))
        assert not entries_comparable(
            dict(base, transport="tcp"), dict(base)
        )
        assert entries_comparable(
            dict(base, transport="tcp"), dict(base, transport="tcp")
        )
