"""Section 2.3: the attacks A2-A5 succeed against the strawman
(Algorithm 1) and fail against the SGX-backed protocols."""

from __future__ import annotations

import pytest

from repro.adversary import (
    DelayAdversary,
    EquivocationForger,
    LookaheadBiasAdversary,
    ReplayAdversary,
)
from repro.common.errors import ConfigurationError
from repro.core.erb import run_erb
from repro.core.erng import run_erng
from repro.core.strawman import run_strawman_broadcast, run_strawman_rng

from tests.conftest import plain_config, small_config


class TestStrawmanHonest:
    """Algorithm 1 does work when nobody attacks it."""

    def test_honest_agreement(self):
        result = run_strawman_broadcast(
            plain_config(6, seed=0), initiator=0, message="m"
        )
        assert set(result.outputs.values()) == {"m"}

    def test_requires_plain_channels(self):
        with pytest.raises(ConfigurationError):
            run_strawman_broadcast(
                small_config(6, seed=0), initiator=0, message="m"
            )

    def test_rng_honest_agreement(self):
        result = run_strawman_rng(plain_config(6, seed=1))
        assert len(set(result.outputs.values())) == 1


class TestEquivocationAttackA2:
    """A byzantine initiator sends m to some peers and m' to others."""

    def _attack(self, seed):
        behaviors = {0: EquivocationForger(fooled={4, 5}, forged_payload="evil")}
        return run_strawman_broadcast(
            plain_config(6, t=2, seed=seed),
            initiator=0,
            message="good",
            behaviors=behaviors,
        )

    def test_splits_honest_nodes_on_strawman(self):
        result = self._attack(seed=2)
        honest_values = set(result.honest_outputs({0}).values())
        assert len(honest_values) > 1  # agreement violated

    def test_same_attack_fails_on_erb(self):
        behaviors = {0: EquivocationForger(fooled={4, 5}, forged_payload="evil")}
        result = run_erb(
            small_config(6, t=2, seed=2),
            initiator=0,
            message="good",
            behaviors=behaviors,
        )
        honest_values = set(result.honest_outputs({0}).values())
        assert len(honest_values) == 1
        assert "evil" not in honest_values


class TestLookaheadBiasAttackA4:
    """Withhold-and-release against distributed XOR randomness."""

    FAVOURABLE = staticmethod(lambda value: value % 2 == 0)
    TRIALS = 60

    def _bias_trials(self, runner, config_factory):
        hits = 0
        for seed in range(self.TRIALS):
            adversary = LookaheadBiasAdversary(0, self.FAVOURABLE)
            result = runner(config_factory(seed), behaviors={0: adversary})
            honest = result.honest_outputs({0})
            value = next(iter(honest.values()))
            assert len(set(honest.values())) == 1
            if self.FAVOURABLE(value):
                hits += 1
        return hits / self.TRIALS

    def test_biases_strawman_rng(self):
        rate = self._bias_trials(
            run_strawman_rng,
            lambda seed: plain_config(5, seed=seed, random_bits=16),
        )
        # Theory: 3/4 favourable.  Binomial(60, .75) below 0.63 has
        # p < 0.02; Binomial(60, .5) above 0.63 has p < 0.03.
        assert rate > 0.63

    def test_does_not_bias_erng(self):
        rate = self._bias_trials(
            run_erng,
            lambda seed: small_config(5, seed=seed, random_bits=16),
        )
        assert rate < 0.63

    def test_adversary_reads_plaintext_only_on_strawman(self):
        adversary = LookaheadBiasAdversary(0, self.FAVOURABLE)
        run_strawman_rng(
            plain_config(5, seed=99, random_bits=16), behaviors={0: adversary}
        )
        assert adversary._own_value is not None  # visible without SGX

        adversary2 = LookaheadBiasAdversary(0, self.FAVOURABLE)
        run_erng(
            small_config(5, seed=99, random_bits=16), behaviors={0: adversary2}
        )
        assert adversary2._own_value is None  # P3: hidden by the channel


class TestReplayAttackA5:
    def test_replay_accepted_by_strawman(self):
        # The strawman has no freshness tracking: replayed INITs are
        # re-processed without complaint (no rejections recorded).
        result = run_strawman_rng(
            plain_config(5, seed=3),
            behaviors={1: ReplayAdversary(replay_after_rounds=1, burst=8)},
        )
        assert result.traffic.rejections == 0

    def test_replay_rejected_by_erb(self):
        result = run_erb(
            small_config(5, seed=3),
            initiator=0,
            message=b"x",
            behaviors={1: ReplayAdversary(replay_after_rounds=1, burst=8)},
        )
        assert result.traffic.rejections > 0


class TestDelayAttackA4Lockstep:
    def test_late_contribution_counted_by_strawman(self):
        """The strawman accepts round-2 arrivals of round-1 messages."""
        result = run_strawman_rng(
            plain_config(5, seed=4), behaviors={0: DelayAdversary(1)}
        )
        # All nodes (including honest) still XOR node 0's late value in:
        # outputs would differ from the honest-only XOR.
        honest_only = run_strawman_rng(
            plain_config(5, seed=4),
            behaviors={0: DelayAdversary(10)},  # effectively silent
        )
        assert result.outputs[1] != honest_only.outputs[1]

    def test_late_contribution_rejected_by_erng(self):
        """Lockstep (P5): the delayed INIT is stale, ERNG excludes it —
        same output as if the node were silent."""
        delayed = run_erng(
            small_config(5, seed=4), behaviors={0: DelayAdversary(1)}
        )
        silent = run_erng(
            small_config(5, seed=4), behaviors={0: DelayAdversary(10)}
        )
        assert delayed.outputs[1] == silent.outputs[1]
