"""Flood-ERB over sparse topologies (the Appendix G / S5 relaxation)."""

from __future__ import annotations

import pytest

from repro.adversary import RandomOmission, SelectiveOmission
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.core.flooding import default_hop_slack, run_flood_erb
from repro.net.topology import Topology

from tests.conftest import small_config


def _expander(n, degree=4, seed="flood"):
    return Topology.random_regular(n, degree, DeterministicRNG(seed))


class TestFloodHonest:
    @pytest.mark.parametrize("n", [8, 16, 30])
    def test_validity_on_expander(self, n):
        result = run_flood_erb(
            small_config(n, seed=n), _expander(n), initiator=0, message=b"f"
        )
        assert set(result.outputs.values()) == {b"f"}

    def test_validity_on_ring(self):
        # Worst connected case: a cycle (diameter n/2).
        n = 12
        ring = Topology.random_regular(n, 2, DeterministicRNG("ring"))
        result = run_flood_erb(
            small_config(n, seed=1), ring, initiator=0, message=b"ring",
            hop_slack=n,  # a cycle needs the full diameter allowance
        )
        assert set(result.outputs.values()) == {b"ring"}

    def test_full_mesh_degenerates_to_two_rounds(self):
        n = 10
        result = run_flood_erb(
            small_config(n, seed=2), Topology.full_mesh(n), 0, b"mesh"
        )
        assert result.rounds_executed == 2

    def test_rounds_grow_with_sparsity(self):
        n = 30
        mesh = run_flood_erb(
            small_config(n, seed=3), Topology.full_mesh(n), 0, b"x"
        )
        sparse = run_flood_erb(
            small_config(n, seed=3), _expander(n), 0, b"x"
        )
        assert sparse.rounds_executed > mesh.rounds_executed

    def test_traffic_bounded_by_values_times_edges(self):
        # Flooding cost: each of the ~N flooded values (one INIT + one
        # ECHO per node) crosses each directed edge at most once, so the
        # message count is bounded by (N + 1) * N * max_degree.
        n = 24
        topo = _expander(n)
        result = run_flood_erb(small_config(n, seed=4), topo, 0, b"y")
        max_degree = max(topo.degree(node) for node in range(n))
        assert result.traffic.messages_sent <= (n + 1) * n * max_degree

    def test_disconnected_topology_rejected(self):
        n = 6
        adjacency = {
            0: frozenset({1}), 1: frozenset({0}),
            2: frozenset({3}), 3: frozenset({2}),
            4: frozenset({5}), 5: frozenset({4}),
        }
        disconnected = Topology(n, adjacency)
        with pytest.raises(ConfigurationError, match="connected"):
            run_flood_erb(small_config(n), disconnected, 0, b"z")

    def test_default_hop_slack(self):
        assert default_hop_slack(1024) == 20
        assert default_hop_slack(2) == 2


class TestFloodAdversarial:
    def test_omission_masked_by_path_redundancy(self):
        # A single omitting relay cannot cut an expander: every honest
        # node still receives the flood over alternative paths.
        n = 24
        topo = _expander(n, degree=6)
        result = run_flood_erb(
            small_config(n, seed=5), topo, initiator=0, message=b"r",
            behaviors={5: SelectiveOmission(victims=set(range(n)))},
        )
        honest = result.honest_outputs({5})
        assert set(honest.values()) == {b"r"}

    def test_random_lossy_relays_still_agree(self):
        n = 24
        topo = _expander(n, degree=6, seed="lossy")
        behaviors = {
            node: RandomOmission(
                DeterministicRNG(("loss", node)), send_drop_p=0.3
            )
            for node in (3, 7, 11)
        }
        result = run_flood_erb(
            small_config(n, seed=6), topo, initiator=0, message=b"s",
            behaviors=behaviors,
        )
        honest = result.honest_outputs(set(behaviors))
        assert len(set(honest.values())) == 1

    def test_silent_initiator_yields_bottom(self):
        n = 16
        topo = _expander(n)
        result = run_flood_erb(
            small_config(n, seed=7), topo, initiator=0, message=b"t",
            behaviors={0: SelectiveOmission(victims=set(range(n)))},
        )
        honest = result.honest_outputs({0})
        assert set(honest.values()) == {None}
