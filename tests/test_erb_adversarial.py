"""ERB under every adversary class — the Definition 2.1 guarantees and the
halt-on-divergence behaviour of Section 4.2."""

from __future__ import annotations

import pytest

from repro.adversary import (
    CompositeBehavior,
    DelayAdversary,
    RandomOmission,
    ReceiveOmission,
    ReplayAdversary,
    SelectiveOmission,
    TamperAdversary,
    chain_delay_strategy,
)
from repro.common.rng import DeterministicRNG
from repro.core.erb import run_erb

from tests.conftest import small_config


def _honest_outputs(result, byzantine):
    return result.honest_outputs(byzantine)


def _assert_agreement(result, byzantine):
    values = set(_honest_outputs(result, byzantine).values())
    assert len(values) == 1, f"honest nodes disagree: {values}"
    return values.pop()


class TestChainDelay:
    """The Section 6.3 worst case: byzantine chain delays the broadcast."""

    @pytest.mark.parametrize("chain_len", [1, 2, 4, 6])
    def test_rounds_are_f_plus_two(self, chain_len):
        n, t = 16, 7
        chain = list(range(chain_len))
        behaviors = chain_delay_strategy(chain, honest_target=chain_len)
        result = run_erb(
            small_config(n, t=t, seed=chain_len), initiator=0, message=b"x",
            behaviors=behaviors,
        )
        assert result.rounds_executed == min(chain_len + 2, t + 2)

    def test_honest_agreement_on_value(self):
        behaviors = chain_delay_strategy([0, 1, 2], honest_target=3)
        result = run_erb(
            small_config(16, t=7, seed=9), initiator=0, message=b"x",
            behaviors=behaviors,
        )
        assert _assert_agreement(result, {0, 1, 2}) == b"x"

    def test_chain_members_eliminated(self):
        behaviors = chain_delay_strategy([0, 1, 2, 3], honest_target=4)
        result = run_erb(
            small_config(16, t=7, seed=10), initiator=0, message=b"x",
            behaviors=behaviors,
        )
        assert result.halted == [0, 1, 2, 3]

    def test_traffic_decreases_with_byzantine_fraction(self):
        """Fig. 3c: halt-on-divergence ejects nodes, traffic goes *down*."""
        honest = run_erb(small_config(32, seed=1), 0, b"x")
        behaviors = chain_delay_strategy(list(range(8)), honest_target=8)
        byzantine = run_erb(
            small_config(32, t=15, seed=1), initiator=0, message=b"x",
            behaviors=behaviors,
        )
        assert byzantine.traffic.bytes_sent < honest.traffic.bytes_sent


class TestSelectiveOmission:
    def test_identity_based_omitter_is_churned_out(self):
        n = 9
        # Initiator omits its INIT to 6 of 8 peers: at most 2 ACKs < t=4.
        behaviors = {0: SelectiveOmission(victims=set(range(3, 9)))}
        result = run_erb(
            small_config(n, seed=2), initiator=0, message=b"y",
            behaviors=behaviors,
        )
        assert 0 in result.halted

    def test_network_still_agrees_after_churn(self):
        behaviors = {0: SelectiveOmission(victims=set(range(3, 9)))}
        result = run_erb(
            small_config(9, seed=2), initiator=0, message=b"y",
            behaviors=behaviors,
        )
        # The two reached nodes flood the value; everyone honest agrees.
        assert _assert_agreement(result, {0}) == b"y"

    def test_small_scale_omission_tolerated(self):
        # Omitting to a single victim keeps the sender above the ACK
        # threshold: no halt, and the victim still learns m via echoes.
        behaviors = {0: SelectiveOmission(victims={1})}
        result = run_erb(
            small_config(9, seed=3), initiator=0, message=b"z",
            behaviors=behaviors,
        )
        assert result.halted == []
        assert result.outputs[1] == b"z"


class TestRodAdversaries:
    def test_delaying_initiator_yields_bottom(self):
        # Everything the initiator sends arrives a round late and is
        # stamped stale (P5): equivalent to full omission.
        result = run_erb(
            small_config(9, seed=4), initiator=0, message=b"w",
            behaviors={0: DelayAdversary(2)},
        )
        assert _assert_agreement(result, {0}) is None

    def test_delayed_messages_never_acked(self):
        result = run_erb(
            small_config(9, seed=4), initiator=0, message=b"w",
            behaviors={0: DelayAdversary(2)},
        )
        assert 0 in result.halted  # no ACKs for the (late) INITs

    def test_replaying_relay_is_harmless(self):
        result = run_erb(
            small_config(9, seed=5), initiator=0, message=b"v",
            behaviors={3: ReplayAdversary(replay_after_rounds=1, burst=64)},
        )
        assert _assert_agreement(result, {3}) == b"v"
        assert result.traffic.rejections > 0  # replays hit the guard

    def test_rod_composite(self):
        behaviors = {
            2: CompositeBehavior(
                [
                    RandomOmission(DeterministicRNG("rod"), send_drop_p=0.3),
                    ReplayAdversary(),
                ]
            )
        }
        result = run_erb(
            small_config(9, seed=6), initiator=0, message=b"u",
            behaviors=behaviors,
        )
        assert _assert_agreement(result, {2}) == b"u"


class TestByzantineAdversaries:
    def test_tampering_reduces_to_omission(self):
        # Theorem A.2: a tamperer's messages all fail MAC checks; as the
        # initiator it is indistinguishable from a silent node.
        result = run_erb(
            small_config(9, seed=7), initiator=0, message=b"z",
            behaviors={0: TamperAdversary()},
        )
        assert _assert_agreement(result, {0}) is None
        assert result.traffic.rejections > 0
        assert 0 in result.halted

    def test_tampering_relay_does_not_break_agreement(self):
        result = run_erb(
            small_config(9, seed=8), initiator=0, message=b"q",
            behaviors={4: TamperAdversary()},
        )
        assert _assert_agreement(result, {4}) == b"q"

    def test_receive_omitter_never_decides_value_but_stays(self):
        result = run_erb(
            small_config(9, seed=9), initiator=0, message=b"r",
            behaviors={5: ReceiveOmission()},
        )
        # The mute listener still multicasts nothing invalid, is ACKed for
        # nothing (it sends nothing), and times out to ⊥ — while all other
        # honest nodes accept the value.
        assert result.outputs[5] is None
        others = {
            node: value for node, value in result.outputs.items() if node != 5
        }
        assert set(others.values()) == {b"r"}


class TestIntegrityAndTermination:
    def test_every_node_decides_exactly_once(self):
        result = run_erb(
            small_config(11, seed=10), initiator=0, message=b"once",
            behaviors={1: DelayAdversary(1)},
        )
        # Every non-halted node appears in outputs with a decided round.
        alive = set(range(11)) - set(result.halted)
        assert alive <= set(result.outputs)
        for node in alive:
            assert result.decided_rounds[node] is not None

    def test_termination_bound_respected(self):
        result = run_erb(
            small_config(11, seed=11), initiator=0, message=b"x",
            behaviors={0: DelayAdversary(3)},
        )
        t = small_config(11).t
        assert result.rounds_executed <= t + 2
