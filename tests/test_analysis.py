"""Analysis helpers: complexity formulas against measured runs, bias
estimator, cluster math (Lemmas F.1/F.2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bias import (
    empirical_bias,
    standard_test_sets,
    uniformity_chi_square,
)
from repro.analysis.cluster import (
    cluster_quality_prob,
    expected_cluster_size,
    recommended_gamma,
    second_cluster_expectation,
)
from repro.analysis.complexity import (
    TABLE1_FORMULAS,
    TABLE2_FORMULAS,
    erb_bytes_honest,
    erb_messages_honest,
    erb_rounds,
    erng_opt_rounds,
    erng_unopt_messages_honest,
    rb_early_messages,
    rb_sig_bytes,
    sampled_cluster_expectations,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.core.erb import run_erb
from repro.core.erng import run_erng

from tests.conftest import small_config


class TestComplexityFormulas:
    def test_erb_rounds_honest(self):
        assert erb_rounds(f=0, t=10) == 2
        assert erb_rounds(f=3, t=10, honest_initiator=True) == 2

    def test_erb_rounds_byzantine(self):
        assert erb_rounds(f=3, t=10) == 5
        assert erb_rounds(f=20, t=10) == 12  # capped at t+2

    def test_erb_message_formula_matches_simulation(self):
        for n in (4, 8, 12):
            measured = run_erb(small_config(n, seed=n), 0, b"x")
            assert measured.traffic.messages_sent == erb_messages_honest(n)

    def test_erng_message_formula_matches_simulation(self):
        for n in (4, 6):
            measured = run_erng(small_config(n, seed=n))
            assert measured.traffic.messages_sent == erng_unopt_messages_honest(n)

    def test_erb_bytes_order_of_magnitude(self):
        # Th and Ex should agree within the size-calibration slack.
        for n in (8, 16):
            measured = run_erb(small_config(n, seed=1), 0, b"0123456789abcdef")
            predicted = erb_bytes_honest(n)
            assert 0.5 < measured.traffic.bytes_sent / predicted < 2.0

    def test_quadratic_and_cubic_growth(self):
        assert erb_bytes_honest(200) / erb_bytes_honest(100) == pytest.approx(
            4.0, rel=0.05
        )
        assert erng_unopt_messages_honest(200) / erng_unopt_messages_honest(
            100
        ) == pytest.approx(8.0, rel=0.05)

    def test_paper_headline_number(self):
        # Section 6.1: 277 MB at N = 1024 — we should land in that decade.
        predicted_mb = erb_bytes_honest(1024) / (1024 * 1024)
        assert 90 < predicted_mb < 600

    def test_rb_baseline_formulas_positive_and_monotone(self):
        assert rb_sig_bytes(16) > rb_sig_bytes(8) > 0
        assert rb_early_messages(10, 3) == 3 * 10 * 9

    def test_erng_opt_rounds(self):
        assert erng_opt_rounds(10) == 15

    def test_sampled_expectations(self):
        expectations = sampled_cluster_expectations(1024, 10)
        assert expectations["cluster_size"] == pytest.approx(20.0, rel=0.3)
        assert expectations["initiators"] < expectations["cluster_size"]

    def test_table_formulas_complete(self):
        assert "ERB" in TABLE1_FORMULAS
        assert TABLE1_FORMULAS["ERB"]["rounds"] == "min{f+2, t+2}"
        assert set(TABLE2_FORMULAS) == {
            "AS [20]", "AD14 [19]", "Basic ERNG", "Optimized ERNG"
        }


class TestBiasEstimator:
    def test_uniform_samples_near_one(self):
        rng = DeterministicRNG("uniform")
        samples = [rng.randbits(16) for _ in range(4000)]
        assert empirical_bias(samples, 16)["beta"] < 1.15

    def test_constant_samples_heavily_biased(self):
        report = empirical_bias([0] * 1000, 16)
        assert report["beta"] > 10

    def test_lsb_biased_source_detected(self):
        rng = DeterministicRNG("lsb")
        samples = [rng.randbits(16) | 1 for _ in range(2000)]  # always odd
        report = empirical_bias(samples, 16)
        assert report["bit0"] > 1.5

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_bias([], 16)

    def test_standard_test_sets_shapes(self):
        tests = standard_test_sets(16)
        names = [name for name, _, _ in tests]
        assert "parity" in names and "high-half" in names

    def test_chi_square_uniform_passes(self):
        rng = DeterministicRNG("chi")
        samples = [rng.randbits(12) for _ in range(4000)]
        stat, critical = uniformity_chi_square(samples, 12)
        assert stat < critical

    def test_chi_square_skew_fails(self):
        samples = [0] * 1000 + [4095] * 10
        stat, critical = uniformity_chi_square(samples, 12)
        assert stat > critical

    def test_chi_square_validation(self):
        with pytest.raises(ConfigurationError):
            uniformity_chi_square([1], 8, buckets=1)
        with pytest.raises(ConfigurationError):
            uniformity_chi_square([], 8)

    @given(st.integers(min_value=2, max_value=20))
    @settings(max_examples=20)
    def test_mod3_density_exact(self, k):
        from repro.analysis.bias import _mod3_density

        count = sum(1 for x in range(1 << k) if x % 3 == 0) if k <= 14 else None
        if count is not None:
            assert _mod3_density(k) == count / (1 << k)


class TestClusterMath:
    def test_quality_improves_with_gamma(self):
        low = cluster_quality_prob(3000, 1000, 4)["both"]
        high = cluster_quality_prob(3000, 1000, 12)["both"]
        assert high > low

    def test_quality_probabilities_valid(self):
        quality = cluster_quality_prob(600, 200, 8)
        for key in ("honest_gt_gamma", "byzantine_lt_gamma", "both"):
            assert 0.0 <= quality[key] <= 1.0

    def test_lemma_f1_high_probability_regime(self):
        # Large N, t = N/3, sizeable gamma: failure prob should be small
        # (the Lemma F.1 tails shrink like exp(-Θ(γ))).
        quality = cluster_quality_prob(30000, 10000, 64)
        assert quality["both"] > 0.95

    def test_expected_cluster_size_near_2gamma(self):
        assert expected_cluster_size(1024, 8) == pytest.approx(16.0, rel=0.1)

    def test_second_cluster_shrinks(self):
        assert second_cluster_expectation(20.0, 9) == pytest.approx(20 / 3)

    def test_recommended_gamma_monotone_need(self):
        gamma = recommended_gamma(20000, failure_target=1e-3)
        assert gamma >= 2
        quality = cluster_quality_prob(20000, 20000 // 3, gamma)
        assert 1 - quality["both"] <= 1e-3

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            cluster_quality_prob(10, 20, 4)
        with pytest.raises(ConfigurationError):
            cluster_quality_prob(10, 3, 0)
