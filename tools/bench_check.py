#!/usr/bin/env python3
"""CI entry point for the bench regression gate.

Usage::

    python tools/bench_check.py [BENCH_engine.json] [--threshold 0.15]
                                [--html report.html]

Compares the newest ``BENCH_engine.json`` history entry against the best
comparable prior entry (same cpu_count / workers / scale stamp) and
exits 0 on pass, 1 on a regression, 2 on a structurally unusable
history.  ``--html`` additionally writes a self-contained HTML report
suitable for uploading as a CI artifact.  See :mod:`repro.obs.bench`.
"""

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import DEFAULT_THRESHOLD, check_file  # noqa: E402
from repro.obs.report import render_html  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "path",
        nargs="?",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="benchmark history to gate (default: repo BENCH_engine.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed throughput drop vs best comparable prior "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--html",
        metavar="OUT",
        help="also write a self-contained HTML report to OUT",
    )
    args = parser.parse_args(argv)

    result = check_file(args.path, threshold=args.threshold)
    print(result.report())

    if args.html:
        try:
            import json

            with open(args.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            with open(args.html, "w", encoding="utf-8") as fh:
                fh.write(render_html("bench", payload))
            print(f"bench gate: HTML report written to {args.html}")
        except (OSError, ValueError) as exc:
            print(f"bench gate: could not write HTML report: {exc}")

    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
