#!/usr/bin/env python3
"""Fail on broken relative links in the repository's markdown docs.

Scans README.md, the top-level ``*.md`` files and everything under
``docs/`` for markdown links (``[text](target)``) and bare
backtick-quoted file references of the form ```docs/NAME.md```, and
checks that every *relative* target exists in the working tree.
External links (``http://``, ``https://``, ``mailto:``) and pure
anchors (``#section``) are skipped; an in-file anchor suffix
(``FILE.md#section``) is checked against the headings of the target
file.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link).  Run from anywhere::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) — excluding images' alt text
#: being relevant (images are checked the same way).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked doc references like `docs/ADVERSARIES.md` in prose.
_BACKTICK_RE = re.compile(r"`((?:docs/)?[A-Za-z0-9_\-]+\.md)`")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def doc_files() -> List[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def _anchors(path: Path) -> set:
    """GitHub-style anchor slugs for every heading in a markdown file."""
    slugs = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\s\-]", "", title.lower())
        slug = re.sub(r"\s+", "-", slug.strip())
        slugs.add(slug)
    return slugs


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)
        for match in _BACKTICK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> List[str]:
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        base, _, anchor = target.partition("#")
        resolved = (path.parent / base).resolve()
        rel = path.relative_to(REPO_ROOT)
        if not resolved.exists():
            problems.append(f"{rel}:{lineno}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor.lower() not in _anchors(resolved):
                problems.append(
                    f"{rel}:{lineno}: missing anchor -> {target}"
                )
    return problems


def main() -> int:
    problems: List[str] = []
    files = doc_files()
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"{len(problems)} broken doc link(s)", file=sys.stderr)
        return 1
    print(f"docs link check: {len(files)} file(s), all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
