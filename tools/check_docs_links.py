#!/usr/bin/env python3
"""Fail on broken references in the repository's markdown docs.

Scans README.md, the top-level ``*.md`` files and everything under
``docs/`` for three kinds of reference and checks each against the
working tree:

* markdown links (``[text](target)``) and bare backtick-quoted file
  references of the form ```docs/NAME.md```: every *relative* target
  must exist.  External links (``http://``, ``https://``, ``mailto:``)
  and pure anchors (``#section``) are skipped; an in-file anchor suffix
  (``FILE.md#section``) is checked against the headings of the target
  file;
* backticked ``repro.*`` dotted paths (``repro.net.wire``,
  ``repro.obs.machine.machine_stamp()``): the longest importable module
  prefix is imported and any remaining segments resolved as attributes
  — a renamed module or deleted function makes the doc fail here
  instead of rotting silently;
* CLI invocations (``python -m repro <subcommand>``, including brace
  sets like ``{erb,erng,node}``): every named subcommand must exist in
  the argparse tree ``repro.cli.build_parser()`` actually builds.

Exit status: 0 when every reference resolves, 1 otherwise (one line per
problem).  Run from anywhere::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

#: Markdown inline links: [text](target) — excluding images' alt text
#: being relevant (images are checked the same way).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked doc references like `docs/ADVERSARIES.md` in prose.
_BACKTICK_RE = re.compile(r"`((?:docs/)?[A-Za-z0-9_\-]+\.md)`")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: Backticked dotted repro paths: `repro.net.wire`,
#: `repro.obs.machine.machine_stamp()`, `repro.core.erb` — a trailing
#: call suffix is stripped before resolution.
_MODULE_RE = re.compile(r"`(repro(?:\.\w+)+)(?:\(\))?`")

#: Dotted names under `repro` that are loggers, not modules — docs refer
#: to them legitimately (`logging.getLogger("repro.engine")`).
_LOGGER_NAMES = {"repro.engine", "repro.protocol"}

#: CLI invocations: `python -m repro erb ...` and the brace-set form
#: `python -m repro {erb,erng,node}` used by module-map tables.
_CLI_RE = re.compile(r"python -m repro\s+([a-z][a-z0-9-]*)")
_CLI_SET_RE = re.compile(r"python -m repro\s+\{([^}]+)\}")

_resolve_cache: dict = {}


def _resolve_repro_path(dotted: str) -> bool:
    """Whether a dotted ``repro.*`` path names a real module/attribute.

    Imports the longest importable module prefix, then walks the
    remaining segments with ``getattr`` — so both ``repro.net.wire``
    (module) and ``repro.net.wire.fit_round_model`` (function) resolve.
    """
    if dotted in _resolve_cache:
        return _resolve_cache[dotted]
    ok = False
    if dotted in _LOGGER_NAMES:
        ok = True
    else:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            try:
                for attr in parts[cut:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                break
            ok = True
            break
    _resolve_cache[dotted] = ok
    return ok


_cli_commands: Optional[Set[str]] = None


def cli_commands() -> Set[str]:
    """The subcommand names ``repro.cli.build_parser()`` registers."""
    global _cli_commands
    if _cli_commands is None:
        import argparse

        from repro.cli import build_parser

        commands: Set[str] = set()
        for action in build_parser()._actions:
            if isinstance(action, argparse._SubParsersAction):
                commands.update(action.choices)
        _cli_commands = commands
    return _cli_commands


def doc_files() -> List[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def _anchors(path: Path) -> set:
    """GitHub-style anchor slugs for every heading in a markdown file."""
    slugs = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\s\-]", "", title.lower())
        slug = re.sub(r"\s+", "-", slug.strip())
        slugs.add(slug)
    return slugs


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)
        for match in _BACKTICK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> List[str]:
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        base, _, anchor = target.partition("#")
        resolved = (path.parent / base).resolve()
        rel = path.relative_to(REPO_ROOT)
        if not resolved.exists():
            problems.append(f"{rel}:{lineno}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor.lower() not in _anchors(resolved):
                problems.append(
                    f"{rel}:{lineno}: missing anchor -> {target}"
                )
    rel = path.relative_to(REPO_ROOT)
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _MODULE_RE.finditer(line):
            dotted = match.group(1)
            if not _resolve_repro_path(dotted):
                problems.append(
                    f"{rel}:{lineno}: unresolvable module path -> {dotted}"
                )
        named = [m.group(1) for m in _CLI_RE.finditer(line)]
        for m in _CLI_SET_RE.finditer(line):
            named.extend(part.strip() for part in m.group(1).split(","))
        for command in named:
            if command and command not in cli_commands():
                problems.append(
                    f"{rel}:{lineno}: unknown CLI subcommand -> {command}"
                )
    return problems


def main() -> int:
    problems: List[str] = []
    files = doc_files()
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"{len(problems)} broken doc link(s)", file=sys.stderr)
        return 1
    print(f"docs link check: {len(files)} file(s), all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
