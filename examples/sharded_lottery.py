#!/usr/bin/env python3
"""Sharded lottery: the optimized ERNG (Algorithm 6) at N = 300.

A 300-peer network wants to (a) pick 5 lottery winners nobody could bias
and (b) assign every peer to one of 8 shards (the Elastico-style use case
the paper cites).  Running the unoptimized ERNG would cost O(N^3)
messages; the cluster-sampled version gets the same unbiased value in
O(N log N).

Run:  python examples/sharded_lottery.py
"""

from repro import ClusterConfig, SimulationConfig, run_optimized_erng
from repro.analysis.complexity import erng_unopt_messages_honest
from repro.apps.load_balancer import RandomizedLoadBalancer
from repro.common.rng import DeterministicRNG


def main() -> None:
    n = 300
    config = SimulationConfig(n=n, t=n // 3, seed=99)
    cluster = ClusterConfig(mode="sampled", gamma=9)

    print(f"running optimized ERNG over N={n} (t={config.t}, gamma=9)...")
    result = run_optimized_erng(config, cluster=cluster)
    values = set(result.outputs.values())
    assert len(values) == 1
    common = values.pop()

    print(f"agreed value: {common:#034x}")
    print(f"rounds: {result.rounds_executed}, traffic: {result.traffic.summary()}")
    unopt_messages = erng_unopt_messages_honest(n)
    saving = 1 - result.traffic.messages_sent / unopt_messages
    print(
        f"message saving vs unoptimized ERNG: {result.traffic.messages_sent:,} "
        f"vs {unopt_messages:,} predicted ({saving:.1%} less)"
    )

    # (a) lottery: expand the common value into 5 distinct winners.
    rng = DeterministicRNG(("lottery", common))
    winners = sorted(rng.sample(list(range(n)), 5))
    print(f"\nlottery winners (recomputable by every peer): {winners}")

    # (b) shard assignment via rendezvous hashing on the same value.
    shards = [f"shard-{i}" for i in range(8)]
    balancer = RandomizedLoadBalancer(shards, beacon_value=common)
    assignment = {
        peer: balancer.assign(f"peer-{peer}") for peer in range(n)
    }
    histogram = {}
    for shard in assignment.values():
        histogram[shard] = histogram.get(shard, 0) + 1
    print("\nshard sizes (expect ~37-38 each):")
    for shard in shards:
        print(f"  {shard}: {histogram.get(shard, 0)}")

    # Shard-2 goes offline: only its peers move.
    balancer.mark_failed("shard-2")
    moved = sum(
        1
        for peer in range(n)
        if balancer.assign(f"peer-{peer}") != assignment[peer]
    )
    print(
        f"\nafter shard-2 fails, {moved} peers migrate "
        f"(= exactly shard-2's former population: {histogram.get('shard-2', 0)})"
    )


if __name__ == "__main__":
    main()
