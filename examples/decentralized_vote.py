#!/usr/bin/env python3
"""Decentralized commit-reveal voting (Appendix H, "voting schemes").

A 9-peer committee votes on a proposal.  Commitments are frozen through
interactive consistency (built on ERB) before any ballot is visible, so
nobody can adapt their vote; openings that don't match their commitment
are discarded; ties are broken by an ERNG value no coalition can bias.
One committee member is byzantine (delays everything) and simply ends up
abstaining.

Run:  python examples/decentralized_vote.py
"""

from repro.adversary import DelayAdversary
from repro.apps.voting import CommitRevealPoll


def main() -> None:
    options = ["adopt", "reject", "defer"]
    poll = CommitRevealPoll(
        n=9,
        options=options,
        seed=77,
        behaviors={6: DelayAdversary(3)},  # a byzantine committee member
    )
    ballots = {
        0: "adopt",
        1: "adopt",
        2: "reject",
        3: "adopt",
        4: "defer",
        5: "reject",
        6: "reject",   # delayed: never lands
        7: "adopt",
        8: "defer",
    }
    print(f"committee of {poll.n}, options: {options}")
    print(f"ballots cast: {ballots}")
    result = poll.run(ballots)
    print()
    print(f"tally:     {result.tally}")
    print(f"revealed:  {result.revealed} (byzantine member's vote never landed)")
    print(f"discarded: {result.discarded}")
    print(f"winner:    {result.winner!r}")

    # A tied poll: the tie-break comes from ERNG, common and unbiased.
    tie_poll = CommitRevealPoll(n=6, options=["alice", "bob"], seed=78)
    tie = tie_poll.run({0: "alice", 1: "bob", 2: "alice", 3: "bob"})
    print()
    print(f"tied poll tally: {tie.tally}")
    print(
        f"tie broken by common random value {tie.tie_break_value:#x} "
        f"-> winner {tie.winner!r}"
    )


if __name__ == "__main__":
    main()
