#!/usr/bin/env python3
"""Network sanitization (Appendix D): halt-on-divergence churns byzantine
nodes out across repeated protocol instances.

Shows (1) one real ERB instance ejecting an omission attacker, and (2)
the Appendix D churn model — closed-form decay vs Monte-Carlo
trajectories — including the paper's own example (N=2^10, p=2^-5,
lambda=30 => ~2500 instances to full sanitization w.h.p.).

Run:  python examples/network_sanitization.py
"""

from repro import SimulationConfig, run_erb
from repro.adversary import SelectiveOmission
from repro.common.rng import DeterministicRNG
from repro.core.sanitization import SanitizationModel


def live_ejection_demo() -> None:
    print("=" * 64)
    print("One ERB instance: identity-based omitter gets churned out (P4)")
    print("=" * 64)
    n = 9
    behaviors = {4: SelectiveOmission(victims=set(range(6)) - {4})}
    result = run_erb(
        SimulationConfig(n=n, seed=20), initiator=0, message=b"block",
        behaviors=behaviors,
    )
    print(f"halted (ejected): {result.halted}")
    print(f"remaining honest nodes agree on: {set(result.honest_outputs({4}).values())}")
    print(f"traffic: {result.traffic.summary()}")


def churn_model_demo() -> None:
    print()
    print("=" * 64)
    print("Appendix D churn model: E[F_r] decay and Theorem D.1's bound")
    print("=" * 64)
    t, p = 511, 2**-5  # the paper's example: N = 2^10
    model = SanitizationModel(t=t, p=p)

    r_needed = model.instances_for_confidence(lam=30.0)
    print(f"t={t} byzantine, misbehaviour probability p=1/32 per instance")
    print(f"instances until Pr[any byzantine left] <= e^-30: r = {r_needed}")
    print("(the paper's back-of-envelope gives ~2500)")

    print()
    print("closed-form E[F_r] vs Monte-Carlo mean (300 trials):")
    horizon = 600
    mean = model.monte_carlo_mean(
        instances=horizon, trials=300, rng=DeterministicRNG("churn")
    )
    print(f"  {'r':>6} {'E[F_r]':>10} {'MC mean':>10}")
    for r in (0, 50, 100, 200, 400, 600):
        print(
            f"  {r:>6} {model.expected_faulty_after(r):>10.2f} "
            f"{mean[r]:>10.2f}"
        )

    print()
    print("average round complexity converges to a constant (Thm D.2,")
    print("over r = poly(N) instances — here poly means ~t^2):")
    for r in (10**3, 10**4, 10**5, 10**6, 10**7):
        print(f"  after {r:>8} instances: E[rounds] ~ "
              f"{model.expected_average_rounds(r):.2f}")


if __name__ == "__main__":
    live_ejection_demo()
    churn_model_demo()
