#!/usr/bin/env python3
"""Quickstart: reliable broadcast and common random numbers in a P2P
network of SGX-enclave peers.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, SimulationConfig, run_erb, run_erng, run_optimized_erng


def broadcast_demo() -> None:
    print("=" * 64)
    print("ERB — enclaved reliable broadcast (Algorithm 2)")
    print("=" * 64)
    config = SimulationConfig(n=16, seed=7)
    print(f"network: N={config.n}, tolerating t={config.t} byzantine peers")

    result = run_erb(config, initiator=0, message=b"block #42")
    values = set(result.outputs.values())
    print(f"all {len(result.outputs)} peers accepted: {values}")
    print(f"rounds: {result.rounds_executed} (early stopping: honest initiator => 2)")
    print(f"simulated time: {result.termination_seconds:.1f} s")
    print(f"traffic: {result.traffic.summary()}")


def rng_demo() -> None:
    print()
    print("=" * 64)
    print("ERNG — common unbiased random number (Algorithm 3)")
    print("=" * 64)
    config = SimulationConfig(n=16, seed=7)
    result = run_erng(config)
    values = set(result.outputs.values())
    assert len(values) == 1, "all honest peers must agree"
    print(f"agreed 128-bit value: {values.pop():#034x}")
    print(f"rounds: {result.rounds_executed}, traffic: {result.traffic.summary()}")


def optimized_rng_demo() -> None:
    print()
    print("=" * 64)
    print("Optimized ERNG — cluster-sampled (Algorithm 6, t <= N/3)")
    print("=" * 64)
    config = SimulationConfig(n=120, t=40, seed=11)
    result = run_optimized_erng(
        config, cluster=ClusterConfig(mode="sampled", gamma=7)
    )
    values = set(result.outputs.values())
    assert len(values) == 1
    print(f"agreed value across {config.n} peers: {values.pop():#034x}")
    print(f"rounds: {result.rounds_executed}, traffic: {result.traffic.summary()}")
    chosen = result.traffic.messages_by_type
    print(
        "cluster machinery: "
        f"{chosen} message breakdown — note how few ECHOs vs the O(N^3) "
        "the unoptimized protocol would need"
    )


if __name__ == "__main__":
    broadcast_demo()
    rng_demo()
    optimized_rng_demo()
