#!/usr/bin/env python3
"""Attack demonstration (Section 2.3): the attacks A2-A5 succeed against
the strawman protocol (Algorithm 1, no SGX protections) and fail against
the enclave-backed ERB/ERNG.

Run:  python examples/byzantine_attack_demo.py
"""

from repro import SimulationConfig, run_erb, run_erng, run_strawman_broadcast, run_strawman_rng
from repro.adversary import (
    DelayAdversary,
    EquivocationForger,
    LookaheadBiasAdversary,
    ReplayAdversary,
    chain_delay_strategy,
)
from repro.common.config import ChannelSecurity


def plain(n, seed, **kw):
    return SimulationConfig(
        n=n, seed=seed, channel_security=ChannelSecurity.NONE, **kw
    )


def banner(title):
    print()
    print("=" * 68)
    print(title)
    print("=" * 68)


def attack_a2_equivocation() -> None:
    banner("A2 — message forgery / equivocation")
    forger = lambda: {0: EquivocationForger(fooled={4, 5}, forged_payload="evil")}

    result = run_strawman_broadcast(
        plain(6, 2, t=2), initiator=0, message="good", behaviors=forger()
    )
    print(f"strawman outputs: {result.outputs}")
    print("  -> honest nodes SPLIT (agreement broken)")

    result = run_erb(
        SimulationConfig(n=6, t=2, seed=2), initiator=0, message="good",
        behaviors=forger(),
    )
    print(f"ERB outputs:      {result.outputs}")
    print("  -> the forged copies failed MAC verification; agreement holds")


def attack_a4_lookahead_bias() -> None:
    banner("A4 — look-ahead bias against distributed randomness")
    favourable = lambda v: v % 2 == 0  # the attacker wants even outputs
    trials = 60

    def rate(runner, config_factory):
        hits = 0
        for seed in range(trials):
            adversary = LookaheadBiasAdversary(0, favourable)
            result = runner(config_factory(seed), behaviors={0: adversary})
            value = next(iter(result.honest_outputs({0}).values()))
            hits += favourable(value)
        return hits / trials

    strawman_rate = rate(
        run_strawman_rng, lambda s: plain(5, s, random_bits=16)
    )
    erng_rate = rate(
        run_erng, lambda s: SimulationConfig(n=5, seed=s, random_bits=16)
    )
    print(f"P(favourable) fair coin:    0.50")
    print(f"P(favourable) strawman:     {strawman_rate:.2f}   <- biased toward 0.75")
    print(f"P(favourable) ERNG:         {erng_rate:.2f}   <- blind-box + lockstep")


def attack_a5_replay() -> None:
    banner("A5 — replay")
    result = run_strawman_rng(
        plain(5, 3), behaviors={1: ReplayAdversary(burst=8)}
    )
    print(f"strawman: {result.traffic.rejections} replays rejected (none — no freshness)")
    result = run_erb(
        SimulationConfig(n=5, seed=3), initiator=0, message=b"x",
        behaviors={1: ReplayAdversary(burst=8)},
    )
    print(f"ERB:      {result.traffic.rejections} replays rejected by the channel counter")


def attack_a3_chain_delay() -> None:
    banner("A3/A4 — worst-case byzantine delay chain (Section 6.3)")
    n, t, f = 16, 7, 4
    behaviors = chain_delay_strategy(list(range(f)), honest_target=f)
    result = run_erb(
        SimulationConfig(n=n, t=t, seed=7), initiator=0, message=b"x",
        behaviors=behaviors,
    )
    honest = result.honest_outputs(set(range(f)))
    print(f"N={n}, t={t}, byzantine chain of f={f}")
    print(f"rounds: {result.rounds_executed}  (= min(f+2, t+2) = {min(f+2, t+2)})")
    print(f"halt-on-divergence ejected: {result.halted}")
    print(f"honest nodes still agree on: {set(honest.values())}")


def attack_a4_delay_vs_lockstep() -> None:
    banner("A4 — pure delay vs lockstep execution (P5)")
    result = run_erb(
        SimulationConfig(n=9, seed=4), initiator=0, message=b"late",
        behaviors={0: DelayAdversary(2)},
    )
    honest = result.honest_outputs({0})
    print(f"delayed initiator: honest nodes accept {set(honest.values())} (bottom)")
    print(f"the delayer was ejected: {result.halted}")


if __name__ == "__main__":
    attack_a2_equivocation()
    attack_a4_lookahead_bias()
    attack_a5_replay()
    attack_a3_chain_delay()
    attack_a4_delay_vs_lockstep()
