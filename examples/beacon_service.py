#!/usr/bin/env python3
"""A distributed random beacon (Appendix H) with byzantine participants.

Every epoch, the peer network runs one ERNG instance; outputs are chained
NIST-beacon style so consumers can audit history.  A delaying byzantine
node participates throughout and affects nothing.

Run:  python examples/beacon_service.py
"""

from repro.adversary import DelayAdversary
from repro.apps.beacon import RandomBeacon
from repro.apps.random_walk import RandomWalk
from repro.apps.shared_key import derive_group_key
from repro.common.rng import DeterministicRNG
from repro.net.topology import Topology


def main() -> None:
    print("Starting a 9-peer beacon (1 byzantine delayer among them)...")
    beacon = RandomBeacon(
        n=9, seed=2024, behaviors={3: DelayAdversary(2)}
    )

    for _ in range(5):
        record = beacon.next_beacon()
        print(
            f"epoch {record.epoch}: value={record.value:#034x} "
            f"digest={record.digest.hex()[:16]}..."
        )

    print()
    print(f"chain verifies: {RandomBeacon.verify_chain(beacon.log)}")

    # Tamper with history and re-verify.
    from dataclasses import replace

    forged = list(beacon.log)
    forged[2] = replace(forged[2], value=forged[2].value ^ 1)
    print(f"forged chain verifies: {RandomBeacon.verify_chain(forged)}")

    # Downstream consumers of beacon output:
    latest = beacon.log[-1].value
    print()
    print("deriving downstream artifacts from the latest beacon value:")
    key = derive_group_key(latest, context="epoch-5-session-keys")
    print(f"  group session key: {key.hex()[:32]}...")

    topo = Topology.random_regular(30, 4, DeterministicRNG("overlay"))
    walk = RandomWalk(topo, beacon_value=latest)
    path = walk.run(start=0, steps=8)
    print(f"  audited random walk over the overlay: {path}")
    print(f"  walk verifies: {walk.verify(0, path)}")


if __name__ == "__main__":
    main()
