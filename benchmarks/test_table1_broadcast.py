"""Table 1 — reliable-broadcast protocols compared.

The paper's table is asymptotic; this bench instantiates the three
protocols we implement (ERB, RBsig/DS-style, RBearly/PT-style) on the
same network and measures rounds, messages, bytes and signature
verifications, both honest and with f omission/delay faults.  Expected
shape: ERB matches the omission-model protocols' round count with an
honest initiator (2), beats RBsig on bytes (no signature chains) and
beats RBearly on messages once faults stretch the run (no per-round
liveness broadcasts).  The asymptotic rows of the paper's Table 1 are
printed alongside from ``analysis.complexity.TABLE1_FORMULAS``.
"""

from __future__ import annotations

from bench_common import pick, print_table, save_results

from repro import SimulationConfig, run_erb
from repro.adversary import DelayAdversary, chain_delay_strategy
from repro.analysis.complexity import TABLE1_FORMULAS
from repro.baselines.rb_early import run_rb_early
from repro.baselines.rb_sig import run_rb_sig

_MB = 1024.0 * 1024.0


def _measure():
    n = pick(smoke=9, default=33, full=65)
    t = (n - 1) // 2
    f = max(2, n // 8)
    rows = []

    # --- honest runs -----------------------------------------------------
    erb = run_erb(SimulationConfig(n=n, t=t, seed=7), 0, b"t1")
    rbsig, registry = run_rb_sig(SimulationConfig(n=n, t=t, seed=7), 0, b"t1")
    rbearly = run_rb_early(SimulationConfig(n=n, t=t, seed=7), 0, b"t1")
    for name, result, verifications in (
        ("ERB", erb, 0),
        ("RBsig (DS-style)", rbsig, registry.verifications),
        ("RBearly (PT-style)", rbearly, 0),
    ):
        rows.append(
            {
                "protocol": name,
                "case": "honest",
                "rounds": result.rounds_executed,
                "messages": result.traffic.messages_sent,
                "mb": result.traffic.bytes_sent / _MB,
                "sig_verifications": verifications,
            }
        )

    # --- f faulty runs -----------------------------------------------------
    erb_byz = run_erb(
        SimulationConfig(n=n, t=t, seed=7), 0, b"t1",
        behaviors=chain_delay_strategy(list(range(f)), honest_target=f),
    )
    delayers = {node: DelayAdversary(2) for node in range(1, f + 1)}
    rbsig_byz, registry_byz = run_rb_sig(
        SimulationConfig(n=n, t=t, seed=7), 0, b"t1", behaviors=delayers
    )
    rbearly_byz = run_rb_early(
        SimulationConfig(n=n, t=t, seed=7), 0, b"t1", behaviors=delayers
    )
    for name, result, verifications in (
        ("ERB", erb_byz, 0),
        ("RBsig (DS-style)", rbsig_byz, registry_byz.verifications),
        ("RBearly (PT-style)", rbearly_byz, 0),
    ):
        rows.append(
            {
                "protocol": name,
                "case": f"f={f} faulty",
                "rounds": result.rounds_executed,
                "messages": result.traffic.messages_sent,
                "mb": result.traffic.bytes_sent / _MB,
                "sig_verifications": verifications,
            }
        )
    return {"n": n, "t": t, "f": f, "rows": rows}


def test_table1_broadcast_comparison(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = data["rows"]
    n, t, f = data["n"], data["t"], data["f"]

    print_table(
        f"Table 1 (measured) — reliable broadcast at N={n}, t={t}",
        ["protocol", "case", "rounds", "messages", "MB", "sig verifs"],
        [
            (r["protocol"], r["case"], r["rounds"], r["messages"], r["mb"],
             r["sig_verifications"])
            for r in rows
        ],
    )
    print()
    print("Table 1 (paper, asymptotic):")
    for name, row in TABLE1_FORMULAS.items():
        print(
            f"  {name:<10} model={row['model']:<10} N>={row['network']:<5} "
            f"rounds={row['rounds']:<15} comm={row['comm']}"
        )
    save_results("table1_broadcast", data)

    by_key = {(r["protocol"], r["case"]): r for r in rows}

    # Round complexity: ERB honest = 2; RBsig always t+1 (no early stop);
    # RBearly honest = 2.
    assert by_key[("ERB", "honest")]["rounds"] == 2
    assert by_key[("RBsig (DS-style)", "honest")]["rounds"] == t + 1
    assert by_key[("RBearly (PT-style)", "honest")]["rounds"] == 2
    # ERB under the worst-case chain: min{f+2, t+2}.
    assert by_key[("ERB", f"f={f} faulty")]["rounds"] == min(f + 2, t + 2)

    # Communication: ERB bytes < RBsig bytes (signature chains cost).
    assert (
        by_key[("ERB", "honest")]["mb"]
        < by_key[("RBsig (DS-style)", "honest")]["mb"]
    )
    # ERB never verifies a signature; RBsig verifies many.
    assert by_key[("RBsig (DS-style)", "honest")]["sig_verifications"] > 0

    # With faults, RBearly's per-round liveness broadcasts outweigh ERB.
    assert (
        by_key[("ERB", f"f={f} faulty")]["messages"]
        < by_key[("RBearly (PT-style)", f"f={f} faulty")]["messages"] * 2
    )
