"""pb-ERB scaling curve: rounds and bits vs N (Section 6 extension).

Deterministic ERB's ledger grows as O(N^2) messages per broadcast — the
wall that capped the paper-scale sweeps near N = 8192.  The sampled
pb-ERB replaces the all-to-all echo with O(log N) gossip/vote samples,
predicting

* **O(N log N) bits** per broadcast (every node sends one gossip sample
  of size g and one vote sample of size e, both Θ(log N)); with the
  default knobs the ledger lands at exactly ``6·N·⌈log₂N⌉`` messages;
* **O(log N) rounds** (gossip saturates in ``⌈log_{g+1}N⌉`` hops plus a
  constant vote/deadline slack).

This module sweeps N, prints the rounds/messages/bits-vs-N table
EXPERIMENTS.md quotes, and asserts the growth *order*: the empirical
log-log slope of both messages and bytes vs N must stay well below the
quadratic slope of deterministic ERB (~2) and close to linear.  Delivery
is ε-probabilistic, so the sweep asserts the sure properties (integrity,
the round bound) exactly and delivery at the 99% level.

The second sweep extends the paper's Fig. 5 (optimized ERNG rounds/bits
vs N) beyond its N = 4096 ceiling: the cluster construction keeps the
committee size fixed while N grows, so messages/bits must stay
near-linear in N and rounds must stay inside the γ + 5 deterministic
bound at every size.  ``python -m repro report`` quotes both tables.
"""

from __future__ import annotations

import math

from bench_common import (
    growth_exponent,
    pick,
    print_table,
    save_results,
)

from repro import SimulationConfig
from repro.core.erng_optimized import ClusterConfig, run_optimized_erng
from repro.core.pb_erb import PbErbConfig, run_pb_erb

PAYLOAD = b"pb-scaling"


def test_pb_erb_scaling_curve():
    sizes = pick([64, 256], [256, 1024, 4096], [1024, 4096, 16384])
    pb = PbErbConfig()
    rows = []
    for n in sizes:
        result = run_pb_erb(
            SimulationConfig(n=n, t=n // 4, seed=40),
            initiator=0,
            message=PAYLOAD,
        )
        bound = pb.resolved_round_bound(n)
        delivered = sum(1 for v in result.outputs.values() if v == PAYLOAD)
        # Sure properties: integrity (outputs are the broadcast value or
        # ⊥) and the O(log N) round bound hold on every run.
        assert all(v in (None, PAYLOAD) for v in result.outputs.values())
        assert result.rounds_executed <= bound
        # ε-probabilistic delivery: the Chernoff tail loses at most a
        # handful of nodes to ⊥ at the default knobs.
        assert delivered >= int(n * 0.99)
        rows.append({
            "n": n,
            "fanout": pb.resolved_fanout(n),
            "rounds": result.rounds_executed,
            "round_bound": bound,
            "messages": result.traffic.messages_sent,
            "bytes": result.traffic.bytes_sent,
            "messages_per_nlogn": round(
                result.traffic.messages_sent / (n * math.log2(n)), 3
            ),
            "delivered": delivered,
        })

    if len(rows) >= 2:
        ns = [row["n"] for row in rows]
        msg_order = growth_exponent(ns, [row["messages"] for row in rows])
        bit_order = growth_exponent(ns, [row["bytes"] for row in rows])
        # N log N on a log-log plot is slope 1 + o(1); deterministic
        # ERB's N^2 ledger is slope 2.  Anything creeping past ~1.35
        # means the sampling stopped buying its complexity class.
        assert msg_order < 1.35, f"message growth order {msg_order:.2f}"
        assert bit_order < 1.35, f"bit growth order {bit_order:.2f}"
        # Rounds stay within the O(log N) bound at every size (asserted
        # per-row above); the bound itself grows logarithmically.
        assert all(row["round_bound"] <= 2 + math.log2(row["n"])
                   for row in rows)

    print_table(
        "pb-ERB scaling (paper prediction: O(log N) rounds, O(N log N) bits)",
        ["N", "g", "rounds", "bound", "messages", "bytes", "msgs/NlogN",
         "delivered"],
        [[row["n"], row["fanout"], row["rounds"], row["round_bound"],
          row["messages"], row["bytes"], row["messages_per_nlogn"],
          row["delivered"]] for row in rows],
    )
    save_results("pb_erb_scaling", {"rows": rows})


def test_erng_opt_scaling_curve():
    """Fig. 5 extension: optimized-ERNG rounds and bits vs N past the
    paper's N = 4096 maximum (default scale reaches 8192, full 16384).

    The cluster/committee construction does the heavy agreement inside a
    fixed-size cluster and fans the result out, so the per-broadcast
    ledger must grow near-linearly in N (deterministic ERNG's is cubic:
    N concurrent O(N^2) instances), and the round count must respect the
    deterministic γ + 5 bound at every size.
    """
    sizes = pick([256, 1024], [1024, 4096, 8192], [4096, 8192, 16384])
    cluster = ClusterConfig()
    rows = []
    for n in sizes:
        result = run_optimized_erng(
            SimulationConfig(n=n, t=n // 3, seed=41), cluster=cluster
        )
        gamma = cluster.resolved_gamma(n)
        outputs = set(result.outputs.values())
        # Agreement and termination are deterministic for the optimized
        # protocol: one common value, inside the round bound.
        assert len(outputs) == 1 and None not in outputs
        assert result.rounds_executed <= gamma + 5
        rows.append({
            "n": n,
            "gamma": gamma,
            "rounds": result.rounds_executed,
            "round_bound": gamma + 5,
            "messages": result.traffic.messages_sent,
            "bytes": result.traffic.bytes_sent,
            "messages_per_n": round(result.traffic.messages_sent / n, 2),
            "bits_per_node": round(result.traffic.bytes_sent * 8 / n, 1),
        })

    if len(rows) >= 2:
        ns = [row["n"] for row in rows]
        msg_order = growth_exponent(ns, [row["messages"] for row in rows])
        bit_order = growth_exponent(ns, [row["bytes"] for row in rows])
        # Near-linear on a log-log plot; the full protocol's slope is ~3.
        assert msg_order < 1.5, f"message growth order {msg_order:.2f}"
        assert bit_order < 1.5, f"bit growth order {bit_order:.2f}"

    print_table(
        "optimized ERNG scaling (Fig. 5 extension: γ-bounded rounds, "
        "near-linear bits)",
        ["N", "γ", "rounds", "bound", "messages", "bytes", "msgs/N",
         "bits/node"],
        [[row["n"], row["gamma"], row["rounds"], row["round_bound"],
          row["messages"], row["bytes"], row["messages_per_n"],
          row["bits_per_node"]] for row in rows],
    )
    save_results("erng_opt_scaling", {"rows": rows})
