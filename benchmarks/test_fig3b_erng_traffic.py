"""Fig. 3b — ERNG traffic vs network size: unoptimized (cubic) vs
optimized (fixed 2N/3 cluster at these sizes), Ex vs Th.

Paper: the unoptimized curve is cubic in N; at N = 512 the optimized
version with a fixed 2/3 cluster cuts traffic by ~60 %.  We sweep smaller
sizes (the simulator pays per-message costs the testbed paid in
parallel), check the cubic exponent, and assert the optimized saving.
"""

from __future__ import annotations

from bench_common import growth_exponent, pick, powers_of_two, print_table, save_results

from repro import ClusterConfig, SimulationConfig, run_erng, run_optimized_erng
from repro.analysis.complexity import erng_unopt_bytes_honest

_MB = 1024.0 * 1024.0


def _sweep():
    sizes = pick(
        smoke=powers_of_two(4, 16),
        default=powers_of_two(4, 64),
        full=powers_of_two(4, 128),
    )
    rows = []
    for n in sizes:
        unopt = run_erng(SimulationConfig(n=n, seed=5))
        opt = run_optimized_erng(
            SimulationConfig(n=n, t=n // 3, seed=5),
            cluster=ClusterConfig(mode="fixed_fraction"),
        )
        assert len(set(unopt.outputs.values())) == 1
        assert len(set(opt.outputs.values())) == 1
        rows.append(
            {
                "n": n,
                "unopt_mb": unopt.traffic.bytes_sent / _MB,
                "th_unopt_mb": erng_unopt_bytes_honest(n) / _MB,
                "opt_mb": opt.traffic.bytes_sent / _MB,
                "saving": 1.0 - opt.traffic.bytes_sent / unopt.traffic.bytes_sent,
            }
        )
    return rows


def test_fig3b_erng_traffic(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_table(
        "Fig 3b — ERNG traffic vs N (ERNG-0 = unoptimized, ERNG-1 = optimized)",
        ["N", "ERNG-0 MB (Ex)", "ERNG-0 MB (Th)", "ERNG-1 MB (Ex)", "saving"],
        [
            (r["n"], r["unopt_mb"], r["th_unopt_mb"], r["opt_mb"],
             f"{r['saving']:.0%}")
            for r in rows
        ],
    )
    save_results("fig3b_erng_traffic", {"rows": rows})

    # Cubic scaling of the unoptimized protocol: log-log slope ~3.
    slope = growth_exponent(
        [r["n"] for r in rows], [r["unopt_mb"] for r in rows]
    )
    assert 2.7 < slope < 3.3

    # Ex matches Th within calibration slack.
    for r in rows:
        assert 0.5 < r["unopt_mb"] / r["th_unopt_mb"] < 2.0

    # Paper: >= ~60 % saving with the fixed 2N/3 cluster at the top size.
    # ((2/3)^3 ≈ 0.30 of the work, minus CHOSEN/FINAL overhead.)
    assert rows[-1]["saving"] > 0.5

    # The saving improves with N (overheads amortize).
    assert rows[-1]["saving"] > rows[0]["saving"]
