"""Fig. 2a — ERB termination time vs network size (honest case).

Paper: termination is ~2 rounds at every N; the curve sits just above the
one-round line and bends up only when the shared 128 MB/s link saturates
(around N = 2^8 on DeterLab).  We sweep the same N range and assert both
the two-round behaviour and the bandwidth knee.
"""

from __future__ import annotations

from bench_common import pick, powers_of_two, print_table, record_run, save_results

from repro import SimulationConfig, run_erb


#: A deliberately tight shared link (bytes/s).  The paper's knee appears
#: where per-round traffic outgrows the link; with the default 128 MB/s
#: that happens around N = 2^10 — this second series shifts the knee into
#: the default sweep so the phenomenon is visible at every scale.
TIGHT_LINK = 16 * 1024 * 1024


def _sweep():
    sizes = pick(
        smoke=powers_of_two(4, 32),
        default=powers_of_two(4, 512),
        full=powers_of_two(4, 1024),
    )
    rows = []
    for n in sizes:
        config = SimulationConfig(n=n, seed=1)
        result = run_erb(config, initiator=0, message=b"fig2a-payload")
        assert set(result.outputs.values()) == {b"fig2a-payload"}
        record_run(result)
        tight_config = SimulationConfig(
            n=n, seed=1, bandwidth_bytes_per_s=TIGHT_LINK
        )
        tight = run_erb(tight_config, initiator=0, message=b"fig2a-payload")
        rows.append(
            {
                "n": n,
                "rounds": result.rounds_executed,
                "one_round_s": config.round_seconds,
                "termination_s": result.termination_seconds,
                "termination_tight_s": tight.termination_seconds,
                "mb": result.traffic.megabytes_sent,
            }
        )
    return rows


def test_fig2a_erb_termination(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_table(
        "Fig 2a — ERB honest termination (time in simulated seconds)",
        ["N", "rounds", "one round (s)", "termination (s)",
         "termination, 16MB/s link (s)", "traffic (MB)"],
        [
            (r["n"], r["rounds"], r["one_round_s"], r["termination_s"],
             r["termination_tight_s"], r["mb"])
            for r in rows
        ],
    )
    save_results("fig2a_erb_termination", {"rows": rows})

    # Paper claim 1: honest initiator => exactly 2 rounds at every N.
    assert all(r["rounds"] == 2 for r in rows)

    # Paper claim 2: termination ~ 2x one round until the link saturates;
    # never *below* two nominal rounds.
    for r in rows:
        assert r["termination_s"] >= 2 * r["one_round_s"] - 1e-9

    # Paper claim 3 (the knee): once per-round traffic outgrows the shared
    # link, termination bends up — flat at small N, stretched at large N.
    if len(rows) >= 4:
        small = rows[0]
        assert small["termination_tight_s"] == small["termination_s"]
        big = rows[-1]
        assert big["termination_tight_s"] > big["termination_s"]
