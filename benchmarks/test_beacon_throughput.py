"""Sustained-load random-beacon benchmarks (the service-shape workload).

The one-shot engine benchmarks measure single protocol runs; this module
measures the metric RandSolomon frames — random values produced per unit
time — on the chained beacon service, across the three execution shapes
the engine now offers:

* **sequential** — the pre-session shape: every epoch rebuilds the
  network (and, with ``workers > 1``, reforks the whole worker crew);
* **session**   — epochs share one :class:`~repro.net.session.EngineSession`
  (fork once, run many; cross-run cache hygiene between epochs);
* **pipelined** — all epochs run as one engine run, epoch *e+1*'s INIT
  wave staged inside epoch *e*'s ACK-wave round (the overlap window
  ``RandomBeacon.pipeline_stats`` makes explicit).

Cases persisted:

* ``beacon_n9_{sequential,session,pipelined}`` at the paper-table scale
  (N = 9, t = 2) with ``workers = REPRO_BENCH_WORKERS`` — the speedup
  pair behind ``beacon_pipeline_speedup_vs_sequential`` (the PR's
  acceptance number, >= 2x at default scale on a fork-capable host) and
  ``beacon_session_speedup_vs_sequential``;
* ``beacon_n9_serial_{sequential,session,pipelined}`` on the serial
  engine — the honesty row: what session reuse buys *without* fork
  amortisation;
* ``beacon_n256_{sequential,pipelined}`` (smoke: N = 16) — the sustained
  -load scale row, message-work dominated;
* ``beacon_n256_opt_{sequential,session}`` (smoke: N = 16) — the
  optimized (cluster/committee) backend as a streaming service.

Every mode must reproduce the byte-identical beacon chain — the session
and pipeline are performance properties, never semantic ones — and every
timed loop feeds a per-epoch latency histogram (``repro.obs`` Histogram)
into the ``beacon_throughput.metrics.json`` sidecar.

History entries append to the repo-root ``BENCH_engine.json`` stamped
``suite="beacon"``: the bench gate compares beacon entries only against
prior beacon entries (service epochs/s and raw engine sweeps are
different quantities — see :func:`repro.obs.bench.entries_comparable`).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from time import perf_counter

from bench_common import (
    METRICS,
    SCALE,
    SCHEDULER,
    WORKERS,
    machine_stamp,
    pick,
    save_results,
)

from repro.apps.beacon import RandomBeacon
from repro.baselines import CommitteeBeaconModel
from repro.net.parallel import planned_data_plane

BENCH_FILE = Path(__file__).parent.parent / "BENCH_engine.json"

#: Beacon timing rows accumulated by the tests in this module; every
#: update re-persists the whole dict so partial runs still leave a file.
_BEACON_ROWS: dict = {}

#: One BENCH_engine.json history entry per pytest session.
_SESSION_STAMP = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())


def _sched_extra() -> dict:
    return {"scheduler": SCHEDULER} if SCHEDULER is not None else {}


def _timed_epochs(case: str, beacon: RandomBeacon, epochs: int):
    """Drive ``epochs`` epochs one at a time, feeding each epoch's wall
    time into the shared latency histogram.  Returns (seconds, records,
    messages) for the whole chain."""
    histogram = METRICS.histogram(f"beacon.epoch_latency_ms.{case}")
    messages = 0
    t0 = perf_counter()
    for _ in range(epochs):
        e0 = perf_counter()
        beacon.next_beacon()
        histogram.observe((perf_counter() - e0) * 1e3)
        messages += beacon.last_result.traffic.messages_sent
    return perf_counter() - t0, list(beacon.log), messages


def _timed_pipeline(case: str, beacon: RandomBeacon, epochs: int):
    """Run one pipelined batch; per-epoch latency is the amortised batch
    time (individual epochs overlap, so they have no private wall
    time)."""
    t0 = perf_counter()
    beacon.run_pipelined(epochs)
    seconds = perf_counter() - t0
    histogram = METRICS.histogram(f"beacon.epoch_latency_ms.{case}")
    for _ in range(epochs):
        histogram.observe(seconds / epochs * 1e3)
    return seconds, list(beacon.log), beacon.last_result.traffic.messages_sent


def _record_beacon_case(
    case: str, n: int, epochs: int, seconds: float, messages: int
) -> None:
    histogram = METRICS.histogram(f"beacon.epoch_latency_ms.{case}")
    _BEACON_ROWS[case] = {
        "n": n,
        "epochs": epochs,
        "messages": messages,
        "seconds": round(seconds, 6),
        "messages_per_sec": round(messages / seconds),
        "epochs_per_sec": round(epochs / seconds, 3),
        "ms_per_epoch": round(seconds / epochs * 1e3, 3),
        "epoch_latency_ms": {
            "p50": round(histogram.p50, 3),
            "p95": round(histogram.p95, 3),
            "max": round(histogram.max, 3),
        },
    }
    _persist_beacon_rows()


def _persist_beacon_rows() -> None:
    save_results("beacon_throughput", {"cases": dict(_BEACON_ROWS)})
    entry = {
        "timestamp": _SESSION_STAMP,
        "scale": SCALE,
        **machine_stamp(
            workers=WORKERS,
            data_plane=planned_data_plane(WORKERS, {}),
            scheduler=SCHEDULER,
            suite="beacon",
        ),
        "cases": dict(_BEACON_ROWS),
    }
    sequential = _BEACON_ROWS.get("beacon_n9_sequential")
    pipelined = _BEACON_ROWS.get("beacon_n9_pipelined")
    session = _BEACON_ROWS.get("beacon_n9_session")
    if sequential and pipelined:
        entry["beacon_pipeline_speedup_vs_sequential"] = round(
            pipelined["epochs_per_sec"] / sequential["epochs_per_sec"], 3
        )
    if sequential and session:
        entry["beacon_session_speedup_vs_sequential"] = round(
            session["epochs_per_sec"] / sequential["epochs_per_sec"], 3
        )
    try:
        payload = json.loads(BENCH_FILE.read_text())
    except (OSError, ValueError):
        payload = {"benchmark": "engine_throughput", "history": []}
    history = payload.setdefault("history", [])
    # One entry per pytest session: replace the entry this session started.
    if history and history[-1].get("timestamp") == entry["timestamp"]:
        history[-1] = entry
    else:
        history.append(entry)
    payload["latest"] = entry
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")


def _assert_same_chain(*chains) -> None:
    """Byte-identity across execution shapes: same digests, same values."""
    reference = chains[0]
    assert RandomBeacon.verify_chain(reference)
    for chain in chains[1:]:
        assert [r.digest for r in chain] == [r.digest for r in reference]
        assert chain == reference


def test_beacon_n9_pipeline_speedup():
    """The acceptance pair: N = 9 (t = 2) beacon epochs under per-epoch
    rebuild vs a persistent session vs the pipelined scheduler, all with
    ``workers = REPRO_BENCH_WORKERS``.  Sequential mode reforks the whole
    worker crew every epoch; the session forks once — the honest source
    of the sustained-throughput win — and pipelining folds the per-epoch
    barrier rounds on top."""
    epochs = pick(3, 10, 16)
    kwargs = dict(
        n=9, t=2, seed=7, workers=WORKERS, extra=_sched_extra()
    )

    with RandomBeacon(**kwargs) as beacon:
        seq_seconds, seq_chain, seq_messages = _timed_epochs(
            "beacon_n9_sequential", beacon, epochs
        )
    with RandomBeacon(session=True, **kwargs) as beacon:
        ses_seconds, ses_chain, ses_messages = _timed_epochs(
            "beacon_n9_session", beacon, epochs
        )
    with RandomBeacon(session=True, **kwargs) as beacon:
        pipe_seconds, pipe_chain, pipe_messages = _timed_pipeline(
            "beacon_n9_pipelined", beacon, epochs
        )
        overlaps = [
            stat["overlaps_prev_ack_wave"] for stat in beacon.pipeline_stats
        ]

    # The mandatory equivalence: execution shape changes wall time only.
    _assert_same_chain(seq_chain, ses_chain, pipe_chain)
    assert seq_messages == ses_messages
    # Every hand-off after the first epoch staged inside the previous
    # epoch's ACK wave — the overlap window the pipeline exists for.
    assert overlaps == [False] + [True] * (epochs - 1)

    _record_beacon_case("beacon_n9_sequential", 9, epochs, seq_seconds, seq_messages)
    _record_beacon_case("beacon_n9_session", 9, epochs, ses_seconds, ses_messages)
    _record_beacon_case("beacon_n9_pipelined", 9, epochs, pipe_seconds, pipe_messages)

    if SCALE != "smoke" and WORKERS >= 2 and hasattr(os, "fork"):
        # The acceptance bar: session reuse + epoch overlap must at least
        # double sustained epochs/s over the per-epoch rebuild shape.
        # Gated on fork because without it workers>1 falls back to the
        # serial path and "reforking the crew every epoch" measures
        # nothing.
        assert pipe_seconds * 2 <= seq_seconds, (
            f"pipelined beacon only {seq_seconds / pipe_seconds:.2f}x "
            f"faster than per-epoch rebuild ({WORKERS} workers)"
        )
        assert ses_seconds < seq_seconds, (
            f"session beacon slower than rebuild: {ses_seconds:.3f}s vs "
            f"{seq_seconds:.3f}s"
        )


def test_beacon_n9_serial_sustained():
    """The honesty row: the same three shapes on the serial engine
    (``workers = 1``), where there is no fork cost to amortise — the
    session/pipeline win shrinks to cache warmth and folded barrier
    rounds.  Recorded without a speedup floor; the numbers tell the
    story (and must never *regress* thanks to the bench gate)."""
    epochs = pick(8, 48, 64)
    kwargs = dict(n=9, t=2, seed=7, workers=1, extra=_sched_extra())

    with RandomBeacon(**kwargs) as beacon:
        seq_seconds, seq_chain, seq_messages = _timed_epochs(
            "beacon_n9_serial_sequential", beacon, epochs
        )
    with RandomBeacon(session=True, **kwargs) as beacon:
        ses_seconds, ses_chain, _ = _timed_epochs(
            "beacon_n9_serial_session", beacon, epochs
        )
    with RandomBeacon(session=True, **kwargs) as beacon:
        pipe_seconds, pipe_chain, pipe_messages = _timed_pipeline(
            "beacon_n9_serial_pipelined", beacon, epochs
        )

    _assert_same_chain(seq_chain, ses_chain, pipe_chain)
    _record_beacon_case(
        "beacon_n9_serial_sequential", 9, epochs, seq_seconds, seq_messages
    )
    _record_beacon_case(
        "beacon_n9_serial_session", 9, epochs, ses_seconds, seq_messages
    )
    _record_beacon_case(
        "beacon_n9_serial_pipelined", 9, epochs, pipe_seconds, pipe_messages
    )


def test_beacon_n256_scale():
    """The sustained-load scale row (smoke: N = 16): at N = 256 each
    unoptimized epoch is ~33M logical messages, so the run is message
    -work dominated and the pipeline's value is bounded — exactly the
    regime the row documents.  Chains must still be byte-identical."""
    n = pick(16, 256, 256)
    epochs = 2
    kwargs = dict(n=n, seed=11, workers=1, extra=_sched_extra())

    with RandomBeacon(**kwargs) as beacon:
        seq_seconds, seq_chain, seq_messages = _timed_epochs(
            f"beacon_n{n}_sequential", beacon, epochs
        )
    with RandomBeacon(session=True, **kwargs) as beacon:
        pipe_seconds, pipe_chain, pipe_messages = _timed_pipeline(
            f"beacon_n{n}_pipelined", beacon, epochs
        )

    _assert_same_chain(seq_chain, pipe_chain)
    _record_beacon_case(
        f"beacon_n{n}_sequential", n, epochs, seq_seconds, seq_messages
    )
    _record_beacon_case(
        f"beacon_n{n}_pipelined", n, epochs, pipe_seconds, pipe_messages
    )


def test_beacon_n256_optimized_service():
    """The optimized (cluster/committee) backend as a streaming service
    (smoke: N = 16): per-epoch cost is O(n·|cluster|), so session reuse
    is the whole win — the pipeline does not apply (the optimized
    protocol's coin rounds are seed-locked, see ``run_pipelined``)."""
    n = pick(16, 256, 256)
    epochs = pick(3, 10, 10)
    kwargs = dict(
        n=n, t=n // 3, optimized=True, seed=13, workers=1,
        extra=_sched_extra(),
    )

    with RandomBeacon(**kwargs) as beacon:
        seq_seconds, seq_chain, seq_messages = _timed_epochs(
            f"beacon_n{n}_opt_sequential", beacon, epochs
        )
    with RandomBeacon(session=True, **kwargs) as beacon:
        ses_seconds, ses_chain, ses_messages = _timed_epochs(
            f"beacon_n{n}_opt_session", beacon, epochs
        )

    _assert_same_chain(seq_chain, ses_chain)
    assert seq_messages == ses_messages
    _record_beacon_case(
        f"beacon_n{n}_opt_sequential", n, epochs, seq_seconds, seq_messages
    )
    _record_beacon_case(
        f"beacon_n{n}_opt_session", n, epochs, ses_seconds, ses_messages
    )


def test_beacon_committee_baseline_row():
    """The EXPERIMENTS.md "TEE-reduction vs error-correcting-code" row:
    price a RandSolomon-flavored committee beacon (N = 4f+1, RS shares +
    signature chains — an analytic cost model, see
    ``repro.baselines.beacon_committee``) against a *measured* TEE
    beacon tolerating the same f with N = 2f+1 nodes.

    No speed assertion — the committee's message count can undercut the
    unoptimized O(N^3) ERNG at tiny N; the row's point is the costs the
    TEE removes structurally (PKI, per-message signature verification,
    RS decoding) and the 4f+1 → 2f+1 population reduction."""
    f = 2
    epochs = pick(2, 6, 8)
    model = CommitteeBeaconModel(share_bits=128)

    messages = bytes_sent = 0
    with RandomBeacon(
        n=2 * f + 1, t=f, seed=17, session=True, extra=_sched_extra()
    ) as beacon:
        for _ in range(epochs):
            beacon.next_beacon()
            messages += beacon.last_result.traffic.messages_sent
            bytes_sent += beacon.last_result.traffic.bytes_sent
        assert RandomBeacon.verify_chain(beacon.log)

    row = model.tolerance_row(
        f, {"epochs": epochs, "messages": messages, "bytes": bytes_sent}
    )
    # Structural reductions the TEE buys at equal tolerance f: fewer
    # than half the nodes, zero signature verifications, zero decoding.
    assert row["committee_n"] == 4 * f + 1 > row["tee_n"] == 2 * f + 1
    assert row["committee"]["signature_verifications"] > 0
    assert row["committee"]["field_operations"] > 0
    assert row["message_ratio_committee_over_tee"] is not None
    save_results("beacon_committee_baseline", {"rows": [row]})
