"""Shared machinery for the figure/table reproduction benchmarks.

Every benchmark module regenerates one artifact of the paper's evaluation
(Section 6): it sweeps the same parameter the paper swept, prints the same
rows/series, asserts the paper's *shape* claims (who wins, growth order,
crossovers), and persists the rows under ``benchmarks/results/`` so
EXPERIMENTS.md can quote them.

Sweep sizes are controlled by ``REPRO_BENCH_SCALE``:

* ``smoke``   — minimal sizes (CI sanity);
* ``default`` — moderate sizes, minutes of wall time in total;
* ``full``    — the paper's maxima (N = 2^10 for ERB), slower.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
from pathlib import Path
from typing import Dict, List, Sequence

from repro.obs.machine import git_revision, machine_stamp  # noqa: F401 (re-export)
from repro.obs.metrics import PROFILER, MetricsRegistry

RESULTS_DIR = Path(__file__).parent / "results"

#: Shared metrics registry: benchmark modules feed run statistics into it
#: via :func:`record_run`; :func:`save_results` snapshots it into a
#: ``<name>.metrics.json`` sidecar next to each results file.
METRICS = MetricsRegistry()

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
if SCALE not in ("smoke", "default", "full"):
    raise RuntimeError(f"unknown REPRO_BENCH_SCALE={SCALE!r}")


#: Worker count for the parallel-engine benchmark cases.  Overridable so
#: CI smoke runs (2-core runners) and developer machines measure what
#: their hardware actually has.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

#: Round-scheduler override for the engine benchmark cases.  Unset means
#: the engine's ``auto`` resolution (and an unstamped history entry, so
#: pre-scheduler history stays comparable); setting it forces the mode
#: AND stamps it into BENCH history entries, segregating the numbers —
#: the bench gate never compares across scheduler modes.
SCHEDULER = os.environ.get("REPRO_BENCH_SCHEDULER") or None
if SCHEDULER not in (None, "auto", "dense", "sparse"):
    raise RuntimeError(f"unknown REPRO_BENCH_SCHEDULER={SCHEDULER!r}")


def pick(smoke, default, full):
    """Choose a sweep by scale."""
    return {"smoke": smoke, "default": default, "full": full}[SCALE]


@contextlib.contextmanager
def maybe_profile(name: str):
    """cProfile a benchmark section when ``REPRO_BENCH_PROFILE_OUT`` is
    set: dumps ``<dir>/<name>.pstats`` alongside the metrics sidecars."""
    out_dir = os.environ.get("REPRO_BENCH_PROFILE_OUT")
    if not out_dir:
        yield None
        return
    import cProfile

    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path / f"{name}.pstats")


def powers_of_two(lo: int, hi: int) -> List[int]:
    return [1 << k for k in range(int(math.log2(lo)), int(math.log2(hi)) + 1)]


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Render an aligned ASCII table to stdout (visible with ``-s``)."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered else len(str(header))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print()
    print(title)
    print("-" * len(line))
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def record_run(result) -> None:
    """Feed one simulation's RunStats into the shared metrics registry."""
    result.stats.publish(METRICS)


def save_results(name: str, payload: Dict) -> None:
    """Persist one benchmark's rows for EXPERIMENTS.md.

    Alongside ``<name>.json`` this writes a ``<name>.metrics.json``
    sidecar with whatever accumulated in :data:`METRICS` (and the
    profiler registry, when wall-clock profiling was enabled).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload["scale"] = SCALE
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    sidecar: Dict = {
        "benchmark": name,
        "scale": SCALE,
        "metrics": METRICS.as_dict(),
    }
    if PROFILER.enabled and PROFILER.registry is not None:
        sidecar["profile"] = PROFILER.registry.as_dict()
    with open(RESULTS_DIR / f"{name}.metrics.json", "w") as fh:
        json.dump(sidecar, fh, indent=2, default=str)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x): the empirical growth order."""
    pairs = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    n = len(pairs)
    if n < 2:
        raise ValueError("need at least two positive points")
    mean_x = sum(p[0] for p in pairs) / n
    mean_y = sum(p[1] for p in pairs) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    den = sum((x - mean_x) ** 2 for x, _ in pairs)
    return num / den
