"""Simulator micro-benchmarks (not a paper artifact).

Real timing measurements of the engine itself — the only benchmarks here
that run multiple timing rounds.  They guard against performance
regressions that would make the figure sweeps impractical:

* one honest ERB instance at N = 64 (~8k messages + ACKs);
* one honest ERNG instance at N = 16 (~8k messages across 16 cores);
* FULL-crypto channel write/read round trip.
"""

from __future__ import annotations

from time import perf_counter

from repro import SimulationConfig, run_erb, run_erng
from repro.obs import NullSink, Tracer
from repro.channel.peer_channel import SecureChannel
from repro.common.config import ChannelSecurity
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.crypto.dh import MODP_768
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock


def test_engine_erb_n64(benchmark):
    def run():
        result = run_erb(
            SimulationConfig(n=64, seed=20), initiator=0, message=b"perf"
        )
        assert result.rounds_executed == 2
        return result.traffic.messages_sent

    messages = benchmark.pedantic(run, rounds=3, iterations=1)
    assert messages == 8064


def test_engine_erng_n16(benchmark):
    def run():
        result = run_erng(SimulationConfig(n=16, seed=21))
        assert len(set(result.outputs.values())) == 1
        return result.traffic.messages_sent

    messages = benchmark.pedantic(run, rounds=3, iterations=1)
    assert messages > 7000


class _PerfProgram(EnclaveProgram):
    PROGRAM_NAME = "perf-channel"


def test_full_channel_roundtrip(benchmark):
    rng = DeterministicRNG("perf")
    clock = SimulationClock()
    authority = AttestationAuthority(rng)
    a = Enclave(0, _PerfProgram(), rng, clock, authority)
    b = Enclave(1, _PerfProgram(), rng, clock, authority)
    channel = SecureChannel.establish(a, b, ChannelSecurity.FULL, MODP_768)
    message = ProtocolMessage(
        MessageType.ECHO, 0, 1, b"x" * 64, 1, "perf"
    )

    def roundtrip():
        wire = channel.write(0, message, a.rdrand.rng(), a.measurement)
        return channel.read(1, wire)

    received = benchmark.pedantic(roundtrip, rounds=50, iterations=10)
    assert received.payload == b"x" * 64


def test_noop_tracer_overhead():
    """A tracer with only inactive sinks must cost (nearly) nothing.

    Compares min-of-5 wall times of the same ERB run with the default
    NULL_TRACER against an explicit ``Tracer(NullSink())``; the engine
    short-circuits on ``tracer.enabled`` so the delta should be noise.
    The bound is <5% plus a 10 ms absolute floor to keep tiny-denominator
    jitter from flaking the suite.
    """

    def run(tracer=None):
        result = run_erb(
            SimulationConfig(n=48, seed=20, tracer=tracer),
            initiator=0,
            message=b"perf",
        )
        assert result.rounds_executed == 2
        return result

    def timed(tracer_factory):
        best = float("inf")
        for _ in range(5):
            tracer = tracer_factory()
            t0 = perf_counter()
            run(tracer)
            best = min(best, perf_counter() - t0)
        return best

    run()  # warm-up: imports, allocator, branch caches
    base = timed(lambda: None)
    noop = timed(lambda: Tracer(NullSink()))
    assert noop <= base * 1.05 + 0.01, (
        f"no-op tracer overhead too high: {noop:.4f}s vs {base:.4f}s baseline"
    )
