"""Simulator micro-benchmarks (not a paper artifact).

Real timing measurements of the engine itself — the only benchmarks here
that run multiple timing rounds.  They guard against performance
regressions that would make the figure sweeps impractical:

* one honest ERB instance at N = 64 (~8k messages + ACKs);
* one honest ERB instance at N = 256 over the modeled transport;
* the batched fan-out fast path vs the per-wire legacy path (with a
  result-equivalence assertion — see docs/PERFORMANCE.md);
* one honest ERNG instance at N = 16 (~8k messages across 16 cores);
* one honest ERNG instance at N = 64 on the round-envelope path
  (~516k logical messages), plus the envelope vs legacy comparison that
  records ``envelope_speedup_vs_legacy`` — the coalescing layer's
  headline number;
* one honest ERB instance at the paper's N = 1024 maximum on the sharded
  parallel engine, and the sharded vs serial ERNG N = 64 comparison that
  records ``parallel_speedup_vs_serial`` (worker count set by
  ``REPRO_BENCH_WORKERS``, default 4);
* the optimized ERNG at N = 4096 (the sparse scheduler's headline
  protocol case — the CI scaling smoke runs exactly this one);
* the active-set round-loop microbench: a 24-member cluster chattering
  inside an N = 4096 network, sparse vs dense scheduling on byte-equal
  observables, recording ``round_loop_speedup_sparse`` (>= 3x asserted
  outside smoke);
* pb-ERB at N = 16384 (full scale only): the sampled broadcast must
  complete with O(N log N) recorded link crossings;
* FULL-crypto channel write/read round trip.

History entries in ``BENCH_engine.json`` are stamped with the git rev,
CPU count, worker count, engine data plane (shm vs pickle) and — when
``REPRO_BENCH_SCHEDULER`` forces a round-scheduler mode — the scheduler,
so numbers from different machines, data planes or scheduler modes stay
comparable; set ``REPRO_BENCH_PROFILE_OUT=<dir>`` to drop ``pstats``
profiles of the engine cases alongside the metrics sidecars.

The engine cases persist rounds/sec and messages/sec into
``benchmarks/results/engine_throughput.json`` and append one entry to the
repo-root ``BENCH_engine.json`` history, so the perf trajectory
accumulates across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from time import perf_counter

import pytest
from bench_common import (
    SCALE,
    SCHEDULER,
    WORKERS,
    machine_stamp,
    maybe_profile,
    pick,
    save_results,
)

from repro import SimulationConfig, run_erb, run_erng
from repro.core.erng_optimized import ClusterConfig, run_optimized_erng
from repro.core.pb_erb import PbErbConfig, run_pb_erb
from repro.net.parallel import planned_data_plane
from repro.net.simulator import SynchronousNetwork
from repro.obs import NullSink, Tracer
from repro.channel.peer_channel import SecureChannel
from repro.common.config import ChannelSecurity
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, ProtocolMessage
from repro.crypto.dh import MODP_768
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock

BENCH_FILE = Path(__file__).parent.parent / "BENCH_engine.json"

#: Engine timing rows accumulated by the tests in this module; every
#: update re-persists the whole dict so partial runs still leave a file.
_ENGINE_ROWS: dict = {}


def _sched_extra(extra: dict = None) -> dict:
    """Engine ``extra`` with the forced scheduler mode merged in (the
    ``REPRO_BENCH_SCHEDULER`` knob); engine ``auto`` when unset."""
    merged = dict(extra or {})
    if SCHEDULER is not None:
        merged["scheduler"] = SCHEDULER
    return merged


def _time_best(fn, repeats: int = 3):
    """Best-of-N wall time of ``fn`` (after one warm-up call)."""
    result = fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        result = fn()
        best = min(best, perf_counter() - t0)
    return best, result


def _record_engine_case(case: str, n: int, seconds: float, result) -> None:
    messages = result.traffic.messages_sent
    _ENGINE_ROWS[case] = {
        "n": n,
        "messages": messages,
        "rounds": result.rounds_executed,
        "seconds": round(seconds, 6),
        "messages_per_sec": round(messages / seconds),
        "rounds_per_sec": round(result.rounds_executed / seconds, 3),
    }
    _persist_engine_rows()


#: One BENCH_engine.json history entry per pytest session.
_SESSION_STAMP = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())


def _persist_engine_rows() -> None:
    save_results("engine_throughput", {"cases": dict(_ENGINE_ROWS)})
    entry = {
        "timestamp": _SESSION_STAMP,
        "scale": SCALE,
        **machine_stamp(
            workers=WORKERS,
            data_plane=planned_data_plane(WORKERS, {}),
            scheduler=SCHEDULER,
        ),
        "cases": dict(_ENGINE_ROWS),
    }
    fanout = _ENGINE_ROWS.get("erb_n64_fanout")
    legacy = _ENGINE_ROWS.get("erb_n64_legacy")
    if fanout and legacy:
        entry["fanout_speedup_vs_legacy"] = round(
            fanout["messages_per_sec"] / legacy["messages_per_sec"], 3
        )
    envelope = _ENGINE_ROWS.get("erng_n64_modeled")
    erng_legacy = _ENGINE_ROWS.get("erng_n64_legacy")
    if envelope and erng_legacy:
        entry["envelope_speedup_vs_legacy"] = round(
            envelope["messages_per_sec"] / erng_legacy["messages_per_sec"], 3
        )
    erng_fanout = _ENGINE_ROWS.get("erng_n64_fanout")
    if envelope and erng_fanout:
        entry["envelope_speedup_vs_fanout"] = round(
            envelope["messages_per_sec"] / erng_fanout["messages_per_sec"], 3
        )
    parallel = _ENGINE_ROWS.get("erng_n64_parallel")
    serial = _ENGINE_ROWS.get("erng_n64_serial") or envelope
    if parallel and serial:
        entry["parallel_speedup_vs_serial"] = round(
            parallel["messages_per_sec"] / serial["messages_per_sec"], 3
        )
    for n in (128, 1024):
        erb_par = _ENGINE_ROWS.get(f"erb_n{n}")
        erb_ser = _ENGINE_ROWS.get(f"erb_n{n}_serial")
        if erb_par and erb_ser:
            entry["erb_parallel_speedup_vs_serial"] = round(
                erb_par["messages_per_sec"] / erb_ser["messages_per_sec"], 3
            )
    loop_sparse = _ENGINE_ROWS.get("round_loop_n4096_sparse")
    loop_dense = _ENGINE_ROWS.get("round_loop_n4096_dense")
    if loop_sparse and loop_dense and loop_sparse["seconds"] > 0:
        # Same messages either way, so the wall-time ratio IS the
        # round-loop speedup (the sparse scheduler's headline number).
        entry["round_loop_speedup_sparse"] = round(
            loop_dense["seconds"] / loop_sparse["seconds"], 3
        )
    try:
        payload = json.loads(BENCH_FILE.read_text())
    except (OSError, ValueError):
        payload = {"benchmark": "engine_throughput", "history": []}
    history = payload.setdefault("history", [])
    # One entry per pytest session: replace the entry this session started.
    if history and history[-1].get("timestamp") == entry["timestamp"]:
        history[-1] = entry
    else:
        history.append(entry)
    payload["latest"] = entry
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")


def test_engine_erb_n64(benchmark):
    def run():
        result = run_erb(
            SimulationConfig(n=64, seed=20), initiator=0, message=b"perf"
        )
        assert result.rounds_executed == 2
        return result.traffic.messages_sent

    messages = benchmark.pedantic(run, rounds=3, iterations=1)
    assert messages == 8064


def test_engine_erb_n256_modeled():
    """Honest ERB at N = 256 (smoke: 64) over the modeled transport —
    the scale the Fig. 2/3 sweeps live at; persisted for the trajectory."""
    n = pick(64, 256, 256)

    def run():
        result = run_erb(
            SimulationConfig(n=n, seed=22, extra=_sched_extra()),
            initiator=0, message=b"perf-256",
        )
        assert result.rounds_executed == 2
        return result

    seconds, result = _time_best(run)
    assert result.traffic.messages_sent == 2 * n * (n - 1)
    _record_engine_case(f"erb_n{n}_modeled", n, seconds, result)


def test_engine_fanout_vs_legacy_n64():
    """Batched fan-out fast path vs per-wire legacy path on the same
    seeded honest run: identical observables, recorded side by side in
    BENCH_engine.json (the PR's before/after perf trajectory)."""

    def fanout():
        return run_erb(
            SimulationConfig(n=64, seed=20, extra=_sched_extra()),
            initiator=0, message=b"perf",
        )

    def legacy():
        return run_erb(
            SimulationConfig(
                n=64, seed=20,
                extra=_sched_extra({"disable_fanout_fast_path": True}),
            ),
            initiator=0,
            message=b"perf",
        )

    fast_seconds, fast = _time_best(fanout)
    legacy_seconds, slow = _time_best(legacy)

    # The mandatory equivalence: the fast path may only change wall time.
    assert fast.outputs == slow.outputs
    assert fast.halted == slow.halted
    assert fast.decided_rounds == slow.decided_rounds
    assert dict(fast.traffic.bytes_by_round) == dict(slow.traffic.bytes_by_round)
    assert fast.traffic.messages_sent == slow.traffic.messages_sent == 8064
    assert fast.traffic.bytes_sent == slow.traffic.bytes_sent

    _record_engine_case("erb_n64_fanout", 64, fast_seconds, fast)
    _record_engine_case("erb_n64_legacy", 64, legacy_seconds, slow)
    if SCALE != "smoke":
        # Regression guard, deliberately loose: the fast path must not be
        # meaningfully slower than per-wire (it is ~1.7x faster unloaded).
        assert fast_seconds <= legacy_seconds * 1.5


def test_engine_erng_n16(benchmark):
    def run():
        result = run_erng(SimulationConfig(n=16, seed=21))
        assert len(set(result.outputs.values())) == 1
        return result.traffic.messages_sent

    messages = benchmark.pedantic(run, rounds=3, iterations=1)
    assert messages > 7000


def test_engine_erng_n64_modeled():
    """Honest ERNG at N = 64 on the round-envelope path: 64 concurrent
    ERB instances (~516k logical messages in 2 rounds) coalesced to one
    envelope per link per wave — the scale the pre-envelope engine could
    not sweep practically."""

    def run():
        result = run_erng(SimulationConfig(n=64, seed=21, extra=_sched_extra()))
        assert len(set(result.outputs.values())) == 1
        assert result.rounds_executed == 2
        return result

    repeats = 1 if SCALE == "smoke" else 3
    seconds, result = _time_best(run, repeats=repeats)
    assert result.traffic.messages_sent == 516096
    # One transmit envelope and (mostly) one ACK envelope per link per
    # round: physical crossings collapse by more than an order of
    # magnitude while the logical ledger is untouched.
    assert result.traffic.coalescing_ratio > 10
    _record_engine_case("erng_n64_modeled", 64, seconds, result)


def test_engine_erng_envelope_vs_legacy():
    """Round-envelope path vs the per-wire legacy path on the same seeded
    honest ERNG run at N = 64: identical logical observables, wall-clock
    recorded side by side, and ``envelope_speedup_vs_legacy`` appended to
    the BENCH_engine.json history (the PR's acceptance number)."""

    def envelope():
        return run_erng(SimulationConfig(n=64, seed=21, extra=_sched_extra()))

    def fanout():
        return run_erng(SimulationConfig(
            n=64, seed=21,
            extra=_sched_extra({"disable_envelope_fast_path": True}),
        ))

    def legacy():
        return run_erng(SimulationConfig(
            n=64,
            seed=21,
            extra=_sched_extra({
                "disable_envelope_fast_path": True,
                "disable_fanout_fast_path": True,
            }),
        ))

    repeats = 1 if SCALE == "smoke" else 3
    env_seconds, env = _time_best(envelope, repeats=repeats)
    legacy_seconds, slow = _time_best(legacy, repeats=repeats)

    # The mandatory equivalence: coalescing may only change wall time and
    # the physical ledger, never the logical observables.
    assert env.outputs == slow.outputs
    assert env.halted == slow.halted
    assert env.decided_rounds == slow.decided_rounds
    assert dict(env.traffic.bytes_by_round) == dict(slow.traffic.bytes_by_round)
    assert env.traffic.messages_sent == slow.traffic.messages_sent == 516096
    assert env.traffic.bytes_sent == slow.traffic.bytes_sent
    assert env.traffic.envelopes_sent < slow.traffic.envelopes_sent

    _record_engine_case("erng_n64_modeled", 64, env_seconds, env)
    _record_engine_case("erng_n64_legacy", 64, legacy_seconds, slow)
    if SCALE != "smoke":
        fanout_seconds, mid = _time_best(fanout, repeats=repeats)
        assert mid.outputs == env.outputs
        _record_engine_case("erng_n64_fanout", 64, fanout_seconds, mid)
        # The acceptance bar for the envelope layer: >= 3x over per-wire.
        assert env_seconds * 3 <= legacy_seconds, (
            f"envelope path only {legacy_seconds / env_seconds:.2f}x faster"
        )


def test_engine_erb_n1024():
    """Honest ERB at the paper's N = 2^10 maximum (smoke: 128) on the
    sharded engine vs the serial envelope path — the Fig. 2/3 extreme
    point, with the v2 data plane's headline speedup recorded (and
    core-gate asserted) side by side."""
    n = pick(128, 1024, 1024)

    def run():
        result = run_erb(
            SimulationConfig(
                n=n, seed=24, workers=WORKERS, extra=_sched_extra()
            ),
            initiator=0,
            message=b"perf-1024",
        )
        assert result.rounds_executed == 2
        return result

    def serial():
        result = run_erb(
            SimulationConfig(n=n, seed=24, extra=_sched_extra()),
            initiator=0, message=b"perf-1024",
        )
        assert result.rounds_executed == 2
        return result

    repeats = 1 if SCALE == "smoke" else 2
    with maybe_profile(f"erb_n{n}_parallel"):
        seconds, result = _time_best(run, repeats=repeats)
    ser_seconds, ser = _time_best(serial, repeats=repeats)
    assert result.traffic.messages_sent == 2 * n * (n - 1)

    # Sharding may only change wall time, never the observables.
    assert result.outputs == ser.outputs
    assert result.halted == ser.halted
    assert dict(result.traffic.bytes_by_round) == dict(ser.traffic.bytes_by_round)
    assert result.traffic.bytes_sent == ser.traffic.bytes_sent

    _record_engine_case(f"erb_n{n}", n, seconds, result)
    _record_engine_case(f"erb_n{n}_serial", n, ser_seconds, ser)
    cores = os.cpu_count() or 1
    if SCALE != "smoke" and WORKERS >= 2 and cores >= 2:
        # The v2 acceptance bar: >= 2x at workers >= 2 on a multicore
        # host (physically impossible on fewer cores, hence the gate).
        assert seconds * 2 <= ser_seconds, (
            f"parallel ERB N={n} only {ser_seconds / seconds:.2f}x faster "
            f"({WORKERS} workers on {cores} cores)"
        )


def test_engine_erb_n8192_feasibility():
    """Honest ERB at N = 2^13 — eight times the paper's maximum — on the
    sharded v2 engine.  Full scale only: the point is feasibility (the
    run completes and its ledger is exact), not a timing bar."""
    if SCALE != "full":
        pytest.skip("N=8192 feasibility case runs at full scale only")
    n = 8192

    def run():
        result = run_erb(
            SimulationConfig(
                n=n, seed=26, workers=WORKERS, extra=_sched_extra()
            ),
            initiator=0,
            message=b"perf-8192",
        )
        assert result.rounds_executed == 2
        return result

    with maybe_profile(f"erb_n{n}_parallel"):
        seconds, result = _time_best(run, repeats=1)
    assert result.traffic.messages_sent == 2 * n * (n - 1)
    _record_engine_case(f"erb_n{n}", n, seconds, result)


def test_engine_erng_n64_parallel_vs_serial():
    """Sharded engine vs the serial envelope path on the same seeded
    honest ERNG run at N = 64: byte-identical observables, wall-clock
    recorded side by side, and ``parallel_speedup_vs_serial`` appended to
    the BENCH_engine.json history.

    The speedup floor only applies where it is physically meaningful:
    a host with fewer cores than workers cannot speed anything up, which
    is why history entries carry the machine stamp (cpu_count, workers).
    """

    def parallel():
        return run_erng(SimulationConfig(
            n=64, seed=21, workers=WORKERS, extra=_sched_extra()
        ))

    def serial():
        return run_erng(SimulationConfig(n=64, seed=21, extra=_sched_extra()))

    repeats = 1 if SCALE == "smoke" else 3
    with maybe_profile("erng_n64_parallel"):
        par_seconds, par = _time_best(parallel, repeats=repeats)
    ser_seconds, ser = _time_best(serial, repeats=repeats)

    # The mandatory equivalence: sharding may only change wall time.
    assert par.outputs == ser.outputs
    assert par.halted == ser.halted
    assert par.decided_rounds == ser.decided_rounds
    assert dict(par.traffic.bytes_by_round) == dict(ser.traffic.bytes_by_round)
    assert par.traffic.messages_sent == ser.traffic.messages_sent == 516096
    assert par.traffic.bytes_sent == ser.traffic.bytes_sent
    assert par.traffic.envelopes_sent == ser.traffic.envelopes_sent
    assert par.traffic.envelope_bytes_sent == ser.traffic.envelope_bytes_sent

    _record_engine_case("erng_n64_parallel", 64, par_seconds, par)
    _record_engine_case("erng_n64_serial", 64, ser_seconds, ser)
    cores = os.cpu_count() or 1
    if SCALE != "smoke" and WORKERS >= 2 and cores >= 2:
        # Any multicore host must beat serial outright on ERNG N=64
        # (the v2 acceptance bar for the fine-grained workload)...
        assert par_seconds < ser_seconds, (
            f"parallel path slower than serial: {par_seconds:.3f}s vs "
            f"{ser_seconds:.3f}s ({WORKERS} workers on {cores} cores)"
        )
    if SCALE != "smoke" and cores >= WORKERS:
        # ...and >= 2x with a full complement of cores.
        assert par_seconds * 2 <= ser_seconds, (
            f"parallel path only {ser_seconds / par_seconds:.2f}x faster "
            f"({WORKERS} workers on {cores} cores)"
        )


def test_engine_erng_opt_n4096():
    """The optimized ERNG at N = 4096 — four times the paper's maximum —
    on the serial path with the sparse active-set scheduler (auto).  The
    CI scaling smoke runs exactly this case: it must stay feasible at
    smoke scale, which is why N is not scaled down."""
    n = 4096

    def run():
        result = run_optimized_erng(
            SimulationConfig(n=n, t=n // 3, seed=30, extra=_sched_extra()),
            cluster=ClusterConfig(),
        )
        assert len(set(result.outputs.values())) == 1
        return result

    repeats = 1 if SCALE == "smoke" else 2
    with maybe_profile(f"erng_opt_n{n}"):
        seconds, result = _time_best(run, repeats=repeats)
    _record_engine_case(f"erng_opt_n{n}", n, seconds, result)


class _ClusterChatterProgram(EnclaveProgram):
    """A K-member cluster rings messages inside an otherwise idle
    network: the workload shape the active-set scheduler exists for
    (optimized-ERNG committees, sampled gossip).  Idle nodes sleep until
    the final round, where every node accepts."""

    PROGRAM_NAME = "bench-chatter"
    SPARSE_AWARE = True

    def __init__(self, node_id, members, rounds):
        super().__init__()
        self.node_id = node_id
        self.members = members
        self.rounds = rounds
        self.chatty = node_id in members
        if self.chatty:
            index = members.index(node_id)
            self.next_member = members[(index + 1) % len(members)]

    def on_round_begin(self, ctx):
        if self.chatty and ctx.round <= self.rounds:
            ctx.multicast(
                ProtocolMessage(
                    MessageType.ECHO, 0, 1, b"chat", 0, "bench-chatter"
                ),
                targets=[self.next_member],
                expect_acks=False,
            )

    def on_round_end(self, ctx):
        if ctx.round >= self.rounds and not self.has_output:
            self._accept(ctx, b"done")

    def sparse_wake_round(self, rnd):
        if self.has_output:
            return None
        return rnd + 1 if self.chatty else max(rnd + 1, self.rounds)


def test_engine_round_loop_n4096_sparse_vs_dense():
    """The sparse scheduler's headline number: a 24-member cluster
    chatters for R rounds inside N = 4096 nodes.  Message work is
    identical either way, so the wall-time ratio isolates the round
    loop; sparse must be >= 3x dense outside smoke (it skips ~99% of
    the per-round node visits).  Observables must be byte-equal."""
    n = 4096
    rounds = pick(16, 128, 128)
    members = tuple(range(0, n, n // 24))

    def run(scheduler):
        config = SimulationConfig(
            n=n, seed=33, extra={"scheduler": scheduler}
        )
        network = SynchronousNetwork(
            config, lambda i: _ClusterChatterProgram(i, members, rounds)
        )
        return network.run(max_rounds=rounds + 1)

    repeats = 1 if SCALE == "smoke" else 3
    sparse_seconds, sparse = _time_best(lambda: run("sparse"), repeats=repeats)
    dense_seconds, dense = _time_best(lambda: run("dense"), repeats=repeats)

    # The mandatory equivalence: scheduling may only change wall time.
    assert sparse.outputs == dense.outputs
    assert sparse.halted == dense.halted
    assert sparse.decided_rounds == dense.decided_rounds
    assert sparse.traffic.messages_sent == dense.traffic.messages_sent
    assert sparse.traffic.bytes_sent == dense.traffic.bytes_sent
    assert sparse.rounds_executed == dense.rounds_executed == rounds

    _record_engine_case(f"round_loop_n{n}_sparse", n, sparse_seconds, sparse)
    _record_engine_case(f"round_loop_n{n}_dense", n, dense_seconds, dense)
    if SCALE != "smoke":
        assert sparse_seconds * 3 <= dense_seconds, (
            f"sparse round loop only "
            f"{dense_seconds / sparse_seconds:.2f}x faster than dense"
        )


def test_engine_pb_erb_n16384():
    """pb-ERB at N = 2^14 — sixteen times the paper's maximum.  Full
    scale only: the point is that the sampled broadcast completes with
    O(N log N) recorded link crossings (deterministic ERB's O(N^2) ledger
    would be 268M messages here; the samples make it ~1.4M)."""
    if SCALE != "full":
        pytest.skip("N=16384 pb-ERB case runs at full scale only")
    import math

    n = 16384
    pb = PbErbConfig()

    def run():
        result = run_pb_erb(
            SimulationConfig(n=n, t=n // 4, seed=40, extra=_sched_extra()),
            initiator=0,
            message=b"pb-16384",
        )
        assert result.rounds_executed <= pb.resolved_round_bound(n)
        return result

    with maybe_profile(f"pb_erb_n{n}"):
        seconds, result = _time_best(run, repeats=1)
    delivered = sum(1 for v in result.outputs.values() if v == b"pb-16384")
    # Integrity is sure; delivery is ε-probabilistic — allow the tail.
    assert all(v in (None, b"pb-16384") for v in result.outputs.values())
    assert delivered >= int(n * 0.99)
    assert result.traffic.messages_sent <= 8 * n * math.log2(n)
    _record_engine_case(f"pb_erb_n{n}", n, seconds, result)


class _PerfProgram(EnclaveProgram):
    PROGRAM_NAME = "perf-channel"


def test_full_channel_roundtrip(benchmark):
    rng = DeterministicRNG("perf")
    clock = SimulationClock()
    authority = AttestationAuthority(rng)
    a = Enclave(0, _PerfProgram(), rng, clock, authority)
    b = Enclave(1, _PerfProgram(), rng, clock, authority)
    channel = SecureChannel.establish(a, b, ChannelSecurity.FULL, MODP_768)
    message = ProtocolMessage(
        MessageType.ECHO, 0, 1, b"x" * 64, 1, "perf"
    )

    def roundtrip():
        wire = channel.write(0, message, a.rdrand.rng(), a.measurement)
        return channel.read(1, wire)

    received = benchmark.pedantic(roundtrip, rounds=50, iterations=10)
    assert received.payload == b"x" * 64


def test_noop_tracer_overhead():
    """A tracer with only inactive sinks must cost (nearly) nothing.

    Compares min-of-5 wall times of the same ERB run with the default
    NULL_TRACER against an explicit ``Tracer(NullSink())``; the engine
    short-circuits on ``tracer.enabled`` so the delta should be noise.
    The bound is <5% plus a 10 ms absolute floor to keep tiny-denominator
    jitter from flaking the suite.  Skipped at smoke scale (the CI perf
    smoke step is deliberately non-timing).
    """
    if SCALE == "smoke":
        pytest.skip("timing comparison skipped at smoke scale")

    def run(tracer=None):
        result = run_erb(
            SimulationConfig(n=48, seed=20, tracer=tracer),
            initiator=0,
            message=b"perf",
        )
        assert result.rounds_executed == 2
        return result

    def timed(tracer_factory):
        best = float("inf")
        for _ in range(5):
            tracer = tracer_factory()
            t0 = perf_counter()
            run(tracer)
            best = min(best, perf_counter() - t0)
        return best

    run()  # warm-up: imports, allocator, branch caches
    base = timed(lambda: None)
    noop = timed(lambda: Tracer(NullSink()))
    assert noop <= base * 1.05 + 0.01, (
        f"no-op tracer overhead too high: {noop:.4f}s vs {base:.4f}s baseline"
    )
