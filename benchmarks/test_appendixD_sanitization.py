"""Appendix D — network sanitization: Monte-Carlo churn trajectories vs
the closed forms, plus Theorem D.1's confidence bound at the paper's own
parameters (N = 2^10, p = 2^-5, λ = 30 → r ≈ 2500)."""

from __future__ import annotations


from bench_common import pick, print_table, save_results

from repro.common.rng import DeterministicRNG
from repro.core.sanitization import SanitizationModel


def _measure():
    t = pick(smoke=63, default=255, full=511)
    p = 2**-5
    model = SanitizationModel(t=t, p=p)
    horizon = pick(smoke=400, default=1500, full=3000)
    trials = pick(smoke=50, default=200, full=400)
    mean = model.monte_carlo_mean(
        instances=horizon, trials=trials, rng=DeterministicRNG("appD")
    )
    checkpoints = [0] + [horizon * k // 6 for k in range(1, 7)]
    rows = [
        {
            "r": r,
            "closed_form": model.expected_faulty_after(r),
            "monte_carlo": mean[r],
            "markov_bound": model.prob_any_faulty_bound(r),
        }
        for r in checkpoints
    ]
    r_for_lambda30 = SanitizationModel(t=511, p=p).instances_for_confidence(30.0)

    # End-to-end: the same contraction measured on *real* repeated ERB
    # instances via the ChurnDriver (no replacement: q = 0).
    from repro.common.config import SimulationConfig
    from repro.core.churn import ChurnDriver

    e2e_n = pick(smoke=9, default=15, full=21)
    e2e_byz = list(range(1, (e2e_n - 1) // 2 + 1))
    e2e_p = 0.4
    driver = ChurnDriver(
        SimulationConfig(n=e2e_n, seed=14),
        byzantine=e2e_byz,
        misbehave_p=e2e_p,
        seed=14,
    )
    e2e_instances = pick(smoke=8, default=20, full=30)
    report = driver.run(e2e_instances)
    e2e_model = SanitizationModel(
        t=len(e2e_byz), p=e2e_p, replacement_byzantine_p=0.0
    )
    return {
        "t": t,
        "p": p,
        "trials": trials,
        "rows": rows,
        "r_for_lambda30": r_for_lambda30,
        "e2e": {
            "n": e2e_n,
            "byzantine": len(e2e_byz),
            "p": e2e_p,
            "live_byzantine": report.live_byzantine,
            "expected": [
                e2e_model.expected_faulty_after(r)
                for r in range(1, e2e_instances + 1)
            ],
            "agreements": report.agreements_held,
            "instances": report.instances,
            "sanitized_at": report.sanitized_at,
        },
    }


def test_appendix_d_sanitization(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = data["rows"]

    print_table(
        f"Appendix D — churn of t={data['t']} byzantine nodes, p=1/32 "
        f"({data['trials']} Monte-Carlo trials)",
        ["instances r", "E[F_r] closed form", "MC mean", "Pr[F_r>=1] bound"],
        [
            (r["r"], r["closed_form"], r["monte_carlo"], r["markov_bound"])
            for r in rows
        ],
    )
    print(
        f"\npaper example: t=511, lambda=30 -> r = {data['r_for_lambda30']} "
        "instances (paper's estimate: ~2500)"
    )
    e2e = data["e2e"]
    print(
        f"\nend-to-end (real ERB instances, N={e2e['n']}, "
        f"{e2e['byzantine']} byzantine, p={e2e['p']}):"
    )
    print(f"  live byzantine per instance: {e2e['live_byzantine']}")
    print(
        f"  closed-form expectation:     "
        f"{[round(x, 2) for x in e2e['expected'][:len(e2e['live_byzantine'])]]}"
    )
    print(
        f"  agreement held in {e2e['agreements']}/{e2e['instances']} "
        f"instances; sanitized at instance {e2e['sanitized_at']}"
    )
    save_results("appendixD_sanitization", data)

    # End-to-end protocol behaviour matches the abstract process: the
    # live-byzantine count is non-increasing and agreement never breaks.
    live = e2e["live_byzantine"]
    assert live == sorted(live, reverse=True)
    assert e2e["agreements"] == e2e["instances"]

    # Monte Carlo tracks the closed form.
    for r in rows:
        if r["closed_form"] >= 1.0:
            assert abs(r["monte_carlo"] - r["closed_form"]) <= max(
                2.0, 0.15 * r["closed_form"]
            )

    # Strictly decaying expectation; the bound reaches e^-lambda at the
    # paper's r.
    values = [r["closed_form"] for r in rows]
    assert values == sorted(values, reverse=True)
    assert 2200 <= data["r_for_lambda30"] <= 2600