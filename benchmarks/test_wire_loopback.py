"""Loopback wire suite: soak, latency distributions, calibration.

Unlike every other benchmark module this one measures **real sockets**:
N-node loopback clusters (`repro.net.wire`) running ERB/ERNG/beacon over
TCP.  Wall-clock numbers here are kernel + scheduler quantities, so the
persisted rows are stamped ``transport="tcp"`` and never enter the
simulated bench history — the bench gate refuses to cross-compare them
by construction (see :func:`repro.obs.bench.entries_comparable`).

Three jobs:

* **soak** — repeated cluster runs and a multi-epoch beacon chain; every
  run must decide on every node and verify its hash chain (flushing out
  port/lifecycle leaks that single runs hide);
* **latency distribution** — per-round wall and per-barrier wait
  histograms (p50/p95/max), the numbers the simulator cannot express;
* **calibration** — fit the simulator's ``wall = latency + bytes/bw``
  round model to measured rounds and persist the fit + RMS residual
  (quoted by EXPERIMENTS.md's measured-vs-modeled table).
"""

from __future__ import annotations

from bench_common import METRICS, SCALE, machine_stamp, pick, save_results

from repro.apps.beacon import RandomBeacon
from repro.net.wire import (
    calibrate_from_results,
    cluster_configs,
    fit_round_model,
    run_cluster,
)

_ROWS: dict = {}


def _persist() -> None:
    save_results(
        "wire_loopback",
        {
            "machine": machine_stamp(transport="tcp"),
            "scale": SCALE,
            "cases": dict(_ROWS),
        },
    )


def _histogram_row(histogram) -> dict:
    return {
        "p50_ms": round(histogram.p50 * 1e3, 3),
        "p95_ms": round(histogram.p95 * 1e3, 3),
        "max_ms": round(histogram.max * 1e3, 3),
    }


def test_wire_erb_soak():
    """Back-to-back clusters must all decide — no leaked ports, tasks
    or sockets across runs."""
    n = pick(5, 9, 17)
    runs = pick(3, 8, 15)
    wall = METRICS.histogram("wire.erb_cluster_wall_s")
    for seed in range(runs):
        result = run_cluster(
            cluster_configs(n, "erb", seed=seed, message=b"soak")
        )
        assert sorted(result.outputs) == list(range(n)), f"seed {seed}"
        assert result.halted == []
        wall.observe(result.wall_seconds)
    _ROWS["wire_erb_soak"] = {
        "n": n,
        "runs": runs,
        "cluster_wall": _histogram_row(wall),
    }
    _persist()


def test_wire_beacon_chain_soak():
    """One long-lived cluster chains many epochs; the chain verifies and
    per-epoch latency is bounded by the round walls, not timeouts."""
    n = pick(5, 5, 9)
    epochs = pick(4, 16, 64)
    result = run_cluster(cluster_configs(n, "beacon", seed=1, epochs=epochs))
    assert len(result.records) == epochs
    assert RandomBeacon.verify_chain(result.records)
    report = result.reports[0]
    epoch_ms = result.wall_seconds / epochs * 1e3
    _ROWS["wire_beacon_soak"] = {
        "n": n,
        "epochs": epochs,
        "wall_seconds": round(result.wall_seconds, 4),
        "ms_per_epoch": round(epoch_ms, 3),
        "bytes_sent_node0": report.stats.total_bytes_sent,
    }
    _persist()


def test_wire_round_latency_distribution():
    """The latency-distribution numbers the simulator can't express:
    real per-round wall and per-barrier wait quantiles over TCP."""
    n = pick(5, 9, 17)
    runs = pick(3, 6, 10)
    round_wall = METRICS.histogram("wire.round_wall_s")
    barrier_wait = METRICS.histogram("wire.barrier_wait_s")
    for seed in range(runs):
        result = run_cluster(cluster_configs(n, "erng", seed=seed))
        for report in result.reports.values():
            for sample in report.stats.round_wall_s.dump()["samples"]:
                round_wall.observe(sample)
            for sample in report.stats.barrier_wait_s.dump()["samples"]:
                barrier_wait.observe(sample)
    assert round_wall.max > 0.0 and barrier_wait.max >= 0.0
    # Loopback rounds complete in milliseconds; anything near the 10 s
    # ejection timeout means barrier logic regressed into timeout-waits.
    assert round_wall.p95 < 5.0
    _ROWS["wire_round_latency"] = {
        "n": n,
        "runs": runs,
        "round_wall": _histogram_row(round_wall),
        "barrier_wait": _histogram_row(barrier_wait),
    }
    _persist()


def test_wire_calibration_fit():
    """Fit the simulator's round model against measured rounds across
    sizes (varying N varies bytes/round, identifying the bandwidth term)
    and persist the measured-vs-modeled table."""
    sizes = pick((3, 5), (3, 5, 9), (3, 5, 9, 17))
    results = []
    per_size = {}
    for n in sizes:
        result = run_cluster(
            cluster_configs(n, "erng", seed=4)
        )
        results.append(result)
        samples = result.round_samples
        per_size[n] = {
            "rounds": len(samples),
            "bytes_per_round": round(
                sum(b for b, _ in samples) / max(len(samples), 1)
            ),
            "measured_ms_per_round": round(
                sum(w for _, w in samples) / max(len(samples), 1) * 1e3, 3
            ),
        }
    fit = calibrate_from_results(results)
    assert fit.samples == sum(len(r.round_samples) for r in results)
    assert fit.latency_s >= 0.0
    for n, row in per_size.items():
        if fit.bandwidth_bytes_per_s is not None:
            modeled = fit.latency_s + (
                row["bytes_per_round"] / fit.bandwidth_bytes_per_s
            )
        else:
            modeled = fit.latency_s
        row["modeled_ms_per_round"] = round(modeled * 1e3, 3)
    _ROWS["wire_calibration"] = {
        "fit": fit.to_json_dict(),
        "per_size": per_size,
    }
    _persist()


def test_wire_fit_is_exact_on_model_data():
    """Sanity anchor for the fitter itself, scale-independent."""
    fit = fit_round_model(
        [(b, 0.0015 + b / 2e6) for b in (500, 2_000, 8_000, 32_000)]
    )
    assert abs(fit.latency_s - 0.0015) < 1e-12
    assert abs(fit.bandwidth_bytes_per_s - 2e6) < 1e-3
    assert fit.residual_s < 1e-12
