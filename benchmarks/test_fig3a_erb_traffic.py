"""Fig. 3a — ERB network traffic (MB) vs network size, Ex vs Th.

Paper: traffic grows quadratically (INIT ~100 B, ACK ~80 B; 277 MB at
N = 1024) and the experimental curve matches the theoretical one.  We
sweep the same sizes and compare measured bytes against
``analysis.complexity.erb_bytes_honest``.
"""

from __future__ import annotations

from bench_common import growth_exponent, pick, powers_of_two, print_table, save_results

from repro import SimulationConfig, run_erb
from repro.analysis.complexity import erb_bytes_honest, erb_messages_honest

_MB = 1024.0 * 1024.0


def _sweep():
    sizes = pick(
        smoke=powers_of_two(4, 32),
        default=powers_of_two(4, 512),
        full=powers_of_two(4, 1024),
    )
    rows = []
    for n in sizes:
        result = run_erb(
            SimulationConfig(n=n, seed=4), initiator=0,
            message=(0xDEADBEEF).to_bytes(16, "big"),
        )
        rows.append(
            {
                "n": n,
                "messages": result.traffic.messages_sent,
                "th_messages": erb_messages_honest(n),
                "ex_mb": result.traffic.bytes_sent / _MB,
                "th_mb": erb_bytes_honest(n) / _MB,
            }
        )
    return rows


def test_fig3a_erb_traffic(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_table(
        "Fig 3a — ERB traffic vs N (Ex = measured, Th = closed form)",
        ["N", "msgs (Ex)", "msgs (Th)", "MB (Ex)", "MB (Th)"],
        [
            (r["n"], r["messages"], r["th_messages"], r["ex_mb"], r["th_mb"])
            for r in rows
        ],
    )
    save_results("fig3a_erb_traffic", {"rows": rows})

    # Message counts match the structural formula *exactly*.
    for r in rows:
        assert r["messages"] == r["th_messages"]

    # Byte counts match Th within the calibration slack.
    for r in rows:
        assert 0.5 < r["ex_mb"] / r["th_mb"] < 2.0

    # Quadratic scaling: empirical log-log slope ~2.
    slope = growth_exponent(
        [r["n"] for r in rows], [r["ex_mb"] for r in rows]
    )
    assert 1.8 < slope < 2.2

    # Paper headline: 277 MB at N = 1024 — same decade.
    top = rows[-1]
    if top["n"] == 1024:
        assert 90 < top["ex_mb"] < 600
