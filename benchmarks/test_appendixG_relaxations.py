"""Appendix G — relaxing the model assumptions, measured.

* **S5 (full connectivity)** — the paper: "the direct point-to-point
  broadcast ... can be replaced with a flooding algorithm" on a sparse
  expander.  We run Flood-ERB on random 4-regular expanders vs the full
  mesh: validity holds on both; rounds grow by ~the diameter; per-node
  fan-out drops from N-1 to the constant degree.
* **S1 (fixed network size)** — the sketched join protocol: every
  join/leave is ERB-announced; all honest directories stay identical
  through a churn sequence.
"""

from __future__ import annotations

from bench_common import pick, print_table, save_results

from repro import SimulationConfig
from repro.common.rng import DeterministicRNG
from repro.core.flooding import run_flood_erb
from repro.net.membership import MembershipService
from repro.net.topology import Topology

_MB = 1024.0 * 1024.0


def _flooding_sweep():
    sizes = pick(smoke=[8, 16], default=[16, 32, 64], full=[16, 32, 64, 128])
    rows = []
    for n in sizes:
        mesh = run_flood_erb(
            SimulationConfig(n=n, seed=12), Topology.full_mesh(n), 0, b"g"
        )
        expander = Topology.random_regular(n, 4, DeterministicRNG(("exp", n)))
        sparse = run_flood_erb(
            SimulationConfig(n=n, seed=12), expander, 0, b"g"
        )
        assert set(mesh.outputs.values()) == {b"g"}
        assert set(sparse.outputs.values()) == {b"g"}
        rows.append(
            {
                "n": n,
                "mesh_rounds": mesh.rounds_executed,
                "mesh_mb": mesh.traffic.bytes_sent / _MB,
                "expander_rounds": sparse.rounds_executed,
                "expander_mb": sparse.traffic.bytes_sent / _MB,
                "expander_degree": 4,
            }
        )
    return rows


def _membership_churn():
    service = MembershipService(initial_members=8, seed=13)
    events = pick(smoke=4, default=10, full=20)
    joined = []
    for index in range(events):
        if index % 3 == 2 and len(service.members) > 4 and joined:
            service.leave(joined.pop(0))
        else:
            sponsor = service.members[index % len(service.members)]
            joined.append(service.join(sponsor))
        assert service.views_consistent()
    return {
        "events": events,
        "final_size": len(service.members),
        "consistent": service.views_consistent(),
    }


def test_appendix_g_flooding(benchmark):
    rows = benchmark.pedantic(_flooding_sweep, rounds=1, iterations=1)
    print_table(
        "Appendix G / S5 — Flood-ERB: full mesh vs 4-regular expander",
        ["N", "mesh rounds", "mesh MB", "expander rounds", "expander MB"],
        [
            (r["n"], r["mesh_rounds"], r["mesh_mb"], r["expander_rounds"],
             r["expander_mb"])
            for r in rows
        ],
    )
    save_results("appendixG_flooding", {"rows": rows})
    for r in rows:
        # Mesh floods settle in 2 rounds; expanders add ~diameter rounds
        # but stay logarithmic, far below the t+2 deadline.
        assert r["mesh_rounds"] == 2
        assert 2 < r["expander_rounds"] <= 2 + 2 * (r["n"].bit_length())


def test_appendix_g_membership(benchmark):
    data = benchmark.pedantic(_membership_churn, rounds=1, iterations=1)
    print()
    print(
        f"Appendix G / S1 — dynamic membership: {data['events']} ERB-announced "
        f"join/leave events, final size {data['final_size']}, all honest "
        f"views consistent: {data['consistent']}"
    )
    save_results("appendixG_membership", data)
    assert data["consistent"]
