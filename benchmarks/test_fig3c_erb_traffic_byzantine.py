"""Fig. 3c — ERB traffic vs byzantine fraction.

Paper (N = 512): traffic *decreases* as the byzantine fraction grows —
halt-on-divergence ejects misbehaving nodes, which then neither relay nor
acknowledge (69 MB honest vs 35 MB at f = N/4: ~50 % less).
"""

from __future__ import annotations

from bench_common import pick, print_table, save_results

from repro import SimulationConfig, run_erb
from repro.adversary import chain_delay_strategy

_MB = 1024.0 * 1024.0


def _network_size() -> int:
    return pick(smoke=32, default=128, full=512)


def _sweep():
    n = _network_size()
    t = (n - 1) // 2
    rows = []
    denominators = []
    denom = n // 2
    while denom >= 4:
        denominators.append(denom)
        denom //= 2
    honest = run_erb(SimulationConfig(n=n, t=t, seed=6), 0, b"fig3c")
    rows.append(
        {"fraction": "0", "f": 0, "ex_mb": honest.traffic.bytes_sent / _MB,
         "halted": 0}
    )
    for denom in denominators:
        f = n // denom
        behaviors = chain_delay_strategy(list(range(f)), honest_target=f)
        result = run_erb(
            SimulationConfig(n=n, t=t, seed=6),
            initiator=0,
            message=b"fig3c",
            behaviors=behaviors,
        )
        rows.append(
            {
                "fraction": f"1/{denom}",
                "f": f,
                "ex_mb": result.traffic.bytes_sent / _MB,
                "halted": len(result.halted),
            }
        )
    return rows


def test_fig3c_erb_traffic_byzantine(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    n = _network_size()

    print_table(
        f"Fig 3c — ERB traffic vs byzantine fraction (N = {n})",
        ["byz fraction", "f", "traffic (MB)", "nodes ejected"],
        [(r["fraction"], r["f"], r["ex_mb"], r["halted"]) for r in rows],
    )
    save_results("fig3c_erb_traffic_byzantine", {"n": n, "rows": rows})

    # Every byzantine node was ejected (they fed the chain, lost ACKs).
    for r in rows:
        assert r["halted"] == r["f"]

    # Monotone decrease: more ejections, less traffic.
    traffic = [r["ex_mb"] for r in rows]
    assert traffic == sorted(traffic, reverse=True)

    # Paper magnitude: a substantial cut at f = N/4 (they report ~50 %;
    # ours is ~(1 - f/N)^2 per the quadratic echo/ack structure).
    cut = 1.0 - rows[-1]["ex_mb"] / rows[0]["ex_mb"]
    assert cut > 0.3
