"""Fig. 2b — ERNG termination time vs network size (honest case).

Paper: termination stays roughly constant for small N (2^2..2^7) and then
climbs once the (near-)cubic traffic of the unoptimized protocol floods
the shared link.  We reproduce both regimes: constant-round honest
termination plus the bandwidth-driven climb on a tight link.
"""

from __future__ import annotations

from bench_common import pick, powers_of_two, print_table, save_results

from repro import ClusterConfig, SimulationConfig, run_erng, run_optimized_erng

TIGHT_LINK = 4 * 1024 * 1024  # bytes/s — shifts the climb into our sweep


def _sweep():
    sizes = pick(
        smoke=powers_of_two(4, 16),
        default=powers_of_two(4, 64),
        full=powers_of_two(4, 128),
    )
    rows = []
    for n in sizes:
        unopt = run_erng(SimulationConfig(n=n, seed=2))
        unopt_tight = run_erng(
            SimulationConfig(n=n, seed=2, bandwidth_bytes_per_s=TIGHT_LINK)
        )
        opt = run_optimized_erng(
            SimulationConfig(n=n, t=n // 3, seed=2),
            cluster=ClusterConfig(mode="fixed_fraction"),
        )
        assert len(set(unopt.outputs.values())) == 1
        assert len(set(opt.outputs.values())) == 1
        rows.append(
            {
                "n": n,
                "unopt_rounds": unopt.rounds_executed,
                "unopt_s": unopt.termination_seconds,
                "unopt_tight_s": unopt_tight.termination_seconds,
                "opt_rounds": opt.rounds_executed,
                "opt_s": opt.termination_seconds,
                "unopt_mb": unopt.traffic.megabytes_sent,
            }
        )
    return rows


def test_fig2b_erng_termination(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_table(
        "Fig 2b — ERNG honest termination (simulated seconds)",
        ["N", "ERNG-0 rounds", "ERNG-0 (s)", "ERNG-0 (s), 4MB/s link",
         "ERNG-1 rounds", "ERNG-1 (s)", "ERNG-0 traffic (MB)"],
        [
            (r["n"], r["unopt_rounds"], r["unopt_s"], r["unopt_tight_s"],
             r["opt_rounds"], r["opt_s"], r["unopt_mb"])
            for r in rows
        ],
    )
    save_results("fig2b_erng_termination", {"rows": rows})

    # Constant honest termination on an unconstrained link (all ERB
    # instances settle in 2 rounds; the optimized version in <= 5).
    assert len({r["unopt_s"] for r in rows}) == 1
    assert all(r["unopt_rounds"] == 2 for r in rows)
    assert all(r["opt_rounds"] <= 5 for r in rows)

    # The climb: cubic traffic through a tight link stretches rounds at
    # the top of the sweep but not at the bottom (the paper's shape).
    assert rows[0]["unopt_tight_s"] == rows[0]["unopt_s"]
    assert rows[-1]["unopt_tight_s"] > rows[-1]["unopt_s"]
