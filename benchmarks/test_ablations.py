"""Ablation benches for the design choices DESIGN.md §5 calls out.

* **Halt-on-divergence (P4) on/off** — Section 4.2 claims active
  self-detection cuts anomaly-detection cost and "sanitizes" the network;
  with P4 disabled (ACK threshold 0) misbehaving nodes linger and keep
  consuming bandwidth.
* **ACK threshold sweep** — the resilience/efficiency trade-off around
  Algorithm 2's ``N_ack < t`` rule.
* **Channel fidelity** — FULL (real crypto) and MODELED channels must
  produce identical protocol behaviour (same rounds, same message
  counts); only wire bytes and wall-clock differ.
"""

from __future__ import annotations

import time

from bench_common import pick, print_table, save_results

from repro import ChannelSecurity, SimulationConfig, run_erb
from repro.adversary import chain_delay_strategy

_MB = 1024.0 * 1024.0


def _p4_ablation():
    n = pick(smoke=16, default=64, full=128)
    t = (n - 1) // 2
    f = n // 4
    rows = []
    for label, threshold in (("P4 on (threshold=t)", None), ("P4 off (threshold=0)", 0)):
        config = SimulationConfig(
            n=n, t=t, seed=9,
            ack_threshold=t if threshold is None else threshold,
        )
        behaviors = chain_delay_strategy(list(range(f)), honest_target=f)
        result = run_erb(config, initiator=0, message=b"abl", behaviors=behaviors)
        rows.append(
            {
                "variant": label,
                "rounds": result.rounds_executed,
                "ejected": len(result.halted),
                "messages": result.traffic.messages_sent,
                "mb": result.traffic.bytes_sent / _MB,
            }
        )
    return {"n": n, "f": f, "rows": rows}


def test_ablation_halt_on_divergence(benchmark):
    data = benchmark.pedantic(_p4_ablation, rounds=1, iterations=1)
    rows = data["rows"]
    print_table(
        f"Ablation — halt-on-divergence under a chain of f={data['f']} "
        f"delayers (N={data['n']})",
        ["variant", "rounds", "nodes ejected", "messages", "MB"],
        [
            (r["variant"], r["rounds"], r["ejected"], r["messages"], r["mb"])
            for r in rows
        ],
    )
    save_results("ablation_p4", data)
    with_p4, without_p4 = rows
    assert with_p4["ejected"] == data["f"]
    assert without_p4["ejected"] == 0
    # Ejected nodes stop echoing and ACKing: P4 saves traffic.
    assert with_p4["messages"] < without_p4["messages"]


def _threshold_sweep():
    n = pick(smoke=9, default=17, full=33)
    t = (n - 1) // 2
    rows = []
    from repro.adversary import SelectiveOmission

    # The initiator omits to exactly half its peers: it collects exactly
    # t ACKs, sitting right on Algorithm 2's boundary.
    victims = set(range(1, n // 2 + 1))
    for threshold in (0, t // 2, t, t + 1):
        config = SimulationConfig(n=n, t=t, seed=10, ack_threshold=threshold)
        result = run_erb(
            config, initiator=0, message=b"thr",
            behaviors={0: SelectiveOmission(victims=victims)},
        )
        rows.append(
            {
                "threshold": threshold,
                "initiator_ejected": 0 in result.halted,
                "rounds": result.rounds_executed,
                "honest_agree": len(set(result.honest_outputs({0}).values())) == 1,
            }
        )
    return {"n": n, "t": t, "victims": len(victims), "rows": rows}


def test_ablation_ack_threshold(benchmark):
    data = benchmark.pedantic(_threshold_sweep, rounds=1, iterations=1)
    rows = data["rows"]
    print_table(
        f"Ablation — ACK threshold vs an initiator omitting to "
        f"{data['victims']} of {data['n'] - 1} peers",
        ["threshold", "initiator ejected", "rounds", "honest agree"],
        [
            (r["threshold"], r["initiator_ejected"], r["rounds"],
             r["honest_agree"])
            for r in rows
        ],
    )
    save_results("ablation_ack_threshold", data)
    # Agreement holds at every threshold (safety is threshold-independent);
    # only the ejection policy changes.
    assert all(r["honest_agree"] for r in rows)
    # A zero threshold never ejects; the strictest threshold does.
    assert not rows[0]["initiator_ejected"]
    assert rows[-1]["initiator_ejected"]


def _fidelity_comparison():
    n = pick(smoke=4, default=6, full=8)
    results = {}
    for label, security in (
        ("MODELED", ChannelSecurity.MODELED),
        ("FULL (real crypto)", ChannelSecurity.FULL),
    ):
        config = SimulationConfig(
            n=n, seed=11, channel_security=security,
            extra={"dh_group": "small"},
        )
        started = time.perf_counter()
        result = run_erb(config, initiator=0, message=b"fidelity")
        elapsed = time.perf_counter() - started
        results[label] = {
            "rounds": result.rounds_executed,
            "messages": result.traffic.messages_sent,
            "mb": result.traffic.bytes_sent / _MB,
            "wall_s": elapsed,
            "outputs": sorted(
                str(v) for v in set(result.outputs.values())
            ),
        }
    return {"n": n, "results": results}


def test_ablation_channel_fidelity(benchmark):
    data = benchmark.pedantic(_fidelity_comparison, rounds=1, iterations=1)
    results = data["results"]
    print_table(
        f"Ablation — channel fidelity at N={data['n']} (identical protocol "
        "behaviour, different cost)",
        ["channel", "rounds", "messages", "MB", "wall-clock (s)"],
        [
            (label, r["rounds"], r["messages"], r["mb"], r["wall_s"])
            for label, r in results.items()
        ],
    )
    save_results("ablation_channel_fidelity", data)
    modeled = results["MODELED"]
    full = results["FULL (real crypto)"]
    assert modeled["rounds"] == full["rounds"]
    assert modeled["messages"] == full["messages"]
    assert modeled["outputs"] == full["outputs"]
    assert full["mb"] > modeled["mb"]  # real AEAD framing is heavier
