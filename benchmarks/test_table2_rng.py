"""Table 2 — distributed RNG protocols compared.

Measured rounds and communication for the basic ERNG (O(N) rounds worst
case, O(N³) bits) and the optimized ERNG (O(log N) rounds, O(N log N)
bits with sampled clusters).  The asymptotic paper rows print alongside.
"""

from __future__ import annotations

import math

from bench_common import growth_exponent, pick, print_table, save_results

from repro import ClusterConfig, SimulationConfig, run_erng, run_optimized_erng
from repro.adversary import DelayAdversary
from repro.analysis.complexity import TABLE2_FORMULAS

_MB = 1024.0 * 1024.0


def _measure():
    rows = []
    sizes = pick(
        smoke=[9, 18],
        default=[12, 24, 48],
        full=[12, 24, 48, 96],
    )
    for n in sizes:
        t = n // 3
        # Basic ERNG, worst case: one silent byzantine initiator forces
        # the full t+2 round deadline (O(N) rounds).
        basic = run_erng(
            SimulationConfig(n=n, t=t, seed=8),
            behaviors={1: DelayAdversary(n)},
        )
        rows.append(
            {
                "protocol": "Basic ERNG",
                "n": n,
                "rounds": basic.rounds_executed,
                "messages": basic.traffic.messages_sent,
                "mb": basic.traffic.bytes_sent / _MB,
            }
        )
        # Optimized ERNG with a sampled cluster, gamma = Θ(log N).
        gamma = max(4, math.ceil(math.log2(n)))
        opt = run_optimized_erng(
            SimulationConfig(n=n, t=t, seed=8, extra={"erng_early_stop": False}),
            cluster=ClusterConfig(mode="sampled", gamma=gamma),
        )
        rows.append(
            {
                "protocol": "Optimized ERNG",
                "n": n,
                "rounds": opt.rounds_executed,
                "messages": opt.traffic.messages_sent,
                "mb": opt.traffic.bytes_sent / _MB,
            }
        )
    return rows


def test_table2_rng_comparison(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_table(
        "Table 2 (measured) — RNG protocols (worst-case schedules)",
        ["protocol", "N", "rounds", "messages", "MB"],
        [
            (r["protocol"], r["n"], r["rounds"], r["messages"], r["mb"])
            for r in rows
        ],
    )
    print()
    print("Table 2 (paper, asymptotic):")
    for name, row in TABLE2_FORMULAS.items():
        print(
            f"  {name:<16} N>={row['network']:<5} rounds={row['rounds']:<10} "
            f"comm={row['comm']}"
        )
    save_results("table2_rng", {"rows": rows})

    basic = [r for r in rows if r["protocol"] == "Basic ERNG"]
    opt = [r for r in rows if r["protocol"] == "Optimized ERNG"]

    # Basic ERNG worst-case rounds are linear in N (t+2 with t = N/3).
    for r in basic:
        assert r["rounds"] == r["n"] // 3 + 2
    # Optimized ERNG rounds are gamma+5 = O(log N).
    for r in opt:
        gamma = max(4, math.ceil(math.log2(r["n"])))
        assert r["rounds"] == gamma + 5

    # Communication orders: basic ~ N^3, optimized far below it.
    slope_basic = growth_exponent(
        [r["n"] for r in basic], [r["messages"] for r in basic]
    )
    slope_opt = growth_exponent(
        [r["n"] for r in opt], [r["messages"] for r in opt]
    )
    assert slope_basic > 2.5
    assert slope_opt < slope_basic - 0.75
    # The paper notes the optimization "only applies when the network is
    # large enough": at tiny N the CHOSEN/FINAL overhead dominates, the
    # crossover sits just above it.
    for b, o in zip(basic, opt):
        if b["n"] >= 24:
            assert o["messages"] < b["messages"]
