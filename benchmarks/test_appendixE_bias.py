"""Appendix E / Theorem 5.1 — unbiasedness: β(ERNG) = 1.

Empirical reproduction: run many seeded instances of (a) the strawman XOR
beacon under the A4 look-ahead attacker and (b) ERNG under the same
attacker, and estimate the attacker's success rate at steering a
1/2-probability predicate plus the β estimator over the output samples.
Expected shape: strawman ≈ 3/4 steering (β ≈ 1.5 on that test), ERNG ≈
1/2 (β ≈ 1)."""

from __future__ import annotations

from bench_common import pick, print_table, save_results

from repro import SimulationConfig, run_erng, run_strawman_rng
from repro.adversary import LookaheadBiasAdversary
from repro.analysis.bias import empirical_bias
from repro.common.config import ChannelSecurity

K = 16
FAVOURABLE = staticmethod(lambda v: v & 1 == 0)


def _collect(runner, config_factory, trials):
    samples = []
    favourable_hits = 0
    for seed in range(trials):
        adversary = LookaheadBiasAdversary(0, lambda v: v & 1 == 0)
        result = runner(config_factory(seed), behaviors={0: adversary})
        honest = result.honest_outputs({0})
        value = next(iter(honest.values()))
        samples.append(value)
        favourable_hits += value & 1 == 0
    return samples, favourable_hits / trials


def _measure():
    trials = pick(smoke=40, default=150, full=400)
    n = 5
    strawman_samples, strawman_rate = _collect(
        run_strawman_rng,
        lambda seed: SimulationConfig(
            n=n, seed=seed, random_bits=K,
            channel_security=ChannelSecurity.NONE,
        ),
        trials,
    )
    erng_samples, erng_rate = _collect(
        run_erng,
        lambda seed: SimulationConfig(n=n, seed=seed, random_bits=K),
        trials,
    )
    return {
        "trials": trials,
        "strawman_rate": strawman_rate,
        "erng_rate": erng_rate,
        "strawman_beta": empirical_bias(strawman_samples, K),
        "erng_beta": empirical_bias(erng_samples, K),
    }


def test_appendix_e_unbiasedness(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_table(
        f"Appendix E — A4 look-ahead attacker steering an even-output "
        f"predicate ({data['trials']} runs each)",
        ["generator", "P(favourable)", "beta (bit0 test)", "beta (max)"],
        [
            ("strawman XOR beacon", f"{data['strawman_rate']:.2f}",
             data["strawman_beta"]["bit0"], data["strawman_beta"]["beta"]),
            ("ERNG", f"{data['erng_rate']:.2f}",
             data["erng_beta"]["bit0"], data["erng_beta"]["beta"]),
            ("theory: fair coin", "0.50", 1.0, 1.0),
            ("theory: strawman under A4", "0.75", 1.5, 1.5),
        ],
    )
    save_results("appendixE_bias", data)

    # Strawman: the attacker steers ~3/4 of outputs into its set.
    assert data["strawman_rate"] > 0.65
    assert data["strawman_beta"]["bit0"] > 1.3

    # ERNG: indistinguishable from fair.
    assert 0.35 < data["erng_rate"] < 0.65
    assert data["erng_beta"]["bit0"] < 1.3
