"""Fig. 2c — ERB termination time vs byzantine fraction.

Paper (N = 512): byzantine nodes form a worst-case delay chain — each
forwards the value to exactly one other byzantine node per round and is
then eliminated — so termination grows *linearly* with the byzantine
fraction, from 4 s honest to 389 s at f = N/4.
"""

from __future__ import annotations

from bench_common import pick, print_table, save_results

from repro import SimulationConfig, run_erb
from repro.adversary import chain_delay_strategy


def _network_size() -> int:
    return pick(smoke=32, default=128, full=512)


def _fractions():
    n = _network_size()
    fractions = []
    denom = n  # start at a single byzantine node (fraction 1/N)
    while denom >= 4:
        fractions.append(denom)
        denom //= 2
    return fractions  # denominators: f = n / denom


def _sweep():
    n = _network_size()
    t = (n - 1) // 2
    rows = []
    honest = run_erb(SimulationConfig(n=n, t=t, seed=3), 0, b"fig2c")
    rows.append(
        {
            "fraction": "0",
            "f": 0,
            "rounds": honest.rounds_executed,
            "termination_s": honest.termination_seconds,
            "mb": honest.traffic.megabytes_sent,
        }
    )
    for denom in _fractions():
        f = n // denom
        behaviors = chain_delay_strategy(list(range(f)), honest_target=f)
        result = run_erb(
            SimulationConfig(n=n, t=t, seed=3),
            initiator=0,
            message=b"fig2c",
            behaviors=behaviors,
        )
        honest_values = set(result.honest_outputs(set(range(f))).values())
        assert len(honest_values) == 1
        rows.append(
            {
                "fraction": f"1/{denom}",
                "f": f,
                "rounds": result.rounds_executed,
                "termination_s": result.termination_seconds,
                "mb": result.traffic.megabytes_sent,
            }
        )
    return rows


def test_fig2c_erb_byzantine_termination(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    n = _network_size()

    print_table(
        f"Fig 2c — ERB termination vs byzantine fraction (N = {n})",
        ["byz fraction", "f", "rounds", "termination (s)", "traffic (MB)"],
        [
            (r["fraction"], r["f"], r["rounds"], r["termination_s"], r["mb"])
            for r in rows
        ],
    )
    save_results("fig2c_erb_byzantine", {"n": n, "rows": rows})

    # Paper claim: rounds = min{f+2, t+2} — the delay chain realizes the
    # worst case exactly.
    t = (n - 1) // 2
    for r in rows:
        expected = 2 if r["f"] == 0 else min(r["f"] + 2, t + 2)
        assert r["rounds"] == expected

    # Linear growth in f: termination(f) - termination(0) = f * one round
    # (the chain adds exactly one round per byzantine node).
    round_s = SimulationConfig(n=n).round_seconds
    for r in rows:
        if r["rounds"] < t + 2:  # below the t+2 cap the law is exact
            expected = rows[0]["termination_s"] + r["f"] * round_s
            assert r["termination_s"] == expected

    # The paper's ~100x stretch at f = N/4 (389 s vs 4 s): ours is
    # (f+2)/2 rounds = ~16x at N=128, ~65x at N=512.
    stretch = rows[-1]["termination_s"] / rows[0]["termination_s"]
    assert stretch >= (n // 4) / 4
