"""The campaign's unit of execution: one fully-specified protocol run.

A :class:`CaseSpec` pins everything a run depends on — protocol, network
size, fault bound, channel fidelity, master seed, fault schedule, worker
count — so that executing the same spec twice produces bit-identical
results (the engine is deterministic given its config, and the schedule
compiles its coin streams off the spec seed).  Specs round-trip through
``to_dict``/``from_dict``; the canonical JSON form is what failure
artifacts store and ``python -m repro replay`` re-executes.

``inject`` is a **test-only violation hook**: it corrupts the run result
*after* the engine finishes, before the invariant checks, so the
campaign's catch → shrink → replay pipeline can be exercised end-to-end
without weakening any real protocol guarantee.  Production campaigns
leave it ``None``; a spec that carries one is labelled as injected in
its artifact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.campaign.schedule import Schedule

#: Protocols a campaign can drive (see repro.campaign.runner.run_case).
PROTOCOLS = ("erb", "erng", "erng-opt", "pb-erb")

#: The fixed payload ERB cases broadcast (validity is checked against it).
ERB_PAYLOAD = b"campaign-payload"


def derive_seed(master: int, *labels: object) -> int:
    """A per-case seed: deterministic, well-mixed function of the cell."""
    material = repr((master,) + labels).encode("utf-8")
    return int.from_bytes(
        hashlib.sha256(b"campaign-seed:" + material).digest()[:8], "big"
    )


@dataclass(frozen=True)
class CaseSpec:
    """One campaign case, replayable from its dict form."""

    protocol: str
    n: int
    t: int
    seed: int
    schedule: Schedule = field(default_factory=Schedule)
    strategy: str = "custom"
    channel: str = "modeled"
    workers: int = 1
    initiator: int = 0
    inject: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")

    @property
    def adversarial(self) -> bool:
        return bool(self.schedule.faults)

    def validate(self) -> None:
        self.schedule.validate(self.n, self.t)
        if self.protocol in ("erb", "pb-erb") \
                and not 0 <= self.initiator < self.n:
            raise ConfigurationError(
                f"initiator {self.initiator} outside network of size {self.n}"
            )

    def with_schedule(self, schedule: Schedule) -> "CaseSpec":
        return replace(self, schedule=schedule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "seed": self.seed,
            "schedule": self.schedule.to_dict(),
            "strategy": self.strategy,
            "channel": self.channel,
            "workers": self.workers,
            "initiator": self.initiator,
            "inject": self.inject,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CaseSpec":
        inject = data.get("inject")
        return cls(
            protocol=str(data["protocol"]),
            n=int(data["n"]),
            t=int(data["t"]),
            seed=int(data["seed"]),
            schedule=Schedule.from_dict(data.get("schedule", {})),
            strategy=str(data.get("strategy", "custom")),
            channel=str(data.get("channel", "modeled")),
            workers=int(data.get("workers", 1)),
            initiator=int(data.get("initiator", 0)),
            inject=dict(inject) if inject else None,
        )

    def label(self) -> str:
        """Compact human-readable cell label for logs and progress events."""
        return (
            f"{self.protocol} n={self.n} t={self.t} "
            f"strategy={self.strategy} seed={self.seed}"
        )
