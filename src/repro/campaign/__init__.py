"""repro.campaign — seeded fault-injection campaigns over the protocols.

The campaign harness turns the hand-written adversarial tests into a
swept, data-driven pipeline:

* :mod:`repro.campaign.schedule` — declarative, serialisable fault
  schedules (:class:`Fault` / :class:`Schedule`) that compile onto the
  existing adversary behaviours, with optional activity windows (churn);
* :mod:`repro.campaign.spec` — :class:`CaseSpec`, the replayable unit of
  execution (protocol, N, t, seed, schedule, channel);
* :mod:`repro.campaign.invariants` — executable paper invariants checked
  after every run (agreement, validity, integrity, termination bounds,
  sanitization, liveness, ERNG unbiasedness smoke);
* :mod:`repro.campaign.runner` — strategy/churn presets, the grid
  builder, :func:`run_case` / :func:`run_campaign`, and the serial-vs-
  parallel engine cross-check;
* :mod:`repro.campaign.shrink` — greedy deterministic minimisation of a
  failing case to its smallest reproducer;
* :mod:`repro.campaign.artifact` — canonical-JSON failure artifacts and
  the byte-identical ``python -m repro replay`` pipeline.

CLI entry points: ``python -m repro campaign`` and
``python -m repro replay`` (see :mod:`repro.cli`); the adversary model
the strategies sweep is documented in ``docs/ADVERSARIES.md``.
"""

from repro.campaign.artifact import (
    FailureArtifact,
    ReplayOutcome,
    make_artifact,
    read_artifact,
    replay_artifact,
    write_artifact,
)
from repro.campaign.invariants import (
    Violation,
    case_round_bound,
    check_run,
    check_unbiasedness,
)
from repro.campaign.runner import (
    CHURN_PATTERNS,
    STRATEGIES,
    CampaignReport,
    CaseOutcome,
    CaseRecord,
    build_grid,
    build_schedule,
    case_fails,
    cross_check_engines,
    run_campaign,
    run_case,
    summarize_report,
)
from repro.campaign.schedule import FAULT_KINDS, Fault, Schedule, WindowedBehavior
from repro.campaign.shrink import ShrinkResult, describe_shrink, shrink_case
from repro.campaign.spec import ERB_PAYLOAD, PROTOCOLS, CaseSpec, derive_seed

__all__ = [
    "CHURN_PATTERNS",
    "CampaignReport",
    "CaseOutcome",
    "CaseRecord",
    "CaseSpec",
    "ERB_PAYLOAD",
    "FAULT_KINDS",
    "FailureArtifact",
    "Fault",
    "PROTOCOLS",
    "ReplayOutcome",
    "STRATEGIES",
    "Schedule",
    "ShrinkResult",
    "Violation",
    "WindowedBehavior",
    "build_grid",
    "build_schedule",
    "case_fails",
    "case_round_bound",
    "check_run",
    "check_unbiasedness",
    "cross_check_engines",
    "derive_seed",
    "describe_shrink",
    "make_artifact",
    "read_artifact",
    "replay_artifact",
    "run_campaign",
    "run_case",
    "shrink_case",
    "summarize_report",
    "write_artifact",
]
