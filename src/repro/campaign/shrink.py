"""Greedy shrinking of a failing case to a minimal reproducer.

Given a :class:`CaseSpec` that violates an invariant and an oracle
``fails(spec) -> bool``, :func:`shrink_case` searches for a smaller spec
that *still* fails, in the spirit of property-testing shrinkers
(Hypothesis/QuickCheck) but specialised to the campaign's structure.
Passes, applied to a fixpoint, in order of expected payoff:

1. **drop faults** — remove whole schedule entries one at a time;
2. **drop victims** — thin a fault's victim list one node at a time;
3. **unwindow faults** — replace churn windows with always-on faults
   (``start=0, stop=0``), the simpler-to-read form;
4. **clear inject fields** — drop the test-only injection hook if the
   spec fails without it (a real failure does);
5. **shrink the network** — lower ``n`` (re-clamping the schedule) and
   then ``t`` toward the smallest network that still reproduces.

Every pass is deterministic (fixed iteration order, first improvement
wins) so the same failing spec always shrinks to the same minimal spec —
the regression test in ``tests/test_campaign_replay.py`` pins that.  The
oracle budget (:data:`MAX_ORACLE_RUNS`) caps the work on pathological
schedules; the search simply stops improving when it is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from repro.campaign.spec import CaseSpec

#: Upper bound on oracle invocations per shrink (each is one engine run).
MAX_ORACLE_RUNS = 200

#: Smallest network the shrinker will try (below this the protocols are
#: degenerate and reproducers stop being informative).
MIN_N = 2


@dataclass
class ShrinkResult:
    """The minimal failing spec plus how much work finding it took."""

    spec: CaseSpec
    runs: int
    improved: bool


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.runs = 0

    def spent(self) -> bool:
        return self.runs >= self.limit


def _check(
    spec: CaseSpec, fails: Callable[[CaseSpec], bool], budget: _Budget
) -> bool:
    if budget.spent():
        return False
    budget.runs += 1
    return fails(spec)


def _drop_faults(
    spec: CaseSpec, fails: Callable[[CaseSpec], bool], budget: _Budget
) -> Optional[CaseSpec]:
    for index in range(len(spec.schedule.faults)):
        candidate = spec.with_schedule(spec.schedule.without_fault(index))
        if _check(candidate, fails, budget):
            return candidate
    return None


def _drop_victims(
    spec: CaseSpec, fails: Callable[[CaseSpec], bool], budget: _Budget
) -> Optional[CaseSpec]:
    for index, fault in enumerate(spec.schedule.faults):
        for victim in fault.victims:
            thinner = replace(
                fault, victims=tuple(v for v in fault.victims if v != victim)
            )
            if not thinner.victims and fault.kind in ("omit_send", "omit_recv"):
                continue  # empty victim list would turn the fault off
            candidate = spec.with_schedule(
                spec.schedule.with_fault(index, thinner)
            )
            if _check(candidate, fails, budget):
                return candidate
    return None


def _unwindow(
    spec: CaseSpec, fails: Callable[[CaseSpec], bool], budget: _Budget
) -> Optional[CaseSpec]:
    for index, fault in enumerate(spec.schedule.faults):
        if fault.start == 0 and fault.stop == 0:
            continue
        candidate = spec.with_schedule(
            spec.schedule.with_fault(index, replace(fault, start=0, stop=0))
        )
        if _check(candidate, fails, budget):
            return candidate
    return None


def _drop_inject(
    spec: CaseSpec, fails: Callable[[CaseSpec], bool], budget: _Budget
) -> Optional[CaseSpec]:
    if spec.inject is None:
        return None
    candidate = replace(spec, inject=None)
    if _check(candidate, fails, budget):
        return candidate
    return None


def _shrink_network(
    spec: CaseSpec, fails: Callable[[CaseSpec], bool], budget: _Budget
) -> Optional[CaseSpec]:
    if spec.n > MIN_N:
        smaller_n = spec.n - 1
        schedule = spec.schedule.clamped(smaller_n)
        if schedule is not None:
            t = min(spec.t, max(0, (smaller_n - 1) // 2))
            initiator = min(spec.initiator, smaller_n - 1)
            inject = spec.inject
            if inject and int(inject.get("node", 0)) >= smaller_n:
                inject = None
            candidate = replace(
                spec, n=smaller_n, t=t, initiator=initiator,
                schedule=schedule, inject=inject,
            )
            if _check(candidate, fails, budget):
                return candidate
    if spec.t > len(spec.schedule.faulty_nodes()) and spec.t > 0:
        candidate = replace(spec, t=spec.t - 1)
        if _check(candidate, fails, budget):
            return candidate
    return None


_PASSES = (
    _drop_faults,
    _drop_victims,
    _unwindow,
    _drop_inject,
    _shrink_network,
)


def shrink_case(
    spec: CaseSpec,
    fails: Callable[[CaseSpec], bool],
    max_runs: int = MAX_ORACLE_RUNS,
) -> ShrinkResult:
    """Greedily minimise ``spec`` while ``fails`` keeps returning True.

    ``fails`` must be deterministic (the campaign oracle re-runs the
    engine from the spec seed, so it is).  If the original spec does not
    fail under the oracle — a flaky or environment-dependent report —
    it is returned unshrunk with ``improved=False``.
    """
    budget = _Budget(max_runs)
    if not _check(spec, fails, budget):
        return ShrinkResult(spec=spec, runs=budget.runs, improved=False)

    current = spec
    improved = False
    progress = True
    while progress and not budget.spent():
        progress = False
        for shrink_pass in _PASSES:
            candidate = shrink_pass(current, fails, budget)
            if candidate is not None:
                current = candidate
                improved = True
                progress = True
                break  # restart from the highest-payoff pass
    return ShrinkResult(spec=current, runs=budget.runs, improved=improved)


def describe_shrink(original: CaseSpec, minimal: CaseSpec) -> List[str]:
    """Human-readable delta between the original and minimal spec."""
    notes = []
    if minimal.n != original.n:
        notes.append(f"n: {original.n} -> {minimal.n}")
    if minimal.t != original.t:
        notes.append(f"t: {original.t} -> {minimal.t}")
    dropped = len(original.schedule.faults) - len(minimal.schedule.faults)
    if dropped:
        notes.append(f"faults dropped: {dropped}")
    if original.inject and not minimal.inject:
        notes.append("inject hook removed")
    if not notes:
        notes.append("already minimal")
    return notes
