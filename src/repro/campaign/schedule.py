"""Declarative fault schedules — the campaign's unit of adversity.

A :class:`Schedule` is a serializable description of *who misbehaves,
how, and when*: a tuple of :class:`Fault` records, each naming a node, a
fault ``kind`` from :data:`FAULT_KINDS`, its parameters, and an optional
round window (the campaign's churn patterns are windowed faults).
``Schedule.compile`` lowers the description onto the existing behaviour
classes of :mod:`repro.adversary` — :class:`SelectiveOmission` /
:class:`RandomOmission` / :class:`ReceiveOmission` (general omission,
attack A3), :class:`DelayAdversary` / :class:`ReplayAdversary` (ROD,
attacks A4/A5), :class:`TamperAdversary` (byzantine, attack A2) — so a
campaign run exercises exactly the adversary code paths the unit tests
do, driven from data instead of hand-written setup.

Schedules round-trip losslessly through :meth:`Schedule.to_dict` /
:meth:`Schedule.from_dict`, which is what makes a failing campaign case
replayable from its JSON artifact (see :mod:`repro.campaign.artifact`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adversary.behaviors import CompositeBehavior, OSBehavior, Transmission
from repro.adversary.byzantine import TamperAdversary
from repro.adversary.omission import (
    RandomOmission,
    ReceiveOmission,
    SelectiveOmission,
)
from repro.adversary.rod import DelayAdversary, ReplayAdversary
from repro.channel.peer_channel import WireMessage
from repro.common.config import AdversaryModel
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.common.types import NodeId

#: Fault kinds and the Definition A.5 mode each one needs (the minimal
#: adversary class that can express it).
FAULT_KINDS: Dict[str, AdversaryModel] = {
    "omit_send": AdversaryModel.GENERAL_OMISSION,    # SelectiveOmission
    "omit_recv": AdversaryModel.GENERAL_OMISSION,    # SelectiveOmission
    "mute_recv": AdversaryModel.GENERAL_OMISSION,    # ReceiveOmission
    "random_omission": AdversaryModel.GENERAL_OMISSION,  # RandomOmission
    "delay": AdversaryModel.ROD,                     # DelayAdversary
    "replay": AdversaryModel.ROD,                    # ReplayAdversary
    "tamper": AdversaryModel.BYZANTINE,              # TamperAdversary
}

#: Order of the hierarchy honest ⊂ general-omission ⊂ ROD ⊂ byzantine.
_MODEL_RANK = {
    AdversaryModel.HONEST: 0,
    AdversaryModel.GENERAL_OMISSION: 1,
    AdversaryModel.ROD: 2,
    AdversaryModel.BYZANTINE: 3,
}


class WindowedBehavior(OSBehavior):
    """Gate an inner behaviour to rounds ``[start, stop]`` (inclusive).

    Outside the window the OS is honest — this is how a campaign
    schedule expresses intermittent misbehaviour (the churn patterns of
    Appendix D, where a byzantine node only sometimes acts).  ``stop=0``
    means "no upper bound".
    """

    def __init__(self, inner: OSBehavior, start: int = 0, stop: int = 0) -> None:
        self._inner = inner
        self._start = start
        self._stop = stop

    def _active(self, rnd: int) -> bool:
        if rnd < self._start:
            return False
        return self._stop == 0 or rnd <= self._stop

    def filter_send(self, wire: WireMessage, rnd: int) -> "list[Transmission]":
        if self._active(rnd):
            return list(self._inner.filter_send(wire, rnd))
        return [(0, wire)]

    def filter_receive(self, wire: WireMessage, rnd: int) -> bool:
        if self._active(rnd):
            return self._inner.filter_receive(wire, rnd)
        return True

    def drain_injections(self, rnd: int) -> "list[Transmission]":
        if self._active(rnd):
            return list(self._inner.drain_injections(rnd))
        return []

    def on_round_end(self, rnd: int) -> None:
        self._inner.on_round_end(rnd)


@dataclass(frozen=True)
class Fault:
    """One node's misbehaviour: kind, parameters, optional round window.

    Attributes:
        node: the faulty node's id.
        kind: one of :data:`FAULT_KINDS`.
        victims: counterparty ids for ``omit_send`` / ``omit_recv``.
        p: drop probability for ``random_omission``.
        delay: hold time in rounds for ``delay``.
        burst: replays re-injected per round for ``replay``.
        start: first round the fault is active (0 = from the start).
        stop: last active round inclusive (0 = forever).
    """

    node: NodeId
    kind: str
    victims: Tuple[NodeId, ...] = ()
    p: float = 0.0
    delay: int = 1
    burst: int = 16
    start: int = 0
    stop: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")

    @property
    def model(self) -> AdversaryModel:
        return FAULT_KINDS[self.kind]

    @property
    def windowed(self) -> bool:
        return self.start > 0 or self.stop > 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node,
            "kind": self.kind,
            "victims": list(self.victims),
            "p": self.p,
            "delay": self.delay,
            "burst": self.burst,
            "start": self.start,
            "stop": self.stop,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Fault":
        return cls(
            node=int(data["node"]),
            kind=str(data["kind"]),
            victims=tuple(int(v) for v in data.get("victims", ())),
            p=float(data.get("p", 0.0)),
            delay=int(data.get("delay", 1)),
            burst=int(data.get("burst", 16)),
            start=int(data.get("start", 0)),
            stop=int(data.get("stop", 0)),
        )

    def build(self, rng: DeterministicRNG) -> OSBehavior:
        """Instantiate the adversary behaviour this fault describes."""
        if self.kind == "omit_send":
            inner: OSBehavior = SelectiveOmission(self.victims, omit_sends=True)
        elif self.kind == "omit_recv":
            inner = SelectiveOmission(
                self.victims, omit_sends=False, omit_receives=True
            )
        elif self.kind == "mute_recv":
            inner = ReceiveOmission()
        elif self.kind == "random_omission":
            inner = RandomOmission(
                rng.fork(("fault", self.node, self.kind)),
                send_drop_p=self.p,
                recv_drop_p=self.p,
            )
        elif self.kind == "delay":
            inner = DelayAdversary(delay_rounds=self.delay)
        elif self.kind == "replay":
            inner = ReplayAdversary(replay_after_rounds=self.delay, burst=self.burst)
        else:  # tamper
            inner = TamperAdversary()
        if self.windowed:
            return WindowedBehavior(inner, start=self.start, stop=self.stop)
        return inner


@dataclass(frozen=True)
class Schedule:
    """An immutable, serializable set of faults for one campaign case."""

    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    @property
    def model(self) -> AdversaryModel:
        """The weakest Definition A.5 mode that covers every fault."""
        best = AdversaryModel.HONEST
        for fault in self.faults:
            if _MODEL_RANK[fault.model] > _MODEL_RANK[best]:
                best = fault.model
        return best

    def faulty_nodes(self) -> Tuple[NodeId, ...]:
        return tuple(sorted({fault.node for fault in self.faults}))

    def compile(self, seed: object) -> Dict[NodeId, OSBehavior]:
        """Lower the schedule to per-node OS behaviours for the engine.

        Faults sharing a node chain through :class:`CompositeBehavior`
        in declaration order.  ``seed`` keys the coin streams of any
        probabilistic faults, so compiling the same schedule with the
        same seed reproduces the same run bit-for-bit.
        """
        rng = DeterministicRNG(("campaign-schedule", seed))
        per_node: Dict[NodeId, List[OSBehavior]] = {}
        for fault in self.faults:
            per_node.setdefault(fault.node, []).append(fault.build(rng))
        return {
            node: stages[0] if len(stages) == 1 else CompositeBehavior(stages)
            for node, stages in per_node.items()
        }

    def validate(self, n: int, t: int) -> None:
        """Reject schedules outside the model: bad ids or > t faulty nodes."""
        for fault in self.faults:
            if not 0 <= fault.node < n:
                raise ConfigurationError(
                    f"fault on node {fault.node} outside network of size {n}"
                )
            for victim in fault.victims:
                if not 0 <= victim < n:
                    raise ConfigurationError(
                        f"victim {victim} outside network of size {n}"
                    )
        if len(self.faulty_nodes()) > t:
            raise ConfigurationError(
                f"{len(self.faulty_nodes())} faulty nodes exceed the bound t={t}"
            )

    def expected_sanitized(self, n: int, ack_threshold: int) -> Tuple[NodeId, ...]:
        """Nodes halt-on-divergence (P4) is *guaranteed* to eject.

        Conservative static analysis: an un-windowed ``omit_send`` whose
        victim set starves the sender below the ACK threshold, or an
        un-windowed ``tamper`` (every send rejected at the channel),
        cannot collect ``ack_threshold`` ACKs for any multicast — so if
        the node multicasts at all, its enclave halts.  Windowed and
        probabilistic faults might dodge the check, so they are never
        *expected* to be sanitized (they still may be).
        """
        if ack_threshold <= 0 or n - 1 < ack_threshold:
            return ()
        expected = set()
        for fault in self.faults:
            if fault.windowed:
                continue
            if fault.kind == "tamper":
                expected.add(fault.node)
            elif fault.kind == "omit_send":
                reachable = n - 1 - len(set(fault.victims) - {fault.node})
                if reachable < ack_threshold:
                    expected.add(fault.node)
        return tuple(sorted(expected))

    def to_dict(self) -> Dict[str, object]:
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Schedule":
        return cls(
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", ()))
        )

    # ------------------------------------------------------------------
    # shrinking support: structurally simpler variants of this schedule
    # ------------------------------------------------------------------
    def without_fault(self, index: int) -> "Schedule":
        return Schedule(
            faults=self.faults[:index] + self.faults[index + 1:]
        )

    def with_fault(self, index: int, fault: Fault) -> "Schedule":
        return Schedule(
            faults=self.faults[:index] + (fault,) + self.faults[index + 1:]
        )

    def clamped(self, n: int) -> Optional["Schedule"]:
        """The schedule restricted to a smaller network, if representable.

        Faulty nodes must still exist; victim lists drop out-of-range
        entries (fewer victims is a *weaker* fault, which is exactly what
        a shrink step wants).
        """
        faults = []
        for fault in self.faults:
            if fault.node >= n:
                return None
            victims = tuple(v for v in fault.victims if v < n)
            if victims != fault.victims:
                fault = Fault(
                    node=fault.node,
                    kind=fault.kind,
                    victims=victims,
                    p=fault.p,
                    delay=fault.delay,
                    burst=fault.burst,
                    start=fault.start,
                    stop=fault.stop,
                )
            faults.append(fault)
        return Schedule(faults=tuple(faults))
