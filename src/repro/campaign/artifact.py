"""Replayable failure artifacts: canonical JSON in, byte-identical out.

When a campaign case fails and shrinks, the result is persisted as one
JSON file holding the *minimal* spec, the original spec it shrank from,
and the violations the minimal spec produces.  The serialization is
canonical — ``sort_keys=True``, compact separators, trailing newline —
so re-serialising a loaded artifact reproduces the original bytes
exactly, and ``python -m repro replay <artifact>`` can assert three
levels of fidelity:

1. the spec still runs (the schedule compiles and the engine accepts it),
2. the re-run produces the *same* violations the artifact recorded,
3. re-serialising the re-checked artifact is byte-identical to the file.

Level 3 is the strongest claim: it pins the schedule compiler, the
engine, and the invariant checker all at once, which is what makes a
checked-in artifact a meaningful regression test.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.invariants import Violation
from repro.campaign.spec import CaseSpec
from repro.common.errors import ConfigurationError

#: Artifact format version; bump on incompatible schema changes.
ARTIFACT_VERSION = 1


def canonical_json(data: Dict[str, object]) -> str:
    """The one true serialization: key-sorted, compact, newline-terminated."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


@dataclass
class FailureArtifact:
    """A minimal reproducer plus the context it was distilled from."""

    spec: CaseSpec
    violations: List[Violation] = field(default_factory=list)
    original: Optional[CaseSpec] = None
    shrink_runs: int = 0
    version: int = ARTIFACT_VERSION

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "version": self.version,
            "spec": self.spec.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "shrink_runs": self.shrink_runs,
        }
        if self.original is not None:
            data["original"] = self.original.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureArtifact":
        version = int(data.get("version", 0))
        if version != ARTIFACT_VERSION:
            raise ConfigurationError(
                f"unsupported artifact version {version} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        original = data.get("original")
        return cls(
            spec=CaseSpec.from_dict(data["spec"]),
            violations=[
                Violation.from_dict(v) for v in data.get("violations", [])
            ],
            original=CaseSpec.from_dict(original) if original else None,
            shrink_runs=int(data.get("shrink_runs", 0)),
            version=version,
        )

    def render(self) -> str:
        return canonical_json(self.to_dict())


def make_artifact(
    spec: CaseSpec,
    original: Optional[CaseSpec] = None,
    shrink_runs: int = 0,
) -> FailureArtifact:
    """Build an artifact by re-running the minimal spec for its verdict."""
    from repro.campaign.runner import run_case

    outcome = run_case(spec)
    return FailureArtifact(
        spec=spec,
        violations=list(outcome.violations),
        original=original if original is not None and original != spec else None,
        shrink_runs=shrink_runs,
    )


def artifact_name(spec: CaseSpec) -> str:
    return (
        f"repro-{spec.protocol}-n{spec.n}-t{spec.t}-"
        f"seed{spec.seed:016x}.json"
    )


def write_artifact(artifact: FailureArtifact, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, artifact_name(artifact.spec))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(artifact.render())
    return path


def read_artifact(path: str) -> FailureArtifact:
    with open(path, "r", encoding="utf-8") as handle:
        return FailureArtifact.from_dict(json.load(handle))


@dataclass
class ReplayOutcome:
    """What ``python -m repro replay`` reports for one artifact."""

    artifact: FailureArtifact
    violations: List[Violation]
    reproduced: bool
    byte_identical: bool

    def summary(self) -> str:
        lines = [f"replaying {self.artifact.spec.label()}"]
        if self.violations:
            lines.append(f"violations ({len(self.violations)}):")
            for violation in self.violations:
                lines.append(f"  {violation.invariant}: {violation.detail}")
        else:
            lines.append("violations: none")
        lines.append(
            "recorded violations "
            + ("reproduced exactly" if self.reproduced else "DID NOT reproduce")
        )
        lines.append(
            "re-serialization "
            + ("byte-identical" if self.byte_identical
               else "DIFFERS from the artifact file")
        )
        return "\n".join(lines)

    @property
    def ok(self) -> bool:
        return self.reproduced and self.byte_identical


def replay_artifact(path: str) -> ReplayOutcome:
    """Re-run an artifact's spec and compare against what it recorded."""
    from repro.campaign.runner import run_case

    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    artifact = FailureArtifact.from_dict(json.loads(raw))

    outcome = run_case(artifact.spec)
    violations = list(outcome.violations)
    reproduced = violations == artifact.violations

    rebuilt = FailureArtifact(
        spec=artifact.spec,
        violations=violations,
        original=artifact.original,
        shrink_runs=artifact.shrink_runs,
        version=artifact.version,
    )
    byte_identical = reproduced and rebuilt.render() == raw
    return ReplayOutcome(
        artifact=artifact,
        violations=violations,
        reproduced=reproduced,
        byte_identical=byte_identical,
    )
