"""The campaign runner: seeded fault-injection sweeps over the stack.

:func:`run_case` executes one :class:`CaseSpec` end-to-end — compile the
schedule onto adversary behaviours, build the engine with the case seed
and a per-round liveness probe (``extra["round_hook"]``), run the
protocol, apply the test-only injection hook if present, and check every
paper invariant.  :func:`run_campaign` sweeps a grid of
``(protocol, N, strategy, churn pattern, seed)`` cells, adds the
cross-seed ERNG unbiasedness smoke, shrinks the first failing case of
each cell to a minimal reproducer, and writes replayable JSON artifacts
(see :mod:`repro.campaign.artifact`).

Strategy presets (:data:`STRATEGIES`) are deterministic functions of
``(n, t, rng)`` covering the Definition A.5 hierarchy: general omission
(identity-based starvation, random drops, mute listeners), ROD (delay +
replay), and byzantine (ciphertext tampering) — the same behaviours the
hand-written adversarial tests use, but generated and swept from data.
Churn patterns window the faults (always-on, intermittent, late-onset),
matching the Appendix D process where byzantine nodes misbehave only in
some instances.

Every adversarial case runs on the per-wire serial path (the engine's
fast paths fall back automatically when behaviours are attached); the
optional engine cross-check re-runs a case at ``workers=2`` and asserts
the result is byte-identical, verifying the silent serial fallback of
the envelope/parallel engines under adversaries and the parallel path
itself for honest cells.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.invariants import (
    Violation,
    case_round_bound,
    check_run,
    check_unbiasedness,
)
from repro.campaign.schedule import Fault, Schedule
from repro.campaign.spec import ERB_PAYLOAD, CaseSpec, derive_seed
from repro.common.config import ChannelSecurity, SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.core.erb import run_erb
from repro.core.erng import run_erng
from repro.core.erng_optimized import ClusterConfig, run_optimized_erng
from repro.core.pb_erb import PbErbConfig, run_pb_erb
from repro.net.simulator import RunResult
from repro.obs.tracer import NULL_TRACER, Tracer

_LOG = logging.getLogger("repro.campaign")

_CHANNELS = {
    "full": ChannelSecurity.FULL,
    "modeled": ChannelSecurity.MODELED,
    "none": ChannelSecurity.NONE,
}


# ----------------------------------------------------------------------
# strategy presets: (n, t, rng) -> Schedule
# ----------------------------------------------------------------------
def _strategy_honest(n: int, t: int, rng: DeterministicRNG) -> Schedule:
    return Schedule()


def _strategy_omission(n: int, t: int, rng: DeterministicRNG) -> Schedule:
    """Identity-based starvation (A3): one node P4 must eject, and — when
    the bound allows a second fault — one partial omitter that survives."""
    if t < 1:
        return Schedule()
    nodes = rng.sample(range(n), min(2, t))
    faults = [Fault(
        node=nodes[0],
        kind="omit_send",
        victims=tuple(x for x in range(n) if x != nodes[0]),
    )]
    if len(nodes) > 1:
        spare = max(0, n - 1 - t)  # keep the survivor above the threshold
        victims = tuple(sorted(rng.sample(
            [x for x in range(n) if x != nodes[1]], min(spare, 2)
        )))
        if victims:
            faults.append(Fault(node=nodes[1], kind="omit_send", victims=victims))
    return Schedule(faults=tuple(faults))


def _strategy_random(n: int, t: int, rng: DeterministicRNG) -> Schedule:
    if t < 1:
        return Schedule()
    nodes = rng.sample(range(n), min(2, t))
    return Schedule(faults=tuple(
        Fault(node=node, kind="random_omission", p=0.3) for node in nodes
    ))


def _strategy_mute(n: int, t: int, rng: DeterministicRNG) -> Schedule:
    if t < 1:
        return Schedule()
    return Schedule(faults=(Fault(node=rng.randrange(n), kind="mute_recv"),))


def _strategy_rod(n: int, t: int, rng: DeterministicRNG) -> Schedule:
    """Delay (A4) + replay (A5): both defeated by P5/P6, never by luck."""
    if t < 1:
        return Schedule()
    nodes = rng.sample(range(n), min(2, t))
    faults = [Fault(node=nodes[0], kind="delay", delay=1)]
    if len(nodes) > 1:
        faults.append(Fault(node=nodes[1], kind="replay", delay=1, burst=8))
    return Schedule(faults=tuple(faults))


def _strategy_byzantine(n: int, t: int, rng: DeterministicRNG) -> Schedule:
    """Ciphertext tampering (A2) plus replay: the full-byzantine OS that
    Theorem A.2 reduces to omission; the tamperer must be sanitized."""
    if t < 1:
        return Schedule()
    nodes = rng.sample(range(n), min(2, t))
    faults = [Fault(node=nodes[0], kind="tamper")]
    if len(nodes) > 1:
        faults.append(Fault(node=nodes[1], kind="replay", delay=1, burst=8))
    return Schedule(faults=tuple(faults))


STRATEGIES: Dict[str, Callable[[int, int, DeterministicRNG], Schedule]] = {
    "honest": _strategy_honest,
    "omission": _strategy_omission,
    "random": _strategy_random,
    "mute": _strategy_mute,
    "rod": _strategy_rod,
    "byzantine": _strategy_byzantine,
}

#: Churn patterns: fault activity windows applied over a strategy's
#: schedule.  ``(start, stop)`` with 0 meaning unbounded.
CHURN_PATTERNS: Dict[str, Tuple[int, int]] = {
    "none": (0, 0),          # faults active for the whole run
    "intermittent": (1, 2),  # misbehave in the first two rounds only
    "late": (2, 0),          # honest start, faults from round 2 on
}


def build_schedule(
    strategy: str, n: int, t: int, seed: int, churn: str = "none"
) -> Schedule:
    """The deterministic schedule for one grid cell."""
    try:
        generator = STRATEGIES[strategy]
    except KeyError:
        raise ConfigurationError(f"unknown strategy {strategy!r}") from None
    try:
        start, stop = CHURN_PATTERNS[churn]
    except KeyError:
        raise ConfigurationError(f"unknown churn pattern {churn!r}") from None
    schedule = generator(n, t, DeterministicRNG(("campaign-grid", seed)))
    if (start, stop) == (0, 0):
        return schedule
    return Schedule(faults=tuple(
        replace(fault, start=start, stop=stop) for fault in schedule.faults
    ))


# ----------------------------------------------------------------------
# single-case execution
# ----------------------------------------------------------------------
@dataclass
class CaseOutcome:
    """One executed case: the spec, its result, and the verdict."""

    spec: CaseSpec
    result: RunResult
    violations: List[Violation]
    round_log: List[Tuple[int, int]]

    @property
    def passed(self) -> bool:
        return not self.violations

    def honest_output(self) -> Optional[object]:
        """The common honest output, if the honest nodes agree."""
        excluded = set(self.spec.schedule.faulty_nodes())
        excluded.update(self.result.halted)
        values = {
            repr(v): v
            for node, v in self.result.outputs.items()
            if node not in excluded
        }
        if len(values) == 1:
            return next(iter(values.values()))
        return None


def _apply_inject(spec: CaseSpec, result: RunResult) -> RunResult:
    """The test-only violation hook (documented in :mod:`.spec`)."""
    inject = spec.inject
    if not inject:
        return result
    kind = inject.get("kind")
    if kind == "corrupt_output":
        outputs = dict(result.outputs)
        outputs[int(inject["node"])] = inject.get("value", "corrupted")
        return replace(result, outputs=outputs)
    if kind == "ignore_halt":
        return replace(result, halted=[])
    raise ConfigurationError(f"unknown inject kind {kind!r}")


def run_case(
    spec: CaseSpec, probe_rounds: bool = True, workers: Optional[int] = None
) -> CaseOutcome:
    """Execute one case and check every per-run invariant."""
    spec.validate()
    round_log: List[Tuple[int, int]] = []
    extra: Dict[str, object] = {}
    if probe_rounds:
        def hook(network, rnd, halted_now) -> None:
            live = sum(1 for node in network.nodes.values() if node.alive)
            round_log.append((rnd, live))

        extra["round_hook"] = hook
    if spec.protocol == "erng-opt" and spec.adversarial:
        # Early stopping is a fast-path heuristic; adversarial optimized
        # runs use the full Algorithm 6 round structure (module docstring).
        extra["erng_early_stop"] = False
    config = SimulationConfig(
        n=spec.n,
        t=spec.t,
        seed=spec.seed,
        channel_security=_CHANNELS[spec.channel],
        workers=workers if workers is not None else spec.workers,
        extra=extra,
    )
    behaviors = spec.schedule.compile(spec.seed) or None
    if spec.protocol == "erb":
        result = run_erb(
            config, initiator=spec.initiator, message=ERB_PAYLOAD,
            behaviors=behaviors,
        )
    elif spec.protocol == "pb-erb":
        result = run_pb_erb(
            config, initiator=spec.initiator, message=ERB_PAYLOAD,
            behaviors=behaviors,
        )
    elif spec.protocol == "erng":
        result = run_erng(config, behaviors=behaviors)
    else:
        result = run_optimized_erng(
            config,
            cluster=ClusterConfig(mode="fixed_fraction"),
            behaviors=behaviors,
        )
    result = _apply_inject(spec, result)
    violations = check_run(spec, result, round_log if probe_rounds else None)
    return CaseOutcome(
        spec=spec, result=result, violations=violations, round_log=round_log
    )


def case_fails(spec: CaseSpec) -> bool:
    """Whether a spec still violates at least one invariant (shrink oracle)."""
    try:
        return not run_case(spec, probe_rounds=False).passed
    except ConfigurationError:
        return False  # an unrunnable shrink candidate is not a reproducer


def cross_check_engines(spec: CaseSpec) -> List[Violation]:
    """Differential check: serial vs ``workers=2`` must match exactly.

    Honest MODELED/NONE cells exercise the sharded parallel engine;
    adversarial and FULL cells exercise its *silent fallback* to the
    serial per-wire path — either way the observable result (outputs,
    halts, decided rounds, round count, logical traffic) must be
    identical to the serial run's.
    """
    serial = run_case(spec, probe_rounds=False, workers=1).result
    sharded = run_case(spec, probe_rounds=False, workers=2).result
    mismatches = []
    if serial.outputs != sharded.outputs:
        mismatches.append("outputs")
    if serial.halted != sharded.halted:
        mismatches.append("halted")
    if serial.decided_rounds != sharded.decided_rounds:
        mismatches.append("decided_rounds")
    if serial.rounds_executed != sharded.rounds_executed:
        mismatches.append("rounds")
    if serial.traffic.summary() != sharded.traffic.summary():
        mismatches.append("traffic")
    if mismatches:
        return [Violation(
            "engine_cross_check",
            f"workers=2 diverged from serial on: {', '.join(mismatches)}",
        )]
    return []


# ----------------------------------------------------------------------
# grid sweep
# ----------------------------------------------------------------------
@dataclass
class CaseRecord:
    """The summary row one case contributes to the campaign report."""

    spec: CaseSpec
    rounds: int
    halted: List[int]
    violations: List[Violation]
    artifact_path: Optional[str] = None

    @property
    def passed(self) -> bool:
        return not self.violations


@dataclass
class CampaignReport:
    """Everything one campaign sweep produced."""

    records: List[CaseRecord] = field(default_factory=list)
    cross_run_violations: List[Violation] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def cases(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[CaseRecord]:
        return [record for record in self.records if not record.passed]

    @property
    def passed(self) -> bool:
        return not self.failures and not self.cross_run_violations


def build_grid(
    protocols: Sequence[str],
    sizes: Sequence[int],
    strategies: Sequence[str],
    churns: Sequence[str],
    seeds: Sequence[int],
    master_seed: int = 0,
    channel: str = "modeled",
    inject: Optional[Dict[str, object]] = None,
) -> List[CaseSpec]:
    """Expand the sweep dimensions into a deterministic list of cases.

    ``t`` is derived per protocol (the maximum each bound tolerates);
    churn patterns other than ``none`` are skipped for honest cells
    (windowing an empty schedule would duplicate them).
    """
    specs: List[CaseSpec] = []
    for protocol in protocols:
        for n in sizes:
            if protocol == "erng-opt":
                t = n // 3
            elif protocol == "pb-erb":
                # The sampled quorum is probabilistic, not an N-t one:
                # keep f low enough that the honest vote mass clears the
                # τ-quorum deterministically at campaign sizes.
                t = n // 4
            else:
                t = (n - 1) // 2
            for strategy in strategies:
                for churn in churns:
                    if strategy == "honest" and churn != "none":
                        continue
                    for seed_index in seeds:
                        seed = derive_seed(
                            master_seed, protocol, n, strategy, churn,
                            seed_index,
                        )
                        schedule = build_schedule(
                            strategy, n, t, seed, churn
                        )
                        specs.append(CaseSpec(
                            protocol=protocol,
                            n=n,
                            t=t,
                            seed=seed,
                            schedule=schedule,
                            strategy=(
                                strategy if churn == "none"
                                else f"{strategy}+{churn}"
                            ),
                            channel=channel,
                            inject=dict(inject) if inject else None,
                        ))
    return specs


def run_campaign(
    specs: Iterable[CaseSpec],
    tracer: Tracer = NULL_TRACER,
    shrink_failures: bool = True,
    artifact_dir: Optional[str] = None,
    cross_check: bool = False,
) -> CampaignReport:
    """Run a list of cases; check, shrink, and persist any failures.

    Progress is reported through ``tracer`` as campaign events (one per
    case — point a :class:`~repro.obs.export.JsonlSink` at it for the
    JSONL summary) and on the ``repro.campaign`` logger.
    """
    from repro.campaign.artifact import make_artifact, write_artifact
    from repro.campaign.shrink import shrink_case

    report = CampaignReport()
    erng_cells: Dict[tuple, List[Tuple[int, int]]] = {}
    for index, spec in enumerate(specs):
        outcome = run_case(spec)
        violations = list(outcome.violations)
        if cross_check:
            violations.extend(cross_check_engines(spec))
        record = CaseRecord(
            spec=spec,
            rounds=outcome.result.rounds_executed,
            halted=list(outcome.result.halted),
            violations=violations,
        )
        if spec.protocol in ("erng", "erng-opt") and outcome.passed:
            value = outcome.honest_output()
            if isinstance(value, int):
                cell = (spec.protocol, spec.n, spec.strategy)
                erng_cells.setdefault(cell, []).append((spec.seed, value))
        if violations:
            _LOG.warning(
                "case %d (%s): %d invariant violation(s): %s",
                index, spec.label(), len(violations),
                "; ".join(v.invariant for v in violations),
            )
            if shrink_failures:
                shrunk = shrink_case(spec, case_fails)
                artifact = make_artifact(shrunk.spec, original=spec,
                                         shrink_runs=shrunk.runs)
                if artifact_dir is not None:
                    path = write_artifact(artifact, artifact_dir)
                    record.artifact_path = path
                    report.artifacts.append(path)
                    _LOG.warning("minimal reproducer written to %s", path)
        else:
            _LOG.info("case %d (%s): ok in %d rounds",
                      index, spec.label(), record.rounds)
        tracer.campaign_case(
            index=index,
            protocol=spec.protocol,
            n=spec.n,
            t=spec.t,
            strategy=spec.strategy,
            seed=spec.seed,
            rounds=record.rounds,
            halted=record.halted,
            violations=[v.invariant for v in violations],
            artifact=record.artifact_path or "",
        )
        report.records.append(record)

    for (protocol, n, strategy), samples in sorted(erng_cells.items()):
        for violation in check_unbiasedness(samples):
            report.cross_run_violations.append(Violation(
                violation.invariant,
                f"{protocol} n={n} strategy={strategy}: {violation.detail}",
            ))
    return report


# ----------------------------------------------------------------------
# pb-erb ε-sweep preset
# ----------------------------------------------------------------------
@dataclass
class PbErbSweepCell:
    """One (sample_factor, strategy) cell of the pb-erb ε-sweep.

    ``hard_violations`` are the properties that hold *surely* regardless
    of ε (integrity: outputs are the broadcast bytes or ⊥; termination:
    every live node decides within the round bound) — any count above
    zero fails the cell outright.  Agreement and delivery are the
    ε-probabilistic properties: the cell passes when the empirical
    failure rate stays within ``budget``, which is the configured ε
    opened up to the analytic :meth:`~repro.core.pb_erb.PbErbConfig.
    failure_bound` when the knobs cannot buy ε at this (n, f) — small
    samples at small n are reported, not punished, for being outside
    their analysis regime.
    """

    sample_factor: int
    strategy: str
    n: int
    runs: int
    agreement_failures: int
    delivery_failures: int
    hard_violations: List[str]
    epsilon: float
    analytic_bound: float

    @property
    def budget(self) -> float:
        return max(self.epsilon, self.analytic_bound)

    @property
    def empirical_rate(self) -> float:
        worst = max(self.agreement_failures, self.delivery_failures)
        return worst / self.runs if self.runs else 0.0

    @property
    def passed(self) -> bool:
        return not self.hard_violations and self.empirical_rate <= self.budget


def run_pb_erb_sweep(
    n: int = 64,
    seeds: int = 6,
    sample_factors: Sequence[int] = (2, 3, 6),
    epsilon: float = 0.05,
    strategies: Sequence[str] = ("omission", "byzantine"),
    master_seed: int = 0,
) -> List[PbErbSweepCell]:
    """Sweep pb-erb's sample-size knob against adversarial schedules.

    For each ``(sample_factor, strategy)`` cell the preset runs ``seeds``
    independent broadcasts under the strategy's fault schedule and counts
    how often the ε-probabilistic properties failed: *agreement* (honest
    nodes output more than one value) and *delivery* (an honest node
    output ⊥ although the initiator was honest).  The sure properties —
    integrity and bounded termination — are asserted unconditionally.
    """
    cells: List[PbErbSweepCell] = []
    t = n // 4
    for sample_factor in sample_factors:
        pb = PbErbConfig(sample_factor=sample_factor, epsilon=epsilon)
        for strategy in strategies:
            agreement_failures = 0
            delivery_failures = 0
            hard: List[str] = []
            worst_bound = 0.0
            for seed_index in range(seeds):
                seed = derive_seed(
                    master_seed, "pb-erb-sweep", n, sample_factor,
                    strategy, seed_index,
                )
                schedule = build_schedule(strategy, n, t, seed)
                config = SimulationConfig(n=n, t=t, seed=seed)
                result = run_pb_erb(
                    config, initiator=0, message=ERB_PAYLOAD,
                    behaviors=schedule.compile(seed) or None, pb=pb,
                )
                faulty = set(schedule.faulty_nodes())
                worst_bound = max(worst_bound, pb.failure_bound(n, len(faulty)))
                halted = set(result.halted)
                honest = {
                    node: value
                    for node, value in result.outputs.items()
                    if node not in faulty and node not in halted
                }
                fabricated = sorted(
                    node for node, value in honest.items()
                    if value is not None and value != ERB_PAYLOAD
                )
                if fabricated:
                    hard.append(
                        f"seed {seed_index}: fabricated outputs at {fabricated}"
                    )
                undecided = sorted(
                    node for node in range(n)
                    if node not in halted and node not in result.outputs
                )
                if undecided:
                    hard.append(
                        f"seed {seed_index}: undecided live nodes {undecided}"
                    )
                bound = pb.resolved_round_bound(n)
                if result.rounds_executed > bound:
                    hard.append(
                        f"seed {seed_index}: {result.rounds_executed} rounds "
                        f"exceed the bound {bound}"
                    )
                if len({repr(v) for v in honest.values()}) > 1:
                    agreement_failures += 1
                if 0 not in faulty and any(
                    value is None for value in honest.values()
                ):
                    delivery_failures += 1
            cells.append(PbErbSweepCell(
                sample_factor=sample_factor,
                strategy=strategy,
                n=n,
                runs=seeds,
                agreement_failures=agreement_failures,
                delivery_failures=delivery_failures,
                hard_violations=hard,
                epsilon=epsilon,
                analytic_bound=worst_bound,
            ))
    return cells


def summarize_pb_erb_sweep(cells: Sequence[PbErbSweepCell]) -> str:
    """Human-readable ε-sweep table for the CLI."""
    lines = [
        "pb-erb sweep: sample_factor x strategy, "
        "empirical failure rate vs ε budget",
    ]
    for cell in cells:
        verdict = "ok" if cell.passed else "FAIL"
        lines.append(
            f"  k={cell.sample_factor} {cell.strategy:<10} n={cell.n} "
            f"runs={cell.runs} agree_fail={cell.agreement_failures} "
            f"deliver_fail={cell.delivery_failures} "
            f"rate={cell.empirical_rate:.3f} "
            f"budget={cell.budget:.3f} "
            f"(analytic {cell.analytic_bound:.2e})  {verdict}"
        )
        for detail in cell.hard_violations:
            lines.append(f"       hard violation: {detail}")
    if all(cell.passed for cell in cells):
        lines.append("pb-erb sweep: the agreement bound held at every cell")
    return "\n".join(lines)


def summarize_report(report: CampaignReport) -> str:
    """Human-readable closing summary for the CLI."""
    lines = [
        f"campaign: {report.cases} case(s), "
        f"{len(report.failures)} failing, "
        f"{len(report.cross_run_violations)} cross-run violation(s)",
    ]
    bound_note = False
    for record in report.failures:
        lines.append(f"  FAIL {record.spec.label()}")
        for violation in record.violations:
            lines.append(f"       {violation.invariant}: {violation.detail}")
        if record.artifact_path:
            lines.append(f"       reproducer: {record.artifact_path}")
            bound_note = True
    for violation in report.cross_run_violations:
        lines.append(f"  FAIL {violation.invariant}: {violation.detail}")
    if bound_note:
        lines.append(
            "replay a reproducer with: python -m repro replay <artifact>"
        )
    if report.passed:
        maxima = {}
        for record in report.records:
            key = record.spec.protocol
            maxima[key] = max(maxima.get(key, 0), record.rounds)
        per_protocol = ", ".join(
            f"{protocol}<={rounds}r" for protocol, rounds in sorted(maxima.items())
        )
        lines.append(
            f"all paper invariants held (worst-case rounds: {per_protocol})"
        )
    return "\n".join(lines)
