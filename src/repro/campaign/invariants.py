"""Executable paper invariants, checked after every campaign run.

Each check mirrors one claim of the paper (Section 4 / Theorem C.1 /
Appendix D) and is written against the *schedule*, not the run: the
schedule says which nodes were faulty, so "honest" below always means
"no fault declared and not halted".  The checks are deliberately
conservative — they only assert what the theorems guarantee for any
``f <= t`` schedule, so a violation is a real counterexample (or an
injected one), never grid noise:

* **agreement** — all honest nodes output the same value (ERB agreement
  / ERNG common output).
* **validity** — ERB with an honest initiator delivers the initiator's
  message to every honest node.
* **integrity** — honest ERB outputs are the broadcast value or ⊥ (no
  fabrication); ERNG outputs are integers of the configured width.
* **termination** — within the engine's hard bound (``t+2`` rounds for
  ERB/ERNG, ``γ+5`` for the optimized ERNG); a *successful* ERB
  broadcast also meets the early-stopping bound ``min{f+2, t+2}``; a
  fault-free schedule finishes in 2 rounds.
* **sanitization** — halt-on-divergence (P4) ejects no honest node, and
  every node the schedule statically starves below the ACK threshold
  (see :meth:`Schedule.expected_sanitized`) is ejected.
* **liveness** — the per-round probe trail is contiguous and the live
  count never increases (a churned-out node stays out, Section 3.1/P6).
* **unbiasedness smoke** (cross-run) — ERNG outputs over distinct seeds
  of one grid cell are not all identical, and their pooled bits are not
  grossly skewed (Theorem 5.1's uniformity, at smoke-test power).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import ERB_PAYLOAD, CaseSpec
from repro.core.erng_optimized import ClusterConfig
from repro.core.pb_erb import PbErbConfig
from repro.net.simulator import RunResult


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which claim failed and a deterministic why."""

    invariant: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"invariant": self.invariant, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Violation":
        return cls(invariant=str(data["invariant"]), detail=str(data["detail"]))


def case_round_bound(spec: CaseSpec) -> int:
    """The hard termination bound the engine enforces for this spec."""
    if spec.protocol == "erng-opt":
        return ClusterConfig().resolved_gamma(spec.n) + 5
    if spec.protocol == "pb-erb":
        return PbErbConfig().resolved_round_bound(spec.n)
    return spec.t + 2


def _honest_outputs(spec: CaseSpec, result: RunResult) -> Dict[int, object]:
    excluded = set(spec.schedule.faulty_nodes()) | set(result.halted)
    return {
        node: value
        for node, value in result.outputs.items()
        if node not in excluded
    }


def check_run(
    spec: CaseSpec,
    result: RunResult,
    round_log: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[Violation]:
    """All per-run invariants for one finished case, in a fixed order.

    ``round_log`` is the ``(round, live_count)`` trail collected by the
    engine's per-round hook (``config.extra["round_hook"]``); when
    absent the liveness checks are skipped.
    """
    violations: List[Violation] = []
    faulty = set(spec.schedule.faulty_nodes())
    honest = _honest_outputs(spec, result)

    # Every live node must have produced an output (⊥ counts).
    live = [n for n in range(spec.n) if n not in set(result.halted)]
    undecided = sorted(n for n in live if n not in result.outputs)
    if undecided:
        violations.append(Violation(
            "termination", f"live nodes without output: {undecided}"
        ))

    # Agreement: one common value across all honest nodes.
    distinct = {repr(v) for v in honest.values()}
    if len(distinct) > 1:
        violations.append(Violation(
            "agreement",
            "honest outputs diverge: " + ", ".join(sorted(distinct)),
        ))

    # Validity / integrity.  pb-erb shares ERB's value domain (the
    # broadcast bytes or ⊥) so the same fabrication check applies; its
    # agreement/validity are ε-probabilistic, but campaign grids keep
    # f <= n/4 with full fan-out samples, where both hold surely.
    if spec.protocol in ("erb", "pb-erb"):
        if spec.initiator not in faulty:
            wrong = sorted(
                n for n, v in honest.items() if v != ERB_PAYLOAD
            )
            if wrong:
                violations.append(Violation(
                    "validity",
                    f"honest initiator but nodes {wrong} did not output "
                    f"the broadcast value",
                ))
        fabricated = sorted(
            n for n, v in honest.items()
            if v is not None and v != ERB_PAYLOAD
        )
        if fabricated:
            violations.append(Violation(
                "integrity",
                f"nodes {fabricated} output a value nobody broadcast",
            ))
    else:
        bad_type = sorted(
            n for n, v in honest.items() if not isinstance(v, int)
        )
        if bad_type:
            violations.append(Violation(
                "integrity", f"non-integer RNG outputs at nodes {bad_type}"
            ))

    # Termination bounds.
    bound = case_round_bound(spec)
    rounds = result.rounds_executed
    if rounds > bound:
        violations.append(Violation(
            "termination", f"{rounds} rounds exceed the hard bound {bound}"
        ))
    if spec.protocol == "erb" and honest and all(
        v == ERB_PAYLOAD for v in honest.values()
    ):
        # The early-stopping bound governs when honest nodes *decide*;
        # the engine itself may keep running to t+2 while a mute faulty
        # node withholds its (⊥) output.
        early = min(len(faulty) + 2, bound)
        late = sorted(
            node for node in honest
            if (result.decided_rounds.get(node) or bound + 1) > early
        )
        if late:
            violations.append(Violation(
                "termination",
                f"successful broadcast, but honest nodes {late} decided "
                f"after the early-stopping bound min{{f+2, t+2}} = {early}",
            ))
    if not faulty and spec.protocol in ("erb", "erng") and rounds != 2:
        violations.append(Violation(
            "termination",
            f"fault-free run took {rounds} rounds instead of 2",
        ))

    # Sanitization (P4 / Appendix D).
    dishonest_halts = sorted(set(result.halted) - faulty)
    if dishonest_halts:
        violations.append(Violation(
            "sanitization", f"honest nodes ejected: {dishonest_halts}"
        ))
    if spec.protocol in ("erb", "erng"):
        expected = spec.schedule.expected_sanitized(spec.n, spec.t)
        if spec.protocol == "erb":
            # A non-initiator only multicasts (and can only be starved of
            # ACKs) once the value reaches it; guaranteed when the
            # initiator itself is fault-free.
            if spec.initiator in faulty:
                expected = tuple(
                    node for node in expected if node == spec.initiator
                )
        missed = sorted(set(expected) - set(result.halted))
        if missed:
            violations.append(Violation(
                "sanitization",
                f"nodes {missed} starved the ACK threshold but were "
                f"not ejected",
            ))

    # Liveness probe trail (from the engine round hook).
    if round_log:
        rounds_seen = [rnd for rnd, _live in round_log]
        if rounds_seen != list(range(1, len(rounds_seen) + 1)):
            violations.append(Violation(
                "liveness", f"non-contiguous round trail: {rounds_seen}"
            ))
        lives = [live for _rnd, live in round_log]
        if any(b > a for a, b in zip(lives, lives[1:])):
            violations.append(Violation(
                "liveness", f"live count increased mid-run: {lives}"
            ))

    return violations


def check_unbiasedness(
    samples: Sequence[Tuple[int, int]], random_bits: int = 128
) -> List[Violation]:
    """Cross-run ERNG smoke test over one grid cell's (seed, output) pairs.

    Statistical power is deliberately tiny — the campaign only wants to
    catch catastrophic failures (a constant output, a stuck-at bias),
    not replace :mod:`repro.analysis.bias`.  Thresholds are ~10σ wide so
    the check can never flake on an honest generator.
    """
    violations: List[Violation] = []
    by_seed = {seed: value for seed, value in samples}
    if len(by_seed) < 2:
        return violations
    values = list(by_seed.values())
    if len(set(values)) == 1:
        violations.append(Violation(
            "unbiasedness",
            f"{len(by_seed)} distinct seeds all produced {values[0]:#x}",
        ))
    total_bits = random_bits * len(values)
    if total_bits >= 256:
        ones = sum(bin(v & ((1 << random_bits) - 1)).count("1") for v in values)
        fraction = ones / total_bits
        sigma = 0.5 / math.sqrt(total_bits)
        if abs(fraction - 0.5) > 10 * sigma:
            violations.append(Violation(
                "unbiasedness",
                f"pooled ones-fraction {fraction:.3f} over {total_bits} "
                f"bits is more than 10 sigma from 1/2",
            ))
    return violations
