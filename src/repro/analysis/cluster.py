"""Representative-cluster quality — Lemmas F.1 and F.2, computed exactly.

Algorithm 6 samples each node into the cluster with probability
``q = 2γ/N``.  With ``t ≤ N/3`` byzantine nodes, Lemma F.1 shows the
cluster w.h.p. contains more than γ honest and fewer than γ byzantine
members.  Rather than the Chernoff bounds of the appendix, these helpers
evaluate the exact binomial tails (fine for the N values we simulate), so
tests can check the *actual* failure probability of a given (N, t, γ).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.common.errors import ConfigurationError


def _binom_pmf_log(n: int, p: float, i: int) -> float:
    """log Pr[Bin(n, p) = i], via lgamma (stable for huge n)."""
    return (
        math.lgamma(n + 1)
        - math.lgamma(i + 1)
        - math.lgamma(n - i + 1)
        + i * math.log(p)
        + (n - i) * math.log(1.0 - p)
    )


def _binom_cdf(n: int, p: float, k: int) -> float:
    """Pr[Bin(n, p) <= k].  Sums pmf terms in log space; exact up to
    float rounding, and the k values here (≈ γ) are small."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return 0.0  # X = n > k surely
    total = 0.0
    for i in range(0, k + 1):
        total += math.exp(_binom_pmf_log(n, p, i))
    return min(1.0, total)


def _binom_tail_ge(n: int, p: float, k: int) -> float:
    """Pr[Bin(n, p) >= k]."""
    return 1.0 - _binom_cdf(n, p, k - 1)


def _binom_tail_le(n: int, p: float, k: int) -> float:
    """Pr[Bin(n, p) <= k]."""
    return _binom_cdf(n, p, k)


def cluster_quality_prob(n: int, t: int, gamma: int) -> Dict[str, float]:
    """Lemma F.1 events, exactly.

    Returns the probabilities that the sampled cluster has (a) more than γ
    honest members, (b) fewer than γ byzantine members, and (c) both.
    Independence of the two coins makes (c) the product.
    """
    if not 0 <= t <= n:
        raise ConfigurationError(f"invalid t={t} for n={n}")
    if gamma < 1:
        raise ConfigurationError("gamma must be >= 1")
    span = max(1, n // (2 * gamma))
    q = 1.0 / span  # per-node selection probability (≈ 2γ/N)
    honest = n - t
    p_honest = _binom_tail_ge(honest, q, gamma + 1)
    p_byz = _binom_tail_le(t, q, gamma - 1)
    return {
        "selection_p": q,
        "honest_gt_gamma": p_honest,
        "byzantine_lt_gamma": p_byz,
        "both": p_honest * p_byz,
    }


def expected_cluster_size(n: int, gamma: int) -> float:
    """E[|cluster|] = N · q ≈ 2γ."""
    span = max(1, n // (2 * gamma))
    return n / span


def second_cluster_expectation(cluster_size: float, gamma: int) -> float:
    """Expected initiators after the second coin (Lemma F.2): c / √γ."""
    gamma2 = max(1, math.isqrt(gamma))
    return cluster_size / gamma2


def recommended_gamma(n: int, failure_target: float = 1e-6) -> int:
    """Smallest γ whose Lemma F.1 failure probability is below target.

    Evaluated exactly with ``t = N/3``; falls back to γ = N/2 span limits
    when no γ qualifies (tiny networks, where Algorithm 6's sampling
    doesn't apply — use fixed_fraction mode instead).
    """
    t = n // 3
    for gamma in range(2, max(3, n // 2)):
        quality = cluster_quality_prob(n, t, gamma)
        if 1.0 - quality["both"] <= failure_target:
            return gamma
    return max(2, n // 2)
