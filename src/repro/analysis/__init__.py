"""Analytical companions to the simulation.

* :mod:`repro.analysis.complexity` — closed-form message/byte/round
  predictions (the "Th" curves of Figs. 2-3 and the formulas of
  Tables 1-2);
* :mod:`repro.analysis.bias` — the β(G) bias estimator of Definition 2.2,
  used to show the strawman beacon is biased and ERNG is not;
* :mod:`repro.analysis.cluster` — the binomial tail bounds behind
  Lemmas F.1/F.2 (representative-cluster quality).
"""

from repro.analysis.bias import empirical_bias, uniformity_chi_square
from repro.analysis.cluster import (
    cluster_quality_prob,
    expected_cluster_size,
    recommended_gamma,
)
from repro.analysis.complexity import (
    erb_bytes_honest,
    erb_messages_honest,
    erb_rounds,
    erng_opt_bytes_honest,
    erng_opt_rounds,
    erng_unopt_bytes_honest,
    erng_unopt_messages_honest,
    rb_early_messages,
    rb_sig_bytes,
    TABLE1_FORMULAS,
    TABLE2_FORMULAS,
)

__all__ = [
    "TABLE1_FORMULAS",
    "TABLE2_FORMULAS",
    "cluster_quality_prob",
    "empirical_bias",
    "erb_bytes_honest",
    "erb_messages_honest",
    "erb_rounds",
    "erng_opt_bytes_honest",
    "erng_opt_rounds",
    "erng_unopt_bytes_honest",
    "erng_unopt_messages_honest",
    "expected_cluster_size",
    "rb_early_messages",
    "rb_sig_bytes",
    "recommended_gamma",
    "uniformity_chi_square",
]
