"""Closed-form complexity predictions (the "Th" curves and table formulas).

The honest-case byte counts are derived from the protocol structure, not
fitted: e.g. one ERB run is ``(N-1)`` INITs + ``(N-1)²`` ECHOs, each
answered by one ACK.  Message sizes default to the calibration constants
below (chosen so the MODELED channel's INIT ≈ 100 B and ACK ≈ 80 B, the
values reported in Section 6.1); benchmarks may pass the *measured*
average sizes instead, in which case Th and Ex agree up to protocol
behaviour only.
"""

from __future__ import annotations

import math
from typing import Dict

#: Calibration constants (bytes), Section 6.1.
INIT_BYTES = 100
ECHO_BYTES = 100
ACK_BYTES = 80
CHOSEN_BYTES = 90
FINAL_BASE_BYTES = 90
VALUE_PER_ENTRY_BYTES = 22  # one random number inside a FINAL set


# ---------------------------------------------------------------------------
# ERB (Algorithm 2)
# ---------------------------------------------------------------------------
def erb_rounds(f: int, t: int, honest_initiator: bool = False) -> int:
    """Round complexity ``min{f+2, t+2}`` (2 with an honest initiator)."""
    if honest_initiator or f == 0:
        return 2
    return min(f + 2, t + 2)


def erb_messages_honest(n: int) -> int:
    """Protocol messages (INIT+ECHO) plus ACKs for one honest ERB run."""
    if n <= 1:
        return 0
    inits = n - 1
    echoes = (n - 1) * (n - 1)
    acks = inits + echoes
    return inits + echoes + acks


def erb_bytes_honest(
    n: int,
    init_bytes: float = INIT_BYTES,
    echo_bytes: float = ECHO_BYTES,
    ack_bytes: float = ACK_BYTES,
) -> float:
    """Traffic (bytes) of one honest ERB run — the Fig. 3a Th curve."""
    if n <= 1:
        return 0.0
    inits = n - 1
    echoes = (n - 1) * (n - 1)
    return (
        inits * init_bytes
        + echoes * echo_bytes
        + (inits + echoes) * ack_bytes
    )


# ---------------------------------------------------------------------------
# Unoptimized ERNG (Algorithm 3)
# ---------------------------------------------------------------------------
def erng_unopt_messages_honest(n: int) -> int:
    """N concurrent ERB instances: ``N × erb_messages`` (cubic)."""
    return n * erb_messages_honest(n)


def erng_unopt_bytes_honest(n: int, **sizes) -> float:
    """The Fig. 3b Th curve for the unoptimized version (cubic)."""
    return n * erb_bytes_honest(n, **sizes)


# ---------------------------------------------------------------------------
# Optimized ERNG (Algorithm 6)
# ---------------------------------------------------------------------------
def erng_opt_rounds(gamma: int) -> int:
    """Algorithm 6 terminates in γ + 4 rounds; our implementation adds one
    membership-confirmation round (γ + 5) — still O(log N)."""
    return gamma + 5


def erng_opt_bytes_honest(
    n: int,
    cluster_size: int,
    initiators: int,
    chosen_bytes: float = CHOSEN_BYTES,
    init_bytes: float = INIT_BYTES,
    echo_bytes: float = ECHO_BYTES,
    ack_bytes: float = ACK_BYTES,
    final_base_bytes: float = FINAL_BASE_BYTES,
    value_entry_bytes: float = VALUE_PER_ENTRY_BYTES,
) -> float:
    """Traffic of one honest optimized-ERNG run.

    Three phases: CHOSEN (cluster -> everyone, ACKed), the ERB instances
    inside the cluster (``initiators`` of them over ``cluster_size``
    nodes), and FINAL (cluster -> everyone, ACKed, payload grows with the
    number of agreed values).
    """
    c = cluster_size
    chosen = c * (n - 1) * (chosen_bytes + ack_bytes)
    erb_one = (
        (c - 1) * init_bytes
        + (c - 1) * (c - 1) * echo_bytes
        + ((c - 1) + (c - 1) * (c - 1)) * ack_bytes
    ) if c > 1 else 0.0
    erb_total = initiators * erb_one
    final_size = final_base_bytes + initiators * value_entry_bytes
    final = c * (n - 1) * (final_size + ack_bytes)
    return chosen + erb_total + final


def sampled_cluster_expectations(n: int, gamma: int) -> Dict[str, float]:
    """Expected sizes under the Algorithm 6 coins (Lemmas F.1/F.2)."""
    cluster = n / max(1, n // (2 * gamma))  # ≈ 2γ
    gamma2 = max(1, math.isqrt(gamma))
    return {
        "cluster_size": cluster,
        "initiators": cluster / gamma2,  # ≈ 2√γ
    }


# ---------------------------------------------------------------------------
# Baselines (Appendix B)
# ---------------------------------------------------------------------------
def rb_sig_bytes(
    n: int,
    signature_bytes: int = 192,
    base_bytes: float = 60.0,
) -> float:
    """Honest-case RBsig traffic: each of N-1 nodes relays once with a
    2-signature chain after the initiator's 1-signature multicast."""
    init = (n - 1) * (base_bytes + signature_bytes)
    relays = (n - 1) * (n - 2) * (base_bytes + 2 * signature_bytes)
    return init + relays


def rb_sig_bytes_worst(n: int, t: int, signature_bytes: int = 192,
                       base_bytes: float = 60.0) -> float:
    """Worst-case O(N³): O(N²) relays carrying O(N)-signature chains."""
    return (n - 1) * (n - 1) * (base_bytes + (t + 1) * signature_bytes)


def rb_early_messages(n: int, rounds: int) -> int:
    """Every undecided node broadcasts every round: ``rounds × N(N-1)``."""
    return rounds * n * (n - 1)


# ---------------------------------------------------------------------------
# Table formulas (asymptotic rows of Tables 1 and 2)
# ---------------------------------------------------------------------------
TABLE1_FORMULAS: Dict[str, Dict[str, str]] = {
    "PT [82]":  {"model": "omission",  "network": "t+1",  "rounds": "min{f+2, t+1}", "comm": "O(N^3)"},
    "PR [79]":  {"model": "omission",  "network": "2t+1", "rounds": "min{f+2, t+1}", "comm": "O(N^3)"},
    "CT [41]":  {"model": "omission",  "network": "2t+1", "rounds": "min{f+2, t+1}", "comm": "O(N^2)"},
    "PSL [81]": {"model": "byzantine", "network": "3t+1", "rounds": "t+1",           "comm": "O(exp(N))"},
    "BGP [28]": {"model": "byzantine", "network": "3t+1", "rounds": "min{f+2, t+1}", "comm": "O(exp(N))"},
    "BG [26]":  {"model": "byzantine", "network": "4t+1", "rounds": "t+1",           "comm": "O(poly(N))"},
    "GM [53]":  {"model": "byzantine", "network": "3t+1", "rounds": "min{f+5, t+1}", "comm": "O(poly(N))"},
    "AD15 [18]": {"model": "byzantine", "network": "3t+1", "rounds": "min{f+2, t+1}", "comm": "O(poly(N))"},
    "AD14 [19]": {"model": "byzantine", "network": "2t+1", "rounds": "3t+4",          "comm": "O(N^4)"},
    "ERB":      {"model": "byz+SGX",   "network": "2t+1", "rounds": "min{f+2, t+2}", "comm": "O(N^2)"},
}

TABLE2_FORMULAS: Dict[str, Dict[str, str]] = {
    "AS [20]":        {"network": "6t+1", "rounds": "O(N)",      "comm": "O(N^3)"},
    "AD14 [19]":      {"network": "2t+1", "rounds": "O(N)",      "comm": "O(N^4)"},
    "Basic ERNG":     {"network": "2t+1", "rounds": "O(N)",      "comm": "O(N^3)"},
    "Optimized ERNG": {"network": "3t+1", "rounds": "O(log N)",  "comm": "O(N log N)"},
}
