"""Empirical bias estimation — Definition 2.2 made measurable.

The paper defines the bias of a randomness generator ``G`` as::

    β(G) = max_{S ⊆ {0,1}^k}  max( E[S]/E_G[S],  E_G[S]/E[S] )

where ``E_G[S]`` is the expected number of outputs landing in ``S`` and
``E[S] = |S| / 2^k`` the uniform expectation.  β = 1 means unbiased.

Maximizing over *all* subsets is infeasible, so :func:`empirical_bias`
evaluates a family of standard distinguisher sets — individual bits,
parity, low/high halves, residue classes — which is exactly the family
the look-ahead attacker of Section 2.3 can bias (it steers a predicate of
its choice).  The estimator reports the worst ratio over the family.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import ConfigurationError

TestSet = Tuple[str, Callable[[int], bool], float]  # (name, membership, E[S])


def standard_test_sets(k: int) -> List[TestSet]:
    """Distinguisher family over {0,1}^k: bits, parity, halves, mod-3."""
    tests: List[TestSet] = []
    for bit in range(min(k, 8)):
        tests.append(
            (f"bit{bit}", lambda x, b=bit: (x >> b) & 1 == 1, 0.5)
        )
    tests.append(("parity", lambda x: bin(x).count("1") % 2 == 1, 0.5))
    half = 1 << (k - 1)
    tests.append(("high-half", lambda x, h=half: x >= h, 0.5))
    tests.append(("mod3", lambda x: x % 3 == 0, _mod3_density(k)))
    return tests


def _mod3_density(k: int) -> float:
    """Exact density of multiples of 3 in [0, 2^k)."""
    total = 1 << k
    return (total + 2) // 3 / total


def empirical_bias(
    samples: Sequence[int],
    k: int,
    tests: Iterable[TestSet] = None,
) -> Dict[str, float]:
    """Worst-case empirical β over the test family.

    Returns a dict with per-test ratios plus ``"beta"``, the maximum.
    Ratios are clamped away from zero-frequency blowups by add-one
    smoothing, so small samples do not report infinite bias.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    if tests is None:
        tests = standard_test_sets(k)
    n = len(samples)
    results: Dict[str, float] = {}
    beta = 1.0
    for name, member, expected_density in tests:
        hits = sum(1 for x in samples if member(x))
        observed = (hits + 1) / (n + 2)  # add-one smoothing
        ratio = max(observed / expected_density, expected_density / observed)
        results[name] = ratio
        beta = max(beta, ratio)
    results["beta"] = beta
    return results


def uniformity_chi_square(
    samples: Sequence[int], k: int, buckets: int = 16
) -> Tuple[float, float]:
    """Chi-square statistic against uniformity over ``buckets`` bins.

    Returns ``(statistic, critical_5pct)``; a uniform source should
    produce ``statistic < critical`` about 95 % of the time.  The critical
    value uses the Wilson-Hilferty approximation of the chi-square
    quantile, good to a few percent for df >= 5.
    """
    if buckets < 2:
        raise ConfigurationError("need at least two buckets")
    if not samples:
        raise ConfigurationError("need at least one sample")
    span = 1 << k
    counts = [0] * buckets
    for x in samples:
        counts[min(buckets - 1, x * buckets // span)] += 1
    expected = len(samples) / buckets
    statistic = sum((c - expected) ** 2 / expected for c in counts)
    df = buckets - 1
    # Wilson-Hilferty: chi2_q(df) ≈ df * (1 - 2/(9 df) + z_q sqrt(2/(9 df)))^3
    z95 = 1.6448536269514722
    critical = df * (1 - 2 / (9 * df) + z95 * math.sqrt(2 / (9 * df))) ** 3
    return statistic, critical
