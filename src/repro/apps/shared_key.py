"""Group shared-key generation (Appendix H, "Shared Key Generation").

ERNG's output is a common unbiased secret-free value; expanding it through
HKDF with a context label yields group keys, salts or IVs that every
honest peer derives identically and no byzantine coalition ( < N/2 )
biased.  Note the value itself travelled encrypted between enclaves (P3),
so outside observers never saw it — inside the trust model it is a group
secret, suitable as symmetric key material.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import SimulationConfig
from repro.common.errors import ProtocolError
from repro.common.serialization import encode
from repro.common.types import NodeId
from repro.core.erng import run_erng
from repro.crypto.kdf import hkdf


def derive_group_key(
    common_value: int, context: str, length: int = 32
) -> bytes:
    """Expand an agreed random value into key material for ``context``."""
    if length < 16:
        raise ProtocolError("refusing to derive keys shorter than 128 bits")
    return hkdf(
        encode(common_value),
        info=b"group-key|" + context.encode("utf-8"),
        length=length,
    )


class GroupKeyAgreement:
    """One-shot group key agreement over a peer population."""

    def __init__(
        self,
        n: int,
        t: int = -1,
        seed: int = 0,
        behaviors: Optional[Dict[NodeId, object]] = None,
    ) -> None:
        self.n = n
        self.t = t
        self.seed = seed
        self.behaviors = behaviors

    def agree(self, context: str) -> Dict[NodeId, bytes]:
        """Run ERNG and return every honest node's derived key.

        All returned keys are identical by ERNG agreement; the dict keeps
        the per-node view so tests can assert exactly that.
        """
        config = SimulationConfig(n=self.n, t=self.t, seed=self.seed)
        result = run_erng(config, behaviors=self.behaviors)
        byzantine = set(self.behaviors or ())
        outputs = result.honest_outputs(byzantine)
        keys: Dict[NodeId, bytes] = {}
        for node, value in outputs.items():
            if value is None:
                raise ProtocolError(f"node {node} failed to agree on a value")
            keys[node] = derive_group_key(value, context)
        if len(set(keys.values())) != 1:
            raise ProtocolError("honest nodes derived mismatched keys")
        return keys
