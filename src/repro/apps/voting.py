"""Commit-reveal voting with ERNG tie-breaking (Appendix H, "voting
schemes").

A minimal but complete decentralized poll among the peer population:

1. **Commit** — each voter submits ``H(ballot || nonce)``; commitments are
   disseminated with byzantine agreement (interactive consistency), so
   every honest peer freezes the *same* commitment vector before any
   ballot is visible — nobody can adapt their vote to others'.
2. **Reveal** — voters open their commitments; openings that do not match
   the committed digest are discarded (a byzantine voter can abstain but
   not equivocate).
3. **Tally** — votes are counted; ties are broken by a fresh ERNG value,
   so no coalition can steer the tie-break (the Moran-Naor split-ballot
   motivation the paper cites).

The class operates on one peer population and drives the underlying
protocols itself; per-voter state (ballot, nonce) models what each
voter's enclave would hold.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import encode
from repro.common.types import NodeId
from repro.core.agreement import run_interactive_consistency
from repro.core.erng import run_erng
from repro.crypto.hashing import hash_bytes


@dataclass(frozen=True)
class PollResult:
    """Outcome of one poll."""

    winner: str
    tally: Dict[str, int]
    revealed: int
    discarded: int
    tie_broken: bool
    tie_break_value: Optional[int]


def _commitment(ballot: str, nonce: bytes) -> bytes:
    return hash_bytes(encode((ballot, nonce)), domain="poll-commitment")


class CommitRevealPoll:
    """A decentralized poll over ``n`` peers choosing among ``options``."""

    def __init__(
        self,
        n: int,
        options: Sequence[str],
        t: int = -1,
        seed: int = 0,
        behaviors: Optional[Dict[NodeId, object]] = None,
    ) -> None:
        if len(options) < 2:
            raise ConfigurationError("a poll needs at least two options")
        if len(set(options)) != len(options):
            raise ConfigurationError("options must be unique")
        self.n = n
        self.t = t
        self.options = list(options)
        self.seed = seed
        self.behaviors = behaviors
        self._rng = DeterministicRNG(("poll", seed))

    # ------------------------------------------------------------------
    def run(self, ballots: Dict[NodeId, str]) -> PollResult:
        """Execute commit, reveal and tally for the given ballots.

        ``ballots`` maps voter id -> chosen option; voters absent from the
        map abstain.  Returns the common :class:`PollResult` every honest
        peer computes.
        """
        for voter, ballot in ballots.items():
            if ballot not in self.options:
                raise ConfigurationError(
                    f"voter {voter} cast unknown option {ballot!r}"
                )

        # Phase 1 — commit: interactive consistency over commitments.
        nonces = {
            voter: self._rng.fork(("nonce", voter)).randbytes(16)
            for voter in ballots
        }
        commitments = {
            voter: _commitment(ballots[voter], nonces[voter])
            for voter in ballots
        }
        commit_inputs = {
            node: commitments.get(node) for node in range(self.n)
        }
        commit_round = run_interactive_consistency(
            SimulationConfig(n=self.n, t=self.t, seed=self._phase_seed(1)),
            commit_inputs,
            behaviors=self.behaviors,
        )
        committed = self._common_vector(commit_round)

        # Phase 2 — reveal: openings disseminated the same way.
        reveal_inputs = {
            node: (
                (ballots[node], nonces[node]) if node in ballots else None
            )
            for node in range(self.n)
        }
        reveal_round = run_interactive_consistency(
            SimulationConfig(n=self.n, t=self.t, seed=self._phase_seed(2)),
            reveal_inputs,
            behaviors=self.behaviors,
        )
        revealed = self._common_vector(reveal_round)

        # Phase 3 — tally with commitment verification.
        tally: Counter = Counter()
        discarded = 0
        accepted = 0
        for node in range(self.n):
            opening = revealed.get(node)
            commitment = committed.get(node)
            if opening is None:
                continue  # abstained or omitted
            if commitment is None:
                discarded += 1  # revealed without having committed
                continue
            ballot, nonce = opening
            if _commitment(ballot, nonce) != commitment:
                discarded += 1  # equivocation attempt
                continue
            tally[ballot] += 1
            accepted += 1

        return self._decide(tally, accepted, discarded)

    # ------------------------------------------------------------------
    def _decide(
        self, tally: Counter, accepted: int, discarded: int
    ) -> PollResult:
        if not tally:
            raise ProtocolError("no valid ballots were revealed")
        best = max(tally.values())
        leaders = sorted(
            option for option, count in tally.items() if count == best
        )
        tie_broken = len(leaders) > 1
        tie_value: Optional[int] = None
        if tie_broken:
            # Unbiased common tie-break: a fresh ERNG run.
            result = run_erng(
                SimulationConfig(
                    n=self.n, t=self.t, seed=self._phase_seed(3)
                ),
                behaviors=self.behaviors,
            )
            byzantine = set(self.behaviors or ())
            values = {
                v
                for v in result.honest_outputs(byzantine).values()
                if v is not None
            }
            if len(values) != 1:
                raise ProtocolError("tie-break randomness did not converge")
            tie_value = values.pop()
            winner = leaders[tie_value % len(leaders)]
        else:
            winner = leaders[0]
        return PollResult(
            winner=winner,
            tally=dict(tally),
            revealed=accepted,
            discarded=discarded,
            tie_broken=tie_broken,
            tie_break_value=tie_value,
        )

    def _phase_seed(self, phase: int) -> int:
        material = hash_bytes(
            encode((self.seed, phase)), domain="poll-phase-seed"
        )
        return int.from_bytes(material[:8], "big")

    @staticmethod
    def _common_vector(result) -> Dict[NodeId, object]:
        vectors = {
            value for node, value in result.outputs.items()
        }
        if len(vectors) != 1:
            raise ProtocolError("interactive consistency diverged")
        return dict(vectors.pop())
