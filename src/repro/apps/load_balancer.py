"""Decentralized randomized load balancing (Appendix H, "Random Load
Balancing").

A centralized dispatcher is a single point of failure; here a cluster of
peers agrees on beacon randomness (ERNG) and every peer independently
computes the same task→worker assignment from it — rendezvous hashing
keyed by the common random value, so removing a failed worker reshuffles
only that worker's tasks.

Appendix H also suggests pre-generating randomness offline and *sealing*
it to the enclave; :class:`PregeneratedRandomness` implements exactly
that on top of :mod:`repro.sgx.sealing` — values are sealed to the
(platform, program) identity and unsealing under a different program
fails.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import decode, encode
from repro.crypto.hashing import hash_bytes
from repro.sgx.sealing import seal_data, unseal_data


class RandomizedLoadBalancer:
    """Deterministic task assignment from a common random value."""

    def __init__(self, workers: Sequence[str], beacon_value: int) -> None:
        if not workers:
            raise ConfigurationError("need at least one worker")
        if len(set(workers)) != len(workers):
            raise ConfigurationError("worker names must be unique")
        self.workers: List[str] = list(workers)
        self.beacon_value = beacon_value
        self._failed: set = set()

    # ------------------------------------------------------------------
    def _score(self, task_id: str, worker: str) -> bytes:
        material = encode((self.beacon_value, task_id, worker))
        return hash_bytes(material, domain="load-balancer")

    def assign(self, task_id: str) -> str:
        """Rendezvous assignment: the live worker with the highest score.

        Every peer holding the same beacon value computes the same answer;
        a failed worker's tasks migrate without moving anyone else's.
        """
        candidates = [w for w in self.workers if w not in self._failed]
        if not candidates:
            raise ConfigurationError("no live workers remain")
        return max(candidates, key=lambda w: self._score(task_id, w))

    def mark_failed(self, worker: str) -> None:
        if worker not in self.workers:
            raise ConfigurationError(f"unknown worker {worker!r}")
        self._failed.add(worker)

    def mark_recovered(self, worker: str) -> None:
        self._failed.discard(worker)

    def assignment_histogram(self, task_count: int) -> Dict[str, int]:
        """Distribution of ``task_count`` synthetic tasks over workers."""
        histogram: Dict[str, int] = {w: 0 for w in self.workers}
        for index in range(task_count):
            histogram[self.assign(f"task-{index}")] += 1
        return histogram


class PregeneratedRandomness:
    """A sealed pool of pre-generated random values (Appendix H).

    The pool is produced inside the enclave, sealed to (platform secret,
    program measurement), and later unsealed to serve values quickly at
    request time.  Draining past the pool raises rather than recycling —
    reuse of beacon randomness would reintroduce bias.
    """

    def __init__(
        self, platform_secret: bytes, measurement: bytes
    ) -> None:
        self._platform_secret = platform_secret
        self._measurement = measurement

    def generate_and_seal(
        self, count: int, bits: int, rng: DeterministicRNG
    ) -> bytes:
        """Draw ``count`` values of ``bits`` bits and seal them."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        values = tuple(rng.randbits(bits) for _ in range(count))
        return seal_data(
            self._platform_secret, self._measurement, encode(values), rng
        )

    def unseal_pool(self, sealed: bytes) -> "RandomnessPool":
        """Recover the pool; fails for a wrong platform/program."""
        raw = unseal_data(self._platform_secret, self._measurement, sealed)
        values = decode(raw)
        if not isinstance(values, tuple):
            raise ConfigurationError("sealed blob does not contain a pool")
        return RandomnessPool(list(values))


class RandomnessPool:
    """FIFO access to an unsealed pool of random values."""

    def __init__(self, values: List[int]) -> None:
        self._values = values
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return len(self._values) - self._cursor

    def draw(self) -> int:
        if self._cursor >= len(self._values):
            raise ConfigurationError("randomness pool exhausted")
        value = self._values[self._cursor]
        self._cursor += 1
        return value
