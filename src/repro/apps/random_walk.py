"""Byzantine-robust random walks (Appendix H, "Random Walks").

In dynamic P2P overlays, random walks keep the topology an expander — but
only if the hop choices are genuinely unbiased, which byzantine nodes
routinely subvert.  Following Guerraoui et al.'s virtual-node design, the
hop randomness here comes from a beacon epoch (one common ERNG output),
expanded into per-step choices through a deterministic PRG: every honest
node can recompute and audit the whole walk from the single agreed value.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.common.types import NodeId
from repro.net.topology import Topology


class RandomWalk:
    """A verifiable random walk over a topology, seeded by a beacon value."""

    def __init__(self, topology: Topology, beacon_value: int) -> None:
        self.topology = topology
        self.beacon_value = beacon_value

    def _step_rng(self, walk_id: object) -> DeterministicRNG:
        return DeterministicRNG(("random-walk", self.beacon_value)).fork(walk_id)

    def run(self, start: NodeId, steps: int, walk_id: object = 0) -> List[NodeId]:
        """Execute a ``steps``-hop walk; returns the visited path.

        The path is a pure function of (topology, beacon value, walk id):
        any peer holding the beacon output can recompute and verify it.
        """
        if not 0 <= start < self.topology.n:
            raise ConfigurationError(f"start node {start} out of range")
        if steps < 0:
            raise ConfigurationError("steps must be non-negative")
        rng = self._step_rng(walk_id)
        path = [start]
        current = start
        for _ in range(steps):
            neighbours = sorted(self.topology.neighbours(current))
            if not neighbours:
                break
            current = neighbours[rng.randrange(len(neighbours))]
            path.append(current)
        return path

    def verify(
        self, start: NodeId, path: Sequence[NodeId], walk_id: object = 0
    ) -> bool:
        """Re-derive the walk and compare — the audit any peer can run."""
        expected = self.run(start, max(0, len(path) - 1), walk_id)
        return list(path) == expected

    def endpoint_distribution(
        self, start: NodeId, steps: int, walks: int
    ) -> List[int]:
        """Endpoint histogram over many walk ids (mixing diagnostics).

        On a connected regular graph the distribution converges to
        uniform; tests use this to confirm unbiased hop selection.
        """
        counts = [0] * self.topology.n
        for walk_id in range(walks):
            path = self.run(start, steps, walk_id=walk_id)
            counts[path[-1]] += 1
        return counts
