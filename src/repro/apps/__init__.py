"""Applications built on ERB/ERNG (Appendix H).

Each module is a small but complete system exercising the public API:

* :mod:`repro.apps.beacon` — a hash-chained random beacon service driven
  by ERNG epochs (NIST-beacon style, but with distributed trust);
* :mod:`repro.apps.random_walk` — byzantine-robust random walks over a
  P2P topology, seeded by beacon output (the Guerraoui et al. use case);
* :mod:`repro.apps.shared_key` — group session-key derivation from a
  common unbiased random value;
* :mod:`repro.apps.load_balancer` — decentralized randomized load
  balancing with no single point of failure, including sealed
  pre-generated randomness (the Appendix H speed-up);
* :mod:`repro.apps.voting` — commit-reveal polls with interactive
  consistency for commitment freezing and ERNG tie-breaking.
"""

from repro.apps.beacon import BeaconRecord, RandomBeacon
from repro.apps.load_balancer import PregeneratedRandomness, RandomizedLoadBalancer
from repro.apps.random_walk import RandomWalk
from repro.apps.shared_key import GroupKeyAgreement, derive_group_key
from repro.apps.voting import CommitRevealPoll, PollResult

__all__ = [
    "BeaconRecord",
    "CommitRevealPoll",
    "GroupKeyAgreement",
    "PollResult",
    "PregeneratedRandomness",
    "RandomBeacon",
    "RandomWalk",
    "RandomizedLoadBalancer",
    "derive_group_key",
]
