"""A distributed random beacon (Appendix H, "Random Beacons").

Every epoch the peer network runs one ERNG instance; the resulting common
unbiased value is appended to a hash-chained public log, NIST-beacon
style — except no trusted third party exists: any ``t < N/2`` (or
``t ≤ N/3`` with the optimized protocol) byzantine peers can neither bias
nor predict the output.

The chain commits each epoch to its predecessor
(``digest = H(epoch || value || prev_digest)``), so a consumer who saw
record ``i`` can later verify that record ``i+k`` extends the same
history — retroactive rewriting requires breaking the hash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.config import SimulationConfig
from repro.common.errors import ProtocolError
from repro.common.serialization import encode
from repro.common.types import NodeId
from repro.core.erng import run_erng
from repro.core.erng_optimized import ClusterConfig, run_optimized_erng
from repro.crypto.hashing import hash_bytes


@dataclass(frozen=True)
class BeaconRecord:
    """One epoch of the beacon log."""

    epoch: int
    value: int
    prev_digest: bytes
    digest: bytes

    @staticmethod
    def compute_digest(epoch: int, value: int, prev_digest: bytes) -> bytes:
        return hash_bytes(
            encode((epoch, value, prev_digest)), domain="beacon-record"
        )


class RandomBeacon:
    """An ERNG-backed beacon service over a fixed peer population."""

    GENESIS = hash_bytes(b"beacon-genesis", domain="beacon-record")

    def __init__(
        self,
        n: int,
        t: int = -1,
        optimized: bool = False,
        cluster: Optional[ClusterConfig] = None,
        seed: int = 0,
        random_bits: int = 128,
        behaviors: Optional[Dict[NodeId, object]] = None,
    ) -> None:
        self.n = n
        self.t = t
        self.optimized = optimized
        self.cluster = cluster
        self.seed = seed
        self.random_bits = random_bits
        self.behaviors = behaviors
        self.log: List[BeaconRecord] = []

    # ------------------------------------------------------------------
    def next_beacon(self) -> BeaconRecord:
        """Run one ERNG epoch and append the result to the chain."""
        epoch = len(self.log)
        config = SimulationConfig(
            n=self.n,
            t=self.t,
            seed=self._epoch_seed(epoch),
            random_bits=self.random_bits,
        )
        if self.optimized:
            result = run_optimized_erng(
                config, cluster=self.cluster, behaviors=self.behaviors
            )
        else:
            result = run_erng(config, behaviors=self.behaviors)
        value = self._common_output(result)
        prev = self.log[-1].digest if self.log else self.GENESIS
        record = BeaconRecord(
            epoch=epoch,
            value=value,
            prev_digest=prev,
            digest=BeaconRecord.compute_digest(epoch, value, prev),
        )
        self.log.append(record)
        return record

    def _epoch_seed(self, epoch: int) -> int:
        material = hash_bytes(
            encode((self.seed, epoch, self.log[-1].digest if self.log else b"")),
            domain="beacon-epoch-seed",
        )
        return int.from_bytes(material[:8], "big")

    def _common_output(self, result) -> int:
        byzantine = set(self.behaviors or ())
        outputs = result.honest_outputs(byzantine)
        values = {v for v in outputs.values() if v is not None}
        if len(values) != 1:
            raise ProtocolError(
                f"beacon epoch failed to converge: honest outputs {values!r}"
            )
        return values.pop()

    # ------------------------------------------------------------------
    @staticmethod
    def verify_chain(records: Sequence[BeaconRecord]) -> bool:
        """Check hash-chain integrity of a beacon log prefix."""
        prev = RandomBeacon.GENESIS
        for index, record in enumerate(records):
            if record.epoch != index or record.prev_digest != prev:
                return False
            expected = BeaconRecord.compute_digest(
                record.epoch, record.value, record.prev_digest
            )
            if record.digest != expected:
                return False
            prev = record.digest
        return True
