"""A distributed random beacon (Appendix H, "Random Beacons").

Every epoch the peer network runs one ERNG instance; the resulting common
unbiased value is appended to a hash-chained public log, NIST-beacon
style — except no trusted third party exists: any ``t < N/2`` (or
``t ≤ N/3`` with the optimized protocol) byzantine peers can neither bias
nor predict the output.

The chain commits each epoch to its predecessor
(``digest = H(epoch || value || prev_digest)``), so a consumer who saw
record ``i`` can later verify that record ``i+k`` extends the same
history — retroactive rewriting requires breaking the hash.

Three execution modes, all producing **byte-identical chains**:

* **rebuild** (the default, the original one-shot shape): every epoch
  builds a fresh network and — with ``workers > 1`` — forks a fresh
  worker crew.
* **session** (``session=True``): epochs run back-to-back on one
  persistent :class:`~repro.net.session.EngineSession` — channels, caches
  and worker shards survive; only the per-epoch recycle (re-seed,
  relaunch, invalidate) runs between epochs.
* **pipelined** (:meth:`RandomBeacon.run_pipelined`): a whole batch of
  epochs executes as *one* engine run of a multi-epoch program.  Epoch
  ``e+1``'s INIT dissemination is staged in the same engine round whose
  ACK wave closes epoch ``e`` (the boundary work rides inside the final
  round instead of a separate setup phase), and the INIT crosses the wire
  one round later — the seed of epoch ``e+1`` derives from epoch ``e``'s
  digest, so one round is the pipelining floor.  Steady state is two
  rounds per epoch with zero per-epoch engine setup.

Chain semantics are identical in every mode: epoch ``e``'s contribution
at node ``i`` is the first ``random_bits`` draw of the RDRAND fork that a
fresh network seeded with ``epoch_seed(e)`` would give node ``i``, so the
pipelined program reproduces the sequential chain bit-for-bit (pinned by
tests/test_session.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import encode
from repro.common.types import NodeId, ProtocolMessage
from repro.core.erb import ErbCore
from repro.core.erng import ErngProgram, run_erng, xor_fold
from repro.core.erng_optimized import (
    ClusterConfig,
    OptimizedErngProgram,
    run_optimized_erng,
)
from repro.crypto.hashing import hash_bytes
from repro.net.session import EngineSession
from repro.sgx.program import EnclaveProgram
from repro.sgx.rdrand import RdRand


@dataclass(frozen=True)
class BeaconRecord:
    """One epoch of the beacon log."""

    epoch: int
    value: int
    prev_digest: bytes
    digest: bytes

    @staticmethod
    def compute_digest(epoch: int, value: int, prev_digest: bytes) -> bytes:
        return hash_bytes(
            encode((epoch, value, prev_digest)), domain="beacon-record"
        )


def epoch_seed(beacon_seed: int, epoch: int, prev_digest: bytes) -> int:
    """The engine seed of one epoch: chained off the previous digest
    (``b""`` for epoch 0), so epoch seeds are unpredictable until the
    previous epoch's value is public — and every execution mode derives
    the exact same seeds."""
    material = hash_bytes(
        encode((beacon_seed, epoch, prev_digest)),
        domain="beacon-epoch-seed",
    )
    return int.from_bytes(material[:8], "big")


def _epoch_contribution(
    seed: int, node_id: NodeId, random_bits: int
) -> int:
    """Node ``node_id``'s epoch contribution: the first ``random_bits``
    draw of the RDRAND fork a fresh network seeded with ``seed`` gives
    that node.  The pipelined program calls this instead of the shared
    engine RDRAND so its draws match the per-epoch-run modes exactly."""
    master = DeterministicRNG(("simulation", seed))
    return RdRand(master, node_id).random_bits(random_bits)


# ----------------------------------------------------------------------
# per-epoch program factories (module level: session recycle frames ship
# them to the persistent worker crew by pickle)
# ----------------------------------------------------------------------

class _ErngEpochFactory:
    def __init__(self, n: int, t: int, random_bits: int) -> None:
        self.n = n
        self.t = t
        self.random_bits = random_bits

    def __call__(self, node_id: NodeId) -> ErngProgram:
        return ErngProgram(
            node_id=node_id, n=self.n, t=self.t,
            random_bits=self.random_bits,
        )


class _OptimizedEpochFactory:
    def __init__(
        self, n: int, t: int, random_bits: int,
        cluster: ClusterConfig, early_stop: bool,
    ) -> None:
        self.n = n
        self.t = t
        self.random_bits = random_bits
        self.cluster = cluster
        self.early_stop = early_stop

    def __call__(self, node_id: NodeId) -> OptimizedErngProgram:
        return OptimizedErngProgram(
            node_id=node_id, n=self.n, t=self.t, cluster=self.cluster,
            random_bits=self.random_bits, early_stop=self.early_stop,
        )


class _PipelineFactory:
    def __init__(
        self, n: int, t: int, random_bits: int, beacon_seed: int,
        start_epoch: int, epochs: int, prev_digest: Optional[bytes],
    ) -> None:
        self.n = n
        self.t = t
        self.random_bits = random_bits
        self.beacon_seed = beacon_seed
        self.start_epoch = start_epoch
        self.epochs = epochs
        self.prev_digest = prev_digest

    def __call__(self, node_id: NodeId) -> "BeaconPipelineProgram":
        return BeaconPipelineProgram(
            node_id=node_id, n=self.n, t=self.t,
            random_bits=self.random_bits, beacon_seed=self.beacon_seed,
            start_epoch=self.start_epoch, epochs=self.epochs,
            prev_digest=self.prev_digest,
        )


# ----------------------------------------------------------------------
# the pipelined multi-epoch program
# ----------------------------------------------------------------------

class BeaconPipelineProgram(EnclaveProgram):
    """A batch of chained ERNG epochs as one engine run.

    Hosts the *real* :class:`ErbCore` state machines of the unoptimized
    ERNG, one set per epoch, with epoch-prefixed instance tags
    (``e<epoch>:rng-<j>``) multiplexed over the shared channels — the
    engine's per-destination envelopes coalesce whatever shares a round.

    Epoch hand-off happens in ``on_round_end``: once every core of epoch
    ``e`` has decided (round ``R``, the round whose phase-4 ACK wave
    acknowledged ``e``'s last ECHO burst), the node derives epoch
    ``e+1``'s seed from ``e``'s digest, draws its contribution, and
    stages the INIT multicast — in the *same engine round* ``R``, to
    cross the wire in ``R+1``.  Staging any earlier is impossible: the
    seed depends on ``e``'s outcome, which needs ``R``'s deliveries.
    That one-round floor is the pipelining depth bound the chain's
    seed-dependency imposes; :attr:`RandomBeacon.pipeline_stats` makes
    the window explicit (``staged_round[e+1] == decided_round[e]``,
    ``start_round[e+1] == decided_round[e] + 1``) and tests pin it.

    Honest populations only: under adversarial omissions nodes could
    start epochs in different rounds, which the lockstep round check
    (P5) would escalate into divergence halts — the per-epoch-run modes
    remain the adversarial path.
    """

    PROGRAM_NAME = "beacon-pipeline"
    PROGRAM_VERSION = "1"
    SPARSE_AWARE = True

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        t: int,
        *,
        beacon_seed: int,
        epochs: int,
        start_epoch: int = 0,
        prev_digest: Optional[bytes] = None,
        random_bits: int = 128,
    ) -> None:
        super().__init__()
        if epochs < 1:
            raise ConfigurationError("pipeline batch needs epochs >= 1")
        self.node_id = node_id
        self.n = n
        self.t = t
        self.random_bits = random_bits
        self.beacon_seed = beacon_seed
        self.epochs = epochs
        self.start_epoch = start_epoch
        # Seed chaining uses b"" before the first record; the record
        # chain itself anchors at GENESIS.
        self._prev_seed = prev_digest if prev_digest is not None else b""
        self._prev_record = (
            prev_digest if prev_digest is not None else RandomBeacon.GENESIS
        )
        self._epoch = 0                      # completed epochs this batch
        self._cores: Dict[str, ErbCore] = {}
        self._values: List[int] = []
        self._staged_rounds: List[int] = []
        self._start_rounds: List[int] = []
        self._decided_rounds: List[int] = []
        self._deadline = t + 2
        self._closing = False

    # ------------------------------------------------------------------
    def _begin_epoch(self, ctx, first: bool) -> None:
        epoch = self.start_epoch + self._epoch
        seed = epoch_seed(self.beacon_seed, epoch, self._prev_seed)
        contribution = _epoch_contribution(
            seed, ctx.node_id, self.random_bits
        )
        prefix = f"e{epoch}:rng-"
        self._cores = {
            f"{prefix}{j}": ErbCore(
                instance=f"{prefix}{j}",
                initiator=j,
                expected_seq=1,
                group_size=self.n,
                fault_bound=self.t,
            )
            for j in range(self.n)
        }
        # Round-begin staging transmits this round; round-end staging
        # transmits next round (the engine's Wait semantics).
        start = ctx.round if first else ctx.round + 1
        self._staged_rounds.append(ctx.round)
        self._start_rounds.append(start)
        self._deadline = start + self.t + 1
        self._cores[f"{prefix}{ctx.node_id}"].begin(ctx, contribution)

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1:
            self._begin_epoch(ctx, first=True)

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        core = self._cores.get(message.instance)
        if core is not None:
            core.handle_message(ctx, sender, message)

    def on_round_end(self, ctx) -> None:
        if self.has_output or not self._cores:
            return
        if ctx.round >= self._deadline:
            for core in self._cores.values():
                core.finish(ctx)
        if all(core.decided for core in self._cores.values()):
            self._complete_epoch(ctx)

    def on_protocol_end(self, ctx) -> None:
        # Truncated run (max_rounds too small): close the current epoch
        # with ⊥ fills and ship the completed prefix; the driver raises
        # if the batch came up short.
        if self.has_output:
            return
        self._closing = True
        if self._cores:
            for core in self._cores.values():
                core.finish(ctx)
            self._complete_epoch(ctx)
        else:  # pragma: no cover - round 1 never ran
            self._accept(ctx, ((), (), (), ()))

    def sparse_wake_round(self, rnd: int):
        if self.has_output:
            return None
        return max(rnd + 1, self._deadline)

    # ------------------------------------------------------------------
    def _complete_epoch(self, ctx) -> None:
        epoch = self.start_epoch + self._epoch
        final = {
            core.initiator: core.output
            for core in self._cores.values()
            if core.output is not None
        }
        value = xor_fold(final.values())
        digest = BeaconRecord.compute_digest(epoch, value, self._prev_record)
        self._values.append(value)
        self._decided_rounds.append(ctx.round)
        self._prev_seed = digest
        self._prev_record = digest
        self._epoch += 1
        self._cores = {}
        if self._epoch >= self.epochs or self._closing:
            self._accept(ctx, (
                tuple(self._values),
                tuple(self._staged_rounds),
                tuple(self._start_rounds),
                tuple(self._decided_rounds),
            ))
        else:
            self._begin_epoch(ctx, first=False)


class RandomBeacon:
    """An ERNG-backed beacon service over a fixed peer population.

    Keyword-only engine options (``workers``, ``extra``, ``tracer``,
    ``timing``) flow into every epoch's :class:`SimulationConfig`;
    ``session=True`` runs epochs on one persistent
    :class:`~repro.net.session.EngineSession` (fork once, run many)
    instead of rebuilding the world per epoch.  Close a session-mode
    beacon with :meth:`close` (or use it as a context manager).
    """

    GENESIS = hash_bytes(b"beacon-genesis", domain="beacon-record")

    def __init__(
        self,
        n: int,
        t: int = -1,
        optimized: bool = False,
        cluster: Optional[ClusterConfig] = None,
        seed: int = 0,
        random_bits: int = 128,
        behaviors: Optional[Dict[NodeId, object]] = None,
        *,
        session: bool = False,
        workers: int = 1,
        extra: Optional[dict] = None,
        tracer=None,
        timing=None,
    ) -> None:
        self.n = n
        self.t = t if t >= 0 else (n - 1) // 2
        self.optimized = optimized
        self.cluster = cluster
        self.seed = seed
        self.random_bits = random_bits
        self.behaviors = behaviors
        self.workers = workers
        self.extra = dict(extra) if extra else {}
        self.tracer = tracer
        self.timing = timing
        self.use_session = session
        self.log: List[BeaconRecord] = []
        #: Per-epoch round accounting of pipelined batches (aligned with
        #: the matching ``log`` entries): staged/start/decided rounds and
        #: the explicit overlap flag.
        self.pipeline_stats: List[dict] = []
        #: The engine's RunResult of the most recent epoch or batch —
        #: traffic/round stats for benchmarks.
        self.last_result = None
        self._session: Optional[EngineSession] = None

    # ------------------------------------------------------------------
    def _epoch_config(self, seed: int) -> SimulationConfig:
        return SimulationConfig(
            n=self.n,
            t=self.t,
            seed=seed,
            random_bits=self.random_bits,
            workers=self.workers,
            extra=dict(self.extra),
            tracer=self.tracer,
            timing=self.timing,
        )

    def _epoch_factory(self):
        if self.optimized:
            cluster = self.cluster or ClusterConfig()
            cluster.validate(self.n)
            return _OptimizedEpochFactory(
                self.n, self.t, self.random_bits, cluster,
                bool(self.extra.get("erng_early_stop", True)),
            )
        return _ErngEpochFactory(self.n, self.t, self.random_bits)

    def _epoch_max_rounds(self) -> int:
        if self.optimized:
            cluster = self.cluster or ClusterConfig()
            return cluster.resolved_gamma(self.n) + 5
        return self.t + 2

    def _ensure_session(self, factory) -> EngineSession:
        if self._session is None:
            config = self._epoch_config(self._epoch_seed(len(self.log)))
            if self.optimized:
                config.require_erng_opt_bound()
            else:
                config.require_erb_bound()
            self._session = EngineSession(
                config, factory, behaviors=self.behaviors
            )
        return self._session

    # ------------------------------------------------------------------
    def next_beacon(self) -> BeaconRecord:
        """Run one ERNG epoch and append the result to the chain."""
        epoch = len(self.log)
        seed = self._epoch_seed(epoch)
        if self.use_session:
            factory = self._epoch_factory()
            session = self._ensure_session(factory)
            result = session.run(
                self._epoch_max_rounds(),
                program_factory=factory, seed=seed,
            )
        else:
            config = self._epoch_config(seed)
            if self.optimized:
                result = run_optimized_erng(
                    config, cluster=self.cluster, behaviors=self.behaviors
                )
            else:
                result = run_erng(config, behaviors=self.behaviors)
        self.last_result = result
        value = self._common_output(result)
        return self._append(value)

    # ------------------------------------------------------------------
    def run_pipelined(self, epochs: int) -> List[BeaconRecord]:
        """Run ``epochs`` chained epochs as one pipelined engine run.

        Appends the batch to :attr:`log` (extending whatever the chain
        already holds) and records per-epoch round accounting in
        :attr:`pipeline_stats`.  Requires the unoptimized backend and an
        honest population — see :class:`BeaconPipelineProgram`.
        """
        if epochs < 1:
            raise ConfigurationError("run_pipelined needs epochs >= 1")
        if self.optimized:
            raise ConfigurationError(
                "pipelined epochs require the unoptimized ERNG backend "
                "(the optimized protocol's coin/cluster rounds are "
                "seed-locked; run session mode instead)"
            )
        if self.behaviors:
            raise ConfigurationError(
                "pipelined epochs require an honest population "
                "(cross-epoch lockstep); run per-epoch modes under "
                "adversarial behaviors"
            )
        start_epoch = len(self.log)
        factory = _PipelineFactory(
            self.n, self.t, self.random_bits, self.seed,
            start_epoch, epochs,
            self.log[-1].digest if self.log else None,
        )
        max_rounds = epochs * (self.t + 2) + 2
        seed = self._epoch_seed(start_epoch)
        if self.use_session:
            session = self._ensure_session(factory)
            result = session.run(
                max_rounds, program_factory=factory, seed=seed
            )
        else:
            config = self._epoch_config(seed)
            config.require_erb_bound()
            with EngineSession(config, factory) as session:
                result = session.run(max_rounds)
        self.last_result = result
        batch = self._common_output(result)
        values, staged, starts, decided = batch
        if len(values) != epochs:
            raise ProtocolError(
                f"pipelined batch truncated: {len(values)}/{epochs} "
                "epochs completed (max_rounds too small?)"
            )
        records = []
        for i, value in enumerate(values):
            records.append(self._append(value))
            self.pipeline_stats.append({
                "epoch": start_epoch + i,
                "staged_round": staged[i],
                "start_round": starts[i],
                "decided_round": decided[i],
                "rounds": decided[i] - starts[i] + 1,
                # Epoch i's INIT was staged in the engine round whose ACK
                # wave closed epoch i-1 — the pipelining overlap window.
                "overlaps_prev_ack_wave": (
                    i > 0 and staged[i] == decided[i - 1]
                ),
            })
        return records

    # ------------------------------------------------------------------
    def _append(self, value: int) -> BeaconRecord:
        epoch = len(self.log)
        prev = self.log[-1].digest if self.log else self.GENESIS
        record = BeaconRecord(
            epoch=epoch,
            value=value,
            prev_digest=prev,
            digest=BeaconRecord.compute_digest(epoch, value, prev),
        )
        self.log.append(record)
        return record

    def _epoch_seed(self, epoch: int) -> int:
        return epoch_seed(
            self.seed, epoch, self.log[-1].digest if self.log else b""
        )

    def _common_output(self, result):
        byzantine = set(self.behaviors or ())
        outputs = result.honest_outputs(byzantine)
        values = {v for v in outputs.values() if v is not None}
        if len(values) != 1:
            raise ProtocolError(
                f"beacon epoch failed to converge: honest outputs {values!r}"
            )
        return values.pop()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Retire the persistent engine session (no-op without one)."""
        if self._session is not None:
            self._session.close()
            self._session = None

    def __enter__(self) -> "RandomBeacon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def verify_chain(records: Sequence[BeaconRecord]) -> bool:
        """Check hash-chain integrity of a beacon log prefix."""
        prev = RandomBeacon.GENESIS
        for index, record in enumerate(records):
            if record.epoch != index or record.prev_digest != prev:
                return False
            expected = BeaconRecord.compute_digest(
                record.epoch, record.value, record.prev_digest
            )
            if record.digest != expected:
                return False
            prev = record.digest
        return True
