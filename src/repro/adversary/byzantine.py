"""Full-byzantine behaviours (A1/A2/A4-lookahead).

:class:`TamperAdversary` attacks any channel mode and demonstrates the
reduction: under FULL/MODELED channels every tampered message fails MAC
verification and is treated as omitted (Theorem A.2).

:class:`EquivocationForger` and :class:`LookaheadBiasAdversary` only bite
under ``ChannelSecurity.NONE`` — i.e. against the strawman protocol
(Algorithm 1), whose lack of enclave protections is exactly what Section
2.3 uses to motivate P1-P6.  They read and rewrite plaintext, which the
blinded channel makes impossible.

Campaign schedules reach :class:`TamperAdversary` through the fault kind
``tamper`` (:mod:`repro.campaign.schedule`) — the top of the Definition
A.5 hierarchy, and the class the sanitization invariant expects P4 to
eject (every tampered multicast is treated as omitted, so the tamperer
starves its own ACK quorum).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.adversary.behaviors import OSBehavior, Transmission
from repro.channel.peer_channel import WireMessage
from repro.common.types import MessageType, NodeId


class TamperAdversary(OSBehavior):
    """Flip ciphertext bits on every outgoing message (attack A2).

    Against a blinded channel the receiver's MAC check fails and the
    message counts as omitted; the tamperer also forfeits its ACKs and is
    churned out by halt-on-divergence.
    """

    def __init__(self, tamper_types: Optional[Set[MessageType]] = None) -> None:
        self._tamper_types = tamper_types
        self.tampered_count = 0

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        if self._tamper_types is not None:
            if wire.mtype not in self._tamper_types:
                return ((0, wire),)
        self.tampered_count += 1
        return ((0, wire.tampered_copy()),)


class EquivocationForger(OSBehavior):
    """Send value ``m`` to some peers and ``m'`` to the rest (attack A2).

    Only expressible against plaintext channels: the forged copy carries a
    rewritten payload.  Against the strawman broadcast this splits honest
    nodes' decisions; against ERB the rewrite is detected (MAC) and
    dropped.
    """

    def __init__(self, fooled: Set[NodeId], forged_payload: object) -> None:
        self._fooled = frozenset(fooled)
        self._forged_payload = forged_payload

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        if wire.receiver not in self._fooled:
            return ((0, wire),)
        if wire.opaque or wire.plain is None:
            # Cannot rewrite ciphertext without the channel key: forgery
            # degenerates into tampering, which the receiver rejects.
            return ((0, wire.tampered_copy()),)
        forged_plain = replace(wire.plain, payload=self._forged_payload)
        forged = replace(wire, plain=forged_plain)
        return ((0, forged),)


class LookaheadBiasAdversary(OSBehavior):
    """The look-ahead attack on distributed XOR randomness (attack A4).

    The byzantine OS withholds its own contribution, watches everyone
    else's plaintext contributions arrive, computes both candidate outputs
    (with and without its value), and releases its contribution only when
    that flips the result into the favourable set.  Against the strawman
    this yields bias approaching 2x on a predicate of probability 1/2;
    against ERNG it is impossible twice over — contributions are encrypted
    (P3) and a late release misses the round window (P5).
    """

    def __init__(
        self,
        self_id: NodeId,
        favourable: Callable[[int], bool],
        release_round: int = 2,
    ) -> None:
        self._self_id = self_id
        self._favourable = favourable
        self._release_round = release_round
        self._withheld: List[WireMessage] = []
        self._own_value: Optional[int] = None
        self._seen_contributions: Dict[NodeId, int] = {}
        self.released = False

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        if wire.mtype is MessageType.INIT:
            # Withhold our own contribution (possible in any mode)...
            self._withheld.append(wire)
            plain = wire.plain
            if not wire.opaque and plain is not None and isinstance(
                plain.payload, int
            ):
                # ...but *reading* it requires a plaintext channel (P3
                # denies this against the blinded channel).
                self._own_value = plain.payload
            return ()
        return ((0, wire),)

    def filter_receive(self, wire: WireMessage, rnd: int) -> bool:
        plain = wire.plain
        if (
            not wire.opaque
            and plain is not None
            and plain.type is MessageType.INIT
            and isinstance(plain.payload, int)
            and not wire.tampered
        ):
            self._seen_contributions[plain.initiator] = plain.payload
        return True

    def drain_injections(self, rnd: int) -> Iterable[Transmission]:
        if rnd < self._release_round or self.released or self._own_value is None:
            return ()
        without_me = 0
        for value in self._seen_contributions.values():
            without_me ^= value
        with_me = without_me ^ self._own_value
        if self._favourable(with_me) and not self._favourable(without_me):
            self.released = True
            return tuple((0, wire) for wire in self._withheld)
        # Otherwise stay silent: the honest-only XOR is already favourable,
        # or releasing would not help.
        return ()
