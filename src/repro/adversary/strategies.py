"""Coordinated multi-node adversary strategies.

:func:`chain_delay_strategy` builds the worst case of Section 6.3: the
byzantine nodes form a chain; each one forwards the broadcast value to
exactly one other byzantine node per round and is then eliminated (it
collected at most one ACK).  The value thus crawls through all ``f``
byzantine nodes before reaching an honest peer, stretching ERB to its
``min{f+2, t+2}`` bound — the linear growth visible in Fig. 2c.

These strategies are hand-coordinated (node roles depend on each other);
the campaign layer (:mod:`repro.campaign.runner`) instead *generates*
per-node schedules from a seed, trading coordination for sweepable,
shrinkable coverage.  Both compile down to the same
:class:`~repro.adversary.behaviors.OSBehavior` interface.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.adversary.behaviors import OSBehavior, Transmission
from repro.channel.peer_channel import WireMessage
from repro.common.types import MessageType, NodeId


class _ChainLink(OSBehavior):
    """Forward protocol messages only to the designated successor."""

    def __init__(self, successor: NodeId) -> None:
        self._successor = successor

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        if wire.mtype is MessageType.ACK:
            # ACKs flow normally; the chain manipulates broadcast values.
            return ((0, wire),)
        if wire.receiver == self._successor:
            return ((0, wire),)
        return ()


def chain_delay_strategy(
    byzantine_ids: Sequence[NodeId], honest_target: NodeId
) -> Dict[NodeId, OSBehavior]:
    """Behaviours implementing the delay chain.

    ``byzantine_ids`` is the chain order (the first should be the
    broadcast initiator); the last link releases the value to
    ``honest_target``, after which normal ERB flooding finishes the job in
    two more rounds.
    """
    if not byzantine_ids:
        return {}
    behaviours: Dict[NodeId, OSBehavior] = {}
    ids: List[NodeId] = list(byzantine_ids)
    for position, node in enumerate(ids):
        successor = ids[position + 1] if position + 1 < len(ids) else honest_target
        behaviours[node] = _ChainLink(successor)
    return behaviours
