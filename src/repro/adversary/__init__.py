"""Adversarial OS behaviours — the untrusted half of a peer.

The paper's attacker model (Section 2.2) is a byzantine *operating system*
under an honest enclave.  Accordingly, an adversary here never touches
enclave state; it manipulates wire messages: drop them (omission, A3),
hold them (delay, A4), re-send old ones (replay, A5), flip bits (forgery
attempt, A2), or — only when the channel security is ``NONE``, i.e. the
strawman protocol — read and rewrite plaintext (A1/A2 proper).

The failure-mode hierarchy of Definition A.5 maps onto these classes:

* honest           — no behaviour attached (``None``);
* general-omission — :class:`RandomOmission`, :class:`SelectiveOmission`;
* ROD              — adds :class:`DelayAdversary`, :class:`ReplayAdversary`;
* byzantine        — adds :class:`TamperAdversary`, :class:`EquivocationForger`,
  :class:`LookaheadBiasAdversary` (the latter two only bite under ``NONE``).

Two layers build on these primitives: :mod:`repro.adversary.strategies`
hand-coordinates multi-node attacks (the Fig. 2c delay chain), and the
fault-injection campaign (:mod:`repro.campaign.schedule`) compiles
declarative, serialisable fault schedules onto them so whole adversary
grids can be swept, shrunk and replayed from the command line.  The
prose version of this model — which class defeats which property, and
which engine fast paths disable themselves under it — lives in
``docs/ADVERSARIES.md``.
"""

from repro.adversary.behaviors import CompositeBehavior, OSBehavior, PassthroughBehavior
from repro.adversary.classification import (
    ActionTrace,
    WireAction,
    classify_actions,
    classify_all,
    classify_node,
)
from repro.adversary.byzantine import (
    EquivocationForger,
    LookaheadBiasAdversary,
    TamperAdversary,
)
from repro.adversary.omission import (
    RandomOmission,
    ReceiveOmission,
    SelectiveOmission,
)
from repro.adversary.rod import DelayAdversary, ReplayAdversary
from repro.adversary.strategies import chain_delay_strategy

__all__ = [
    "ActionTrace",
    "WireAction",
    "classify_actions",
    "classify_all",
    "classify_node",
    "CompositeBehavior",
    "DelayAdversary",
    "EquivocationForger",
    "LookaheadBiasAdversary",
    "OSBehavior",
    "PassthroughBehavior",
    "RandomOmission",
    "ReceiveOmission",
    "ReplayAdversary",
    "SelectiveOmission",
    "TamperAdversary",
    "chain_delay_strategy",
]
