"""The OS-behaviour interface the simulator consults on every message.

A behaviour's powers mirror what a malicious OS can do with SGX traffic:

* :meth:`filter_send` — for each wire message the enclave wants sent, the
  OS decides what actually hits the network: nothing (omission), the
  message now (``delay=0``), the message ``k`` rounds late, any number of
  *stored or modified copies* (replay / forgery attempts — the blinded
  channel rejects them, but the OS is free to try);
* :meth:`filter_receive` — drop an arriving message before the enclave
  sees it (receive omission);
* :meth:`drain_injections` — emit messages out of thin air at the start
  of a round (replays captured earlier, forgeries under ``NONE`` channels).

Behaviours never see decrypted payloads unless the simulation runs with
``ChannelSecurity.NONE`` (the strawman demos): under FULL the payload is
ciphertext, and under MODELED the convention is that behaviours only read
routing metadata and flags, mirroring exactly what a real OS observes.

Attaching *any* behaviour to a node makes the engine route that node's
traffic through the per-wire path (the envelope and parallel fast paths
require homogeneous honest rounds — see ``docs/ARCHITECTURE.md``), so
adversarial semantics never depend on which fast path a run would
otherwise take.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.channel.peer_channel import WireMessage

#: A transmission decision: (delay_in_rounds, wire_message_to_send).
Transmission = Tuple[int, WireMessage]


class OSBehavior:
    """Base class: the honest OS (forwards everything unchanged)."""

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        """Decide what to transmit for one enclave-written message."""
        return ((0, wire),)

    def filter_receive(self, wire: WireMessage, rnd: int) -> bool:
        """Return False to drop an arriving message before the enclave."""
        return True

    def drain_injections(self, rnd: int) -> Iterable[Transmission]:
        """Messages the OS fabricates/replays at the start of round ``rnd``."""
        return ()

    def on_round_end(self, rnd: int) -> None:
        """Bookkeeping hook (e.g. rotating a target list each round)."""


class PassthroughBehavior(OSBehavior):
    """Explicit honest behaviour (identical to attaching no behaviour)."""


class CompositeBehavior(OSBehavior):
    """Chain several behaviours; each stage filters the previous stage's
    output.  Lets tests combine e.g. omission + replay into one ROD node."""

    def __init__(self, stages: List[OSBehavior]) -> None:
        if not stages:
            raise ValueError("CompositeBehavior needs at least one stage")
        self._stages = list(stages)

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        current: List[Transmission] = [(0, wire)]
        for stage in self._stages:
            next_batch: List[Transmission] = []
            for delay, item in current:
                for extra_delay, out in stage.filter_send(item, rnd):
                    next_batch.append((delay + extra_delay, out))
            current = next_batch
        return current

    def filter_receive(self, wire: WireMessage, rnd: int) -> bool:
        return all(stage.filter_receive(wire, rnd) for stage in self._stages)

    def drain_injections(self, rnd: int) -> Iterable[Transmission]:
        out: List[Transmission] = []
        for stage in self._stages:
            out.extend(stage.drain_injections(rnd))
        return out

    def on_round_end(self, rnd: int) -> None:
        for stage in self._stages:
            stage.on_round_end(rnd)
