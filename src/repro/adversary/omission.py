"""Omission adversaries — the general-omission model's full power (A3).

Since the blinded channel hides message *content* (P3), the only omission
strategies left to a byzantine OS are content-oblivious ones: random drops
and drops keyed on the *identity* of the counterparty.  The latter is
exactly the attack halt-on-divergence (P4) punishes: a node that omits its
multicast to more than ``N - 1 - t`` peers cannot collect ``t`` ACKs and
its enclave churns itself out of the network.

Campaign schedules (:mod:`repro.campaign.schedule`) reach these classes
through the fault kinds ``omit_send`` / ``omit_recv``
(:class:`SelectiveOmission`), ``random_omission``
(:class:`RandomOmission`) and ``mute_recv`` (:class:`ReceiveOmission`) —
all classified ``GENERAL_OMISSION`` per Definition A.5.
"""

from __future__ import annotations

from typing import Collection, Iterable

from repro.adversary.behaviors import OSBehavior, Transmission
from repro.channel.peer_channel import WireMessage
from repro.common.rng import DeterministicRNG
from repro.common.types import NodeId


class RandomOmission(OSBehavior):
    """Drop each outgoing/incoming message independently at random."""

    def __init__(
        self,
        rng: DeterministicRNG,
        send_drop_p: float = 0.0,
        recv_drop_p: float = 0.0,
    ) -> None:
        self._rng = rng
        self._send_drop_p = send_drop_p
        self._recv_drop_p = recv_drop_p

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        if self._send_drop_p and self._rng.bernoulli(self._send_drop_p):
            return ()
        return ((0, wire),)

    def filter_receive(self, wire: WireMessage, rnd: int) -> bool:
        if self._recv_drop_p and self._rng.bernoulli(self._recv_drop_p):
            return False
        return True


class SelectiveOmission(OSBehavior):
    """Omit messages to/from a fixed set of victims (identity-based A3).

    This is the equivocation-by-omission strategy of attack A3's second
    type: broadcast correctly to a few nodes and starve the rest hoping to
    split the final decision.  Under ERB the sender then misses ACKs from
    the starved majority and halts.
    """

    def __init__(
        self,
        victims: Collection[NodeId],
        omit_sends: bool = True,
        omit_receives: bool = False,
    ) -> None:
        self._victims = frozenset(victims)
        self._omit_sends = omit_sends
        self._omit_receives = omit_receives

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        if self._omit_sends and wire.receiver in self._victims:
            return ()
        return ((0, wire),)

    def filter_receive(self, wire: WireMessage, rnd: int) -> bool:
        if self._omit_receives and wire.sender in self._victims:
            return False
        return True


class ReceiveOmission(OSBehavior):
    """Drop *all* incoming traffic (a mute listener).

    Such a node still multicasts; honest peers ACK it, so it survives —
    but it never accepts anything, matching the general-omission model's
    receive-omission faults.
    """

    def filter_receive(self, wire: WireMessage, rnd: int) -> bool:
        return False
