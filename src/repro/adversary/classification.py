"""Executable Definition A.5: classify a peer's observed failure mode.

The paper defines four progressively stronger modes of the peer channel —
honest ⊂ general-omission ⊂ ROD ⊂ byzantine — by *what the OS did to the
data the enclave wrote*.  When a simulation runs with
``config.extra["trace_actions"] = True`` (or any tracer with a memory
sink, see :mod:`repro.obs.tracer`) the engine records every OS action on
every wire message; :func:`classify_node` then maps each node's action
multiset to the *minimal* mode of Definition A.5 that explains it:

* only faithful forwarding                        → ``HONEST``
* plus send/receive drops                         → ``GENERAL_OMISSION``
* plus delays and re-injections (replays)         → ``ROD``
* plus modifications (bit-flips, forged copies)   → ``BYZANTINE``

This is the observable counterpart of the reduction theorems: the tests
verify that under blinded channels the *effect* of a BYZANTINE-classified
node on honest outputs is indistinguishable from some ROD node's — which
is Theorem A.2 stated operationally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.common.config import AdversaryModel
from repro.common.types import NodeId, Round


class WireAction(enum.Enum):
    """One observed OS action on one wire message."""

    DELIVER = "deliver"        # forwarded unchanged, on time
    DROP_SEND = "drop_send"    # enclave wrote it, OS never transmitted it
    DROP_RECV = "drop_recv"    # arrived, OS hid it from the enclave
    DELAY = "delay"            # transmitted k >= 1 rounds late
    REPLAY = "replay"          # an old wire re-injected
    MODIFY = "modify"          # transmitted a modified copy


#: Which failure mode first permits each action (Definition A.5).
_ACTION_MODE: Dict[WireAction, AdversaryModel] = {
    WireAction.DELIVER: AdversaryModel.HONEST,
    WireAction.DROP_SEND: AdversaryModel.GENERAL_OMISSION,
    WireAction.DROP_RECV: AdversaryModel.GENERAL_OMISSION,
    WireAction.DELAY: AdversaryModel.ROD,
    WireAction.REPLAY: AdversaryModel.ROD,
    WireAction.MODIFY: AdversaryModel.BYZANTINE,
}

_MODE_ORDER = [
    AdversaryModel.HONEST,
    AdversaryModel.GENERAL_OMISSION,
    AdversaryModel.ROD,
    AdversaryModel.BYZANTINE,
]


@dataclass(frozen=True)
class ActionRecord:
    """One traced event: node ``actor`` performed ``action`` in ``rnd``."""

    actor: NodeId
    rnd: Round
    action: WireAction


@dataclass
class ActionTrace:
    """All traced OS actions of one simulation run."""

    records: List[ActionRecord] = field(default_factory=list)

    def record(self, actor: NodeId, rnd: Round, action: WireAction) -> None:
        self.records.append(ActionRecord(actor=actor, rnd=rnd, action=action))

    def actions_of(self, node: NodeId) -> List[ActionRecord]:
        return [r for r in self.records if r.actor == node]

    def counts_of(self, node: NodeId) -> Dict[WireAction, int]:
        counts: Dict[WireAction, int] = {}
        for record in self.records:
            if record.actor == node:
                counts[record.action] = counts.get(record.action, 0) + 1
        return counts


def classify_actions(actions: Iterable[WireAction]) -> AdversaryModel:
    """Minimal Definition A.5 mode permitting every observed action."""
    worst = AdversaryModel.HONEST
    for action in actions:
        mode = _ACTION_MODE[action]
        if _MODE_ORDER.index(mode) > _MODE_ORDER.index(worst):
            worst = mode
    return worst


#: Wire-event action strings that correspond to Definition A.5 actions.
#: The tracer additionally emits ``send`` / ``flush`` / ``reject`` /
#: ``omit_dead`` events that have no counterpart in the definition (they
#: describe honest transmissions and channel bookkeeping, not OS
#: misbehaviour) — those are excluded so the view reproduces the legacy
#: ``ActionTrace`` records exactly.
_WIRE_ACTION_BY_VALUE: Dict[str, WireAction] = {
    action.value: action for action in WireAction
}


def trace_from_wire_events(events: Iterable) -> ActionTrace:
    """Rebuild an :class:`ActionTrace` from tracer wire events.

    ``events`` is any iterable of :class:`repro.obs.events.WireEvent`-like
    objects (duck-typed: ``actor`` / ``rnd`` / ``action`` attributes).
    Events whose ``actor`` is None or whose action is not one of the
    Definition A.5 actions are skipped, making the result record-for-record
    identical to what the pre-tracer engine produced.
    """
    trace = ActionTrace()
    records = trace.records
    for event in events:
        actor = event.actor
        if actor is None:
            continue
        action = _WIRE_ACTION_BY_VALUE.get(event.action)
        if action is not None:
            records.append(ActionRecord(actor=actor, rnd=event.rnd, action=action))
    return trace


def classify_node(trace: ActionTrace, node: NodeId) -> AdversaryModel:
    """Classify one node from a run's trace."""
    return classify_actions(
        record.action for record in trace.actions_of(node)
    )


def classify_all(trace: ActionTrace, n: int) -> Dict[NodeId, AdversaryModel]:
    """Per-node classification for a whole network."""
    return {node: classify_node(trace, node) for node in range(n)}
