"""ROD-model additions: delay (A4) and replay (A5).

Both attacks are *attempted* faithfully and defeated by different layers:

* a delayed message arrives stamped with its original round number, and
  lockstep execution (P5, enforced by the trusted clock) makes the
  receiving enclave treat a wrong-round message as omitted;
* a replayed wire message carries a counter at or below the receiver's
  replay-guard high-water mark (P6) and is rejected by the channel.

Together with the omission classes these span the ROD (replay-omission-
delay) model of Definition A.5; campaign schedules reach them through
the fault kinds ``delay`` and ``replay``
(:mod:`repro.campaign.schedule`).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.adversary.behaviors import OSBehavior, Transmission
from repro.channel.peer_channel import WireMessage


class DelayAdversary(OSBehavior):
    """Hold every outgoing message for ``delay_rounds`` rounds (A4)."""

    def __init__(self, delay_rounds: int = 1) -> None:
        if delay_rounds < 0:
            raise ValueError("delay must be non-negative")
        self._delay = delay_rounds

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        return ((self._delay, wire),)


class ReplayAdversary(OSBehavior):
    """Record every outgoing wire message and re-send copies later (A5).

    ``burst`` controls how many stored messages are re-injected per round.
    The replays pass through the network like any other traffic; the
    receiving channel's freshness counter rejects them.
    """

    def __init__(self, replay_after_rounds: int = 1, burst: int = 16) -> None:
        self._replay_after = replay_after_rounds
        self._burst = burst
        self._stored: List[tuple] = []  # (ready_round, wire)
        self.replays_sent = 0

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        self._stored.append((rnd + self._replay_after, wire))
        return ((0, wire),)

    def drain_injections(self, rnd: int) -> Iterable[Transmission]:
        ready = [item for item in self._stored if item[0] <= rnd]
        if not ready:
            return ()
        batch = ready[: self._burst]
        for item in batch:
            self._stored.remove(item)
        self.replays_sent += len(batch)
        return tuple((0, wire) for _, wire in batch)
