"""Encrypt-then-MAC authenticated encryption.

This is the composition the blinded-channel proof (Theorem A.1) relies on:
``ct1 = SKE.Enc(key1, m)``, ``ct2 = MAC.Auth(key2, ct1 || ad)`` where ``ad``
is optional associated data (the channel binds the program hash and the
sender/receiver pair through it).  Decryption verifies the tag *first* and
refuses to touch the ciphertext otherwise — a forged message is therefore
indistinguishable from an omitted one, which is the crux of the
byzantine-to-ROD reduction (Theorem A.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import IntegrityError
from repro.common.rng import DeterministicRNG
from repro.crypto import mac, stream_cipher


@dataclass(frozen=True)
class AeadKey:
    """A channel key pair: ``enc_key`` for SKE, ``mac_key`` for the MAC."""

    enc_key: bytes
    mac_key: bytes

    @staticmethod
    def generate(rng: DeterministicRNG) -> "AeadKey":
        return AeadKey(
            enc_key=stream_cipher.ske_gen(rng),
            mac_key=mac.mac_gen(rng),
        )


class AEAD:
    """Stateless encrypt-then-MAC box over an :class:`AeadKey`."""

    #: bytes added on top of the plaintext: nonce + MAC tag
    OVERHEAD = stream_cipher.NONCE_SIZE + mac.TAG_SIZE

    def __init__(self, key: AeadKey) -> None:
        self._key = key

    def seal(
        self, plaintext: bytes, rng: DeterministicRNG, associated_data: bytes = b""
    ) -> bytes:
        """Encrypt and authenticate ``plaintext`` (binding ``associated_data``)."""
        ct = stream_cipher.ske_encrypt(self._key.enc_key, plaintext, rng)
        tag = mac.mac_auth(self._key.mac_key, ct + associated_data)
        return ct + tag

    def open(self, sealed: bytes, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on any tampering."""
        if len(sealed) < self.OVERHEAD:
            raise IntegrityError("sealed message too short")
        ct, tag = sealed[: -mac.TAG_SIZE], sealed[-mac.TAG_SIZE :]
        if not mac.mac_verify(self._key.mac_key, ct + associated_data, tag):
            raise IntegrityError("MAC verification failed")
        return stream_cipher.ske_decrypt(self._key.enc_key, ct)
