"""Collision-resistant hashing (the ``H`` of Fig. 4).

A thin, domain-separated wrapper around SHA-256.  Domain separation matters
because the same hash is used for program measurements (MRENCLAVE), message
digests inside ACKs (``H(val)``), and key derivation: without distinct
prefixes a value hashed in one role could be replayed in another.
"""

from __future__ import annotations

import hashlib

DIGEST_SIZE = 32


def hash_bytes(data: bytes, domain: str = "") -> bytes:
    """SHA-256 of ``data`` under the given domain-separation label."""
    h = hashlib.sha256()
    if domain:
        h.update(b"repro-hash:" + domain.encode("utf-8") + b"\x00")
    h.update(data)
    return h.digest()


def hash_hex(data: bytes, domain: str = "") -> str:
    """Hex form of :func:`hash_bytes` (handy for logging and ids)."""
    return hash_bytes(data, domain).hex()


def hash_to_int(data: bytes, modulus: int, domain: str = "") -> int:
    """Hash ``data`` to an integer in ``[0, modulus)``.

    Used by the Schnorr scheme to derive challenges.  Expands the digest
    until it has at least 128 bits of slack over the modulus so the
    reduction bias is negligible.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    target_bits = modulus.bit_length() + 128
    material = b""
    counter = 0
    while len(material) * 8 < target_bits:
        material += hash_bytes(
            counter.to_bytes(4, "big") + data, domain=domain or "hash-to-int"
        )
        counter += 1
    return int.from_bytes(material, "big") % modulus
