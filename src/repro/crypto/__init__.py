"""From-scratch cryptographic primitives for the blinded peer channel.

The paper's Fig. 4 construction (``PeerCh_sgx``) needs exactly four
ingredients, all provided here with the interfaces used in the proofs:

* ``SKE = (Gen, Enc, Dec)`` — a CPA-secure symmetric cipher
  (:mod:`repro.crypto.stream_cipher`, SHA-256 in counter mode with a
  random nonce);
* ``MAC = (Gen, Auth, Vrfy)`` — a message authentication code
  (:mod:`repro.crypto.mac`, HMAC-SHA256 built from the hash directly);
* ``KeyEx`` — a key-exchange protocol (:mod:`repro.crypto.dh`,
  finite-field Diffie-Hellman over the RFC 3526 2048-bit MODP group);
* ``H`` — a collision-resistant hash (:mod:`repro.crypto.hashing`).

:mod:`repro.crypto.schnorr` additionally provides Schnorr signatures over
the same group for the RBsig baseline (Algorithm 4), and
:mod:`repro.crypto.kdf` an HKDF used to split a DH shared secret into the
(encryption, MAC) key pair of the channel.

Nothing here depends on third-party packages; only :mod:`hashlib` from the
standard library is used, in keeping with the "build every substrate"
reproduction rule.
"""

from repro.crypto.aead import AEAD, AeadKey
from repro.crypto.dh import DiffieHellman, DhKeyPair
from repro.crypto.hashing import hash_bytes, hash_hex, hash_to_int
from repro.crypto.kdf import hkdf
from repro.crypto.mac import mac_auth, mac_gen, mac_verify
from repro.crypto.schnorr import (
    SchnorrKeyPair,
    SchnorrSignature,
    schnorr_keygen,
    schnorr_verify,
)
from repro.crypto.stream_cipher import ske_decrypt, ske_encrypt, ske_gen

__all__ = [
    "AEAD",
    "AeadKey",
    "DhKeyPair",
    "DiffieHellman",
    "SchnorrKeyPair",
    "SchnorrSignature",
    "hash_bytes",
    "hash_hex",
    "hash_to_int",
    "hkdf",
    "mac_auth",
    "mac_gen",
    "mac_verify",
    "schnorr_keygen",
    "schnorr_verify",
    "ske_decrypt",
    "ske_encrypt",
    "ske_gen",
]
