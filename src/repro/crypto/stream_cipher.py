"""CPA-secure symmetric encryption, ``SKE = (Gen, Enc, Dec)``.

SHA-256 in counter mode: the keystream block ``i`` for nonce ``v`` is
``SHA256(key || v || i)``, XORed against the plaintext.  A fresh random
nonce per encryption gives CPA security under the standard PRF modeling of
the compression function.  Integrity is *not* provided here — the channel
composes this cipher with the MAC in encrypt-then-MAC order
(:mod:`repro.crypto.aead`), exactly as in Fig. 4 of the paper.
"""

from __future__ import annotations

import hashlib

from repro.common.errors import CryptoError
from repro.common.rng import DeterministicRNG

KEY_SIZE = 32
NONCE_SIZE = 16
_BLOCK = 32


def ske_gen(rng: DeterministicRNG) -> bytes:
    """Sample a fresh encryption key."""
    return rng.randbytes(KEY_SIZE)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for i in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(key + nonce + i.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:length]


def ske_encrypt(key: bytes, plaintext: bytes, rng: DeterministicRNG) -> bytes:
    """Encrypt ``plaintext``; the random nonce is prepended to the body."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"SKE key must be {KEY_SIZE} bytes, got {len(key)}")
    nonce = rng.randbytes(NONCE_SIZE)
    stream = _keystream(key, nonce, len(plaintext))
    body = bytes(p ^ s for p, s in zip(plaintext, stream))
    return nonce + body


def ske_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt a ciphertext produced by :func:`ske_encrypt`."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"SKE key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(ciphertext) < NONCE_SIZE:
        raise CryptoError("ciphertext shorter than nonce")
    nonce, body = ciphertext[:NONCE_SIZE], ciphertext[NONCE_SIZE:]
    stream = _keystream(key, nonce, len(body))
    return bytes(c ^ s for c, s in zip(body, stream))
