"""HMAC-SHA256 message authentication code, ``MAC = (Gen, Auth, Vrfy)``.

Implemented directly from the hash function (RFC 2104) rather than via
:mod:`hmac`, in keeping with the build-the-substrate rule; the test-suite
cross-checks it against the standard library implementation.
"""

from __future__ import annotations

import hashlib

from repro.common.rng import DeterministicRNG
from repro.crypto.hashing import DIGEST_SIZE

_BLOCK_SIZE = 64  # SHA-256 block size in bytes
_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))

KEY_SIZE = 32
TAG_SIZE = DIGEST_SIZE


def mac_gen(rng: DeterministicRNG) -> bytes:
    """Sample a fresh MAC key."""
    return rng.randbytes(KEY_SIZE)


def _prepare_key(key: bytes) -> bytes:
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    return key.ljust(_BLOCK_SIZE, b"\x00")


def mac_auth(key: bytes, message: bytes) -> bytes:
    """Compute the HMAC-SHA256 tag of ``message`` under ``key``."""
    padded = _prepare_key(key)
    inner_key = bytes(a ^ b for a, b in zip(padded, _IPAD))
    outer_key = bytes(a ^ b for a, b in zip(padded, _OPAD))
    inner = hashlib.sha256(inner_key + message).digest()
    return hashlib.sha256(outer_key + inner).digest()


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


def mac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Verify ``tag`` over ``message``; constant-time comparison."""
    return _constant_time_eq(mac_auth(key, message), tag)
