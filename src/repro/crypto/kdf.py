"""HKDF-style key derivation (RFC 5869 extract-and-expand over HMAC-SHA256).

Splits a Diffie-Hellman shared secret into independent channel keys: the
blinded channel needs one key for the stream cipher and one for the MAC,
and deriving both from a single exchange with distinct ``info`` labels is
the standard way to get them without a second round trip.
"""

from __future__ import annotations

from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.mac import mac_auth


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = bytes(DIGEST_SIZE)
    return mac_auth(salt, input_key_material)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: grow PRK into ``length`` output bytes labeled ``info``."""
    if length > 255 * DIGEST_SIZE:
        raise ValueError("HKDF output length too large")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = mac_auth(prk, block + info + bytes([counter]))
        output += block
        counter += 1
    return output[:length]


def hkdf(
    input_key_material: bytes,
    info: bytes,
    length: int,
    salt: bytes = b"",
) -> bytes:
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)
