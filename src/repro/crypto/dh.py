"""Finite-field Diffie-Hellman key exchange (the ``KeyEx`` of Fig. 4).

Uses the RFC 3526 2048-bit MODP group (a safe prime, generator 2).  Each
pair of enclaves runs one exchange during the setup phase; the shared
secret is split into the channel's (encryption, MAC) keys through HKDF.

The smaller RFC 2409 768-bit Oakley group is also exported for tests that
need many exchanges or signatures to stay fast; production-fidelity code
paths default to the 2048-bit group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.common.rng import DeterministicRNG

# RFC 3526, group 14 (2048-bit MODP, safe prime, generator 2).
MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)

# RFC 2409, Oakley group 1 (768-bit MODP, safe prime, generator 2).
MODP_768_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A63A3620FFFFFFFFFFFFFFFF",
    16,
)


@dataclass(frozen=True)
class DhGroup:
    """A safe-prime group description ``(p, g)`` with subgroup order (p-1)/2."""

    prime: int
    generator: int

    @property
    def subgroup_order(self) -> int:
        return (self.prime - 1) // 2

    @property
    def byte_width(self) -> int:
        return (self.prime.bit_length() + 7) // 8

    def validate_public(self, value: int) -> None:
        """Reject trivially malformed public values (small-subgroup guard)."""
        if not 2 <= value <= self.prime - 2:
            raise CryptoError("DH public value out of range")


MODP_2048 = DhGroup(prime=MODP_2048_PRIME, generator=2)
MODP_768 = DhGroup(prime=MODP_768_PRIME, generator=2)


def test_group() -> DhGroup:
    """A smaller group for unit tests that perform many exponentiations."""
    return MODP_768


@dataclass(frozen=True)
class DhKeyPair:
    """A private exponent and the matching public value ``g^x mod p``."""

    group: DhGroup
    private: int
    public: int


class DiffieHellman:
    """One party's side of a Diffie-Hellman exchange."""

    def __init__(self, rng: DeterministicRNG, group: DhGroup = MODP_2048) -> None:
        self._group = group
        self._rng = rng

    @property
    def group(self) -> DhGroup:
        return self._group

    def generate_keypair(self) -> DhKeyPair:
        x = self._rng.randint(2, self._group.subgroup_order - 1)
        return DhKeyPair(
            group=self._group,
            private=x,
            public=pow(self._group.generator, x, self._group.prime),
        )

    def shared_secret(self, keypair: DhKeyPair, peer_public: int) -> bytes:
        """Compute ``peer_public ** private mod p`` as fixed-width bytes."""
        self._group.validate_public(peer_public)
        secret = pow(peer_public, keypair.private, self._group.prime)
        return secret.to_bytes(self._group.byte_width, "big")
