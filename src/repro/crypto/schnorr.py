"""Schnorr signatures over a safe-prime group.

The RBsig baseline (Algorithm 4, adapted from Lamport et al.) authenticates
relayed broadcast messages with digital signatures.  The paper's point
(Appendix B.1) is that ERB *avoids* signatures entirely — the blinded
channel's symmetric MAC plus appended identities achieves the same effect
at a fraction of the cost — so this module exists to make that comparison
measurable: the benchmark harness counts both signature bytes on the wire
and verification work.

Construction (Fiat-Shamir transformed identification scheme) in the
subgroup of order ``q = (p-1)/2`` of a safe-prime group:

* keygen:  ``x <- [1, q)``, ``y = g^x mod p``
* sign:    ``k <- [1, q)``, ``r = g^k``, ``e = H(r || y || m) mod q``,
           ``s = k + x*e mod q``; signature is ``(e, s)``
* verify:  ``r' = g^s * y^(-e) mod p``; accept iff ``H(r' || y || m) = e``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRNG
from repro.crypto.dh import MODP_768, DhGroup
from repro.crypto.hashing import hash_to_int

#: Modeled wire size of one signature (e, s) in bytes, used by MODELED-mode
#: traffic accounting for the RBsig baseline (two group-order integers).
SIGNATURE_BYTES = 2 * 96


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(e, s)``."""

    e: int
    s: int

    def to_tuple(self) -> tuple:
        return (self.e, self.s)

    @staticmethod
    def from_tuple(raw: tuple) -> "SchnorrSignature":
        e, s = raw
        return SchnorrSignature(e=e, s=s)


@dataclass(frozen=True)
class SchnorrKeyPair:
    """A signing key ``x`` and verification key ``y = g^x``."""

    group: DhGroup
    private: int
    public: int

    def sign(self, message: bytes, rng: DeterministicRNG) -> SchnorrSignature:
        group = self.group
        q = group.subgroup_order
        k = rng.randint(1, q - 1)
        r = pow(group.generator, k, group.prime)
        e = _challenge(group, r, self.public, message)
        s = (k + self.private * e) % q
        return SchnorrSignature(e=e, s=s)


def schnorr_keygen(
    rng: DeterministicRNG, group: DhGroup = MODP_768
) -> SchnorrKeyPair:
    """Sample a fresh signing key pair."""
    x = rng.randint(1, group.subgroup_order - 1)
    return SchnorrKeyPair(
        group=group, private=x, public=pow(group.generator, x, group.prime)
    )


def _challenge(group: DhGroup, r: int, public: int, message: bytes) -> int:
    width = group.byte_width
    material = (
        r.to_bytes(width, "big") + public.to_bytes(width, "big") + message
    )
    return hash_to_int(material, group.subgroup_order, domain="schnorr")


def schnorr_verify(
    group: DhGroup, public: int, message: bytes, signature: SchnorrSignature
) -> bool:
    """Verify a signature against the public key ``y``."""
    q = group.subgroup_order
    if not (0 <= signature.e < q and 0 <= signature.s < q):
        return False
    if not 2 <= public <= group.prime - 2:
        return False
    # r' = g^s * y^(-e) mod p
    y_inv_e = pow(public, q - (signature.e % q), group.prime)
    r_prime = (pow(group.generator, signature.s, group.prime) * y_inv_e) % group.prime
    return _challenge(group, r_prime, public, message) == signature.e
