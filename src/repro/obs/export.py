"""Trace export: JSONL persistence and the human-readable timeline.

A trace file is one JSON object per line, each tagged with its event
``kind`` (see :mod:`repro.obs.events`).  The format round-trips
losslessly: ``read_trace(write_trace(events)) == events``.

``render_timeline`` turns an event stream into the per-round table the
``python -m repro inspect`` subcommand prints: phases entered, bytes on
the wire, omissions/rejections, halts, and decisions per round, plus
decision and churn detail lines.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.obs.events import (
    ChurnEvent,
    DecisionEvent,
    EnvelopeEvent,
    HaltEvent,
    MetaEvent,
    PhaseEvent,
    RoundSpan,
    TimingEvent,
    WireEvent,
    event_from_dict,
    event_to_dict,
)


class JsonlSink:
    """A tracer sink streaming events to a JSONL file."""

    active = True

    def __init__(self, path) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def handle(self, event) -> None:
        self._fh.write(json.dumps(event_to_dict(event), separators=(",", ":")))
        self._fh.write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_trace(events: Iterable[object], path) -> None:
    """Persist an event sequence as JSONL."""
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), separators=(",", ":")))
            fh.write("\n")


def read_trace(path) -> List[object]:
    """Load a JSONL trace back into typed events."""
    events: List[object] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def charged_bytes_by_round(events: Iterable[object]) -> Dict[int, int]:
    """Sum the charged wire-event sizes per round.

    By construction this equals ``TrafficStats.bytes_by_round`` for the
    run that produced the trace (the engine emits a charged wire event at
    every ``record_send`` call site).
    """
    totals: Dict[int, int] = {}
    for event in events:
        if isinstance(event, WireEvent) and event.charged:
            totals[event.rnd] = totals.get(event.rnd, 0) + event.size
    return totals


def render_timeline(events: Sequence[object]) -> str:
    """Render a per-round timeline of a trace (the ``inspect`` view)."""
    rounds: Dict[int, Dict[str, object]] = {}

    def row(rnd: int) -> Dict[str, object]:
        entry = rounds.get(rnd)
        if entry is None:
            entry = rounds[rnd] = {
                "phases": [],
                "span": None,
                "halts": [],
                "decisions": [],
            }
        return entry

    churn_events: List[ChurnEvent] = []
    timing_events: List[TimingEvent] = []
    machine: Dict[str, object] = {}
    for event in events:
        if isinstance(event, PhaseEvent):
            row(event.rnd)["phases"].append(event.phase)
        elif isinstance(event, RoundSpan):
            row(event.rnd)["span"] = event
        elif isinstance(event, HaltEvent):
            row(event.rnd)["halts"].append(event)
        elif isinstance(event, DecisionEvent):
            row(event.rnd)["decisions"].append(event)
        elif isinstance(event, ChurnEvent):
            churn_events.append(event)
        elif isinstance(event, TimingEvent):
            timing_events.append(event)
        elif isinstance(event, MetaEvent) and not machine:
            machine = event.machine

    wire_bytes = charged_bytes_by_round(events)
    total_bytes = sum(
        entry["span"].bytes for entry in rounds.values() if entry["span"]
    )
    lines: List[str] = [
        f"trace: {len(events)} events over {len(rounds)} round(s), "
        f"{total_bytes} bytes on the wire",
    ]
    if machine:
        stamp = ", ".join(
            f"{key}={machine[key]}"
            for key in ("git_rev", "cpu_count", "workers")
            if key in machine
        )
        if stamp:
            lines.append(f"machine: {stamp}")
    lines += [
        "",
        f"{'rnd':>4}  {'phases':<44}  {'bytes':>9}  {'omissions':>9}  "
        f"{'rejections':>10}  {'halts':>12}  {'decided':>7}",
    ]
    for rnd in sorted(rounds):
        entry = rounds[rnd]
        span = entry["span"]
        phases = "→".join(entry["phases"]) or "-"
        halted = sorted(
            {h.node for h in entry["halts"]}
            | set(span.halted if span else ())
        )
        halts = ",".join(str(n) for n in halted) if halted else "-"
        lines.append(
            f"{rnd:>4}  {phases:<44}  "
            f"{span.bytes if span else wire_bytes.get(rnd, 0):>9}  "
            f"{span.omissions if span else 0:>9}  "
            f"{span.rejections if span else 0:>10}  {halts:>12}  "
            f"{span.decided if span else len(entry['decisions']):>7}"
        )
        if span is not None and rnd in wire_bytes and wire_bytes[rnd] != span.bytes:
            lines.append(
                f"      !! wire events sum to {wire_bytes[rnd]} bytes "
                f"but the round span recorded {span.bytes}"
            )

    envelopes = [e for e in events if isinstance(e, EnvelopeEvent)]
    if envelopes:
        crossings = len(envelopes)
        carried = sum(e.count for e in envelopes)
        physical = sum(e.size for e in envelopes)
        ratio = carried / crossings if crossings else 1.0
        lines.append("")
        lines.append(
            f"envelopes: {crossings} link crossings carrying {carried} "
            f"messages ({ratio:.1f}x coalesced), {physical} physical bytes "
            f"vs {total_bytes} logical"
        )

    if timing_events:
        lines.append("")
        lines.append("timing (top buckets per round; full breakdown via "
                     "`python -m repro report`):")
        for t in timing_events:
            top = sorted(t.buckets.items(), key=lambda kv: -kv[1])[:3]
            detail = ", ".join(
                f"{name} {seconds * 1e3:.1f}ms" for name, seconds in top
            )
            shards = f", {len(t.shards)} shards" if t.shards else ""
            lines.append(
                f"  round {t.rnd}: {t.wall * 1e3:.1f}ms wall — "
                f"{detail or 'unattributed'}{shards}"
            )

    halts = [h for entry in rounds.values() for h in entry["halts"]]
    if halts:
        lines.append("")
        lines.append("halts:")
        for h in halts:
            lines.append(
                f"  round {h.rnd}: node {h.node} — {h.acks}/{h.threshold} "
                f"acks ({h.reason})"
            )

    decisions = [d for entry in rounds.values() for d in entry["decisions"]]
    if decisions:
        lines.append("")
        lines.append(f"decisions ({len(decisions)}):")
        shown = decisions[:8]
        for d in shown:
            tag = f" [{d.instance}]" if d.instance else ""
            lines.append(
                f"  round {d.rnd}: node {d.node} ({d.program}{tag}) "
                f"accepted {d.value}"
            )
        if len(decisions) > len(shown):
            lines.append(f"  ... and {len(decisions) - len(shown)} more")

    if churn_events:
        lines.append("")
        lines.append("churn instances:")
        for c in churn_events:
            ejected = c.ejected or "-"
            lines.append(
                f"  instance {c.instance}: {c.rounds} rounds, "
                f"live byzantine {c.live_byzantine}, ejected {ejected}, "
                f"agreement {'held' if c.agreement_held else 'BROKEN'}"
            )

    return "\n".join(lines)
