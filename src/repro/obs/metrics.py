"""Metrics registry: counters, gauges, histograms, and wall-clock timers.

The registry is deliberately dependency-free and duck-typed: anything
with ``counter`` / ``gauge`` / ``histogram`` getters can stand in for a
:class:`MetricsRegistry` (``TrafficStats.publish`` and the benchmark
sidecar both rely only on that surface).

Profiling hooks (the crypto / serialization timers in
:mod:`repro.channel.peer_channel`) go through the module-level
:data:`PROFILER` so the hot path pays a single attribute check when
profiling is off.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution with p50/p95/max summaries.

    Samples are kept verbatim up to ``max_samples``; past that the stream
    is decimated 2:1 (every other new sample kept), which preserves the
    quantile estimates well enough for benchmark-scale inputs without
    unbounded memory.
    """

    __slots__ = ("_samples", "_sorted", "count", "total", "max_samples", "_skip")

    def __init__(self, max_samples: int = 65536) -> None:
        self._samples: List[float] = []
        self._sorted = False
        self.count = 0
        self.total = 0.0
        self.max_samples = max_samples
        self._skip = False

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self._samples) >= self.max_samples:
            self._skip = not self._skip
            if self._skip:
                return
            del self._samples[::2]
        self._samples.append(value)
        self._sorted = False

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(1, math.ceil(p / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }

    def dump(self) -> Dict[str, object]:
        """Lossless-enough export for cross-process merging: exact count
        and total, plus the retained (possibly decimated) samples."""
        return {
            "count": self.count,
            "total": self.total,
            "samples": list(self._samples),
        }

    def merge_dump(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`dump` from another process into this histogram.

        Counts and totals add exactly (the invariant the parallel-engine
        profiler test pins); samples concatenate and re-decimate, so the
        quantile estimates stay benchmark-grade, not byte-exact.
        """
        self.count += int(data["count"])
        self.total += float(data["total"])
        self._samples.extend(data["samples"])
        self._sorted = False
        while len(self._samples) > self.max_samples:
            del self._samples[::2]


class _Timer:
    """Context manager feeding wall-clock seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Named counters, gauges and histograms for one measurement scope."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("channel.write_s"): ...``"""
        return _Timer(self.histogram(name))

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Snapshot every metric (the benchmark sidecar format)."""
        return {
            "counters": {
                name: metric.value for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.snapshot()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def dump(self) -> Dict[str, Dict[str, object]]:
        """Exact-valued export for cross-process merging (histograms keep
        their samples, unlike the summary-only :meth:`as_dict`)."""
        return {
            "counters": {
                name: metric.value for name, metric in self._counters.items()
            },
            "gauges": {
                name: metric.value for name, metric in self._gauges.items()
            },
            "histograms": {
                name: metric.dump()
                for name, metric in self._histograms.items()
            },
        }

    def merge_dump(self, data: Dict[str, Dict[str, object]]) -> None:
        """Fold another process's :meth:`dump` into this registry.

        Counters and histogram counts/totals add exactly; gauges take the
        incoming value (point-in-time semantics — last write wins).  This
        is how the parallel engine's coordinator re-absorbs worker-side
        PROFILER observations that would otherwise die with the fork.
        """
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist in data.get("histograms", {}).items():
            self.histogram(name).merge_dump(hist)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class Profiler:
    """Process-wide wall-clock profiling switch.

    Disabled by default: instrumented call sites pay one ``enabled``
    check and nothing else.  ``enable()`` attaches a registry; every
    ``observe`` feeds a histogram in it.
    """

    __slots__ = ("enabled", "registry")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: Optional[MetricsRegistry] = None

    def enable(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.enabled = True
        return self.registry

    def disable(self) -> None:
        self.enabled = False
        self.registry = None

    def observe(self, name: str, seconds: float) -> None:
        if self.registry is not None:
            self.registry.histogram(name).observe(seconds)

    def time(self, name: str) -> _Timer:
        assert self.registry is not None, "enable() the profiler first"
        return self.registry.timer(name)


#: The singleton the instrumented hot paths check.
PROFILER = Profiler()
