"""Typed trace events — the vocabulary of the observability layer.

Every record the tracer emits is one of the dataclasses below.  They are
deliberately flat and JSON-primitive (ints, floats, strings, bools,
lists) so a trace round-trips losslessly through the JSONL exporter in
:mod:`repro.obs.export`.

The event kinds mirror the paper's evaluation vocabulary:

* :class:`PhaseEvent` — the engine entering one of the six documented
  round phases (:data:`ROUND_PHASES`);
* :class:`WireEvent` — one OS-level action on one wire message
  (transmit, drop, delay, replay, modify, reject, ...), generalizing the
  Definition A.5 ``ActionTrace``;
* :class:`EnvelopeEvent` — one *physical* link crossing of the round
  envelope layer: how many logical messages it coalesced and the bytes
  that actually crossed (the compression ``repro inspect`` reports);
* :class:`RoundSpan` — the closing summary of one round (bytes, wall
  time, omissions, halts) — the unit Fig. 2/3 aggregate over;
* :class:`HaltEvent` — halt-on-divergence firing (P4): ACK count vs
  threshold;
* :class:`DecisionEvent` — a program accepting its output;
* :class:`ProtocolEvent` — protocol-specific milestones (ERB quorum,
  cluster election in the optimized ERNG, FINAL sets, ...);
* :class:`ChurnEvent` — one instance of the Appendix D churn process
  (ejections, live byzantine count, agreement);
* :class:`CampaignEvent` — one finished fault-injection campaign case
  (:mod:`repro.campaign`): the grid cell, its verdict, and the path of
  the shrunk reproducer artifact if it failed;
* :class:`TimingEvent` — one round's phase-attributed wall-clock
  breakdown (emitted when a run is both traced and timed, see
  :mod:`repro.obs.timing`);
* :class:`MetaEvent` — run provenance (the machine stamp of
  :mod:`repro.obs.machine`), emitted once at the head of a trace so
  timing comparisons across trace files stay stamp-aware.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import ClassVar, Dict, List, Optional

#: The six phases of one engine round, in execution order (the round
#: anatomy documented at the top of :mod:`repro.net.simulator`).
ROUND_PHASES = ("begin", "transmit", "deliver", "ack_wave", "halt_check", "end")

#: Wire actions that are *charged* to the traffic statistics when they
#: occur (the message crossed the network).  The remaining actions
#: (drops, delays-in-flight, rejections) are omissions or bookkeeping.
WIRE_SEND_ACTIONS = ("send", "deliver", "replay", "modify", "flush")


@dataclass
class PhaseEvent:
    """The engine entered phase ``phase`` of round ``rnd``.

    ``count`` is the number of items the phase starts with: staged
    multicasts (begin/transmit), wires to deliver (deliver), queued ACKs
    (ack_wave), pending multicast handles (halt_check), live nodes (end).
    """

    kind: ClassVar[str] = "phase"
    rnd: int
    phase: str
    count: int = 0


@dataclass
class WireEvent:
    """One observed action on one wire message.

    ``action`` is one of ``send`` (honest transmission), ``deliver`` /
    ``drop_send`` / ``drop_recv`` / ``delay`` / ``replay`` / ``modify``
    (the Definition A.5 OS actions, with the acting node in ``actor``),
    ``flush`` (a previously delayed wire entering the network), ``reject``
    (failed channel verification) or ``omit_dead`` (receiver halted).

    ``charged`` marks the events whose ``size`` was billed to the traffic
    statistics — summing charged sizes per round reproduces
    ``TrafficStats.bytes_by_round`` exactly.
    """

    kind: ClassVar[str] = "wire"
    rnd: int
    sender: int
    receiver: int
    size: int
    action: str
    mtype: Optional[str] = None
    actor: Optional[int] = None
    charged: bool = False


@dataclass
class EnvelopeEvent:
    """One physical link crossing of the round-envelope layer.

    All messages node ``sender`` transmitted to node ``receiver`` in round
    ``rnd`` during one wave (``transmit`` or ``ack``) crossed as a single
    envelope of ``size`` physical bytes carrying ``count`` logical
    messages.  Wire events keep reporting the *logical* view, so traces of
    envelope runs stay comparable to per-wire traces; envelope events are
    the extra layer that makes the coalescing visible.
    """

    kind: ClassVar[str] = "envelope"
    rnd: int
    sender: int
    receiver: int
    count: int
    size: int
    wave: str = "transmit"


@dataclass
class RoundSpan:
    """Closing summary of one executed round."""

    kind: ClassVar[str] = "round"
    rnd: int
    bytes: int
    seconds: float
    omissions: int = 0
    rejections: int = 0
    live: int = 0
    decided: int = 0
    halted: List[int] = field(default_factory=list)


@dataclass
class HaltEvent:
    """Halt-on-divergence (P4): a multicast missed its ACK threshold."""

    kind: ClassVar[str] = "halt"
    rnd: int
    node: int
    acks: int
    threshold: int
    reason: str = "divergence"


@dataclass
class DecisionEvent:
    """A program accepted its output ('accept' in the pseudocode)."""

    kind: ClassVar[str] = "decision"
    rnd: int
    node: int
    program: str
    value: str = ""
    instance: str = ""


@dataclass
class ProtocolEvent:
    """A protocol-specific milestone (quorum reached, cluster election,
    FINAL multicast, ...).  ``data`` holds small JSON-primitive details."""

    kind: ClassVar[str] = "protocol"
    rnd: int
    node: int
    name: str
    instance: str = ""
    data: Dict[str, object] = field(default_factory=dict)


@dataclass
class ChurnEvent:
    """One instance of the Appendix D sanitization process."""

    kind: ClassVar[str] = "churn"
    instance: int
    live_byzantine: int
    rounds: int
    agreement_held: bool
    ejected: List[int] = field(default_factory=list)
    rnd: int = 0


@dataclass
class CampaignEvent:
    """One finished case of a fault-injection campaign sweep.

    ``violations`` lists the names of the broken invariants (empty means
    the case passed); ``artifact`` is the path of the minimal-reproducer
    JSON when the failure was shrunk and persisted.  A campaign run with
    a :class:`~repro.obs.export.JsonlSink` attached therefore doubles as
    the machine-readable sweep summary.
    """

    kind: ClassVar[str] = "campaign"
    index: int
    protocol: str
    n: int
    t: int
    strategy: str
    seed: int
    rounds: int
    halted: List[int] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    artifact: str = ""
    rnd: int = 0


@dataclass
class TimingEvent:
    """One round's phase-attributed wall-clock breakdown.

    ``buckets`` maps the :data:`repro.obs.timing.PHASE_BUCKETS` names to
    seconds; their sum covers the round's measured ``wall`` (the
    collector charges the residual to ``other``).  ``shards`` carries
    the parallel engine's per-shard busy/idle split when present.
    """

    kind: ClassVar[str] = "timing"
    rnd: int
    wall: float
    buckets: Dict[str, float] = field(default_factory=dict)
    shards: List[dict] = field(default_factory=list)


@dataclass
class MetaEvent:
    """Run provenance: the machine stamp (git rev, cpu_count, workers)."""

    kind: ClassVar[str] = "meta"
    machine: Dict[str, object] = field(default_factory=dict)
    rnd: int = 0


#: All event classes, keyed by their ``kind`` tag (used by the exporter).
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        PhaseEvent,
        WireEvent,
        EnvelopeEvent,
        RoundSpan,
        HaltEvent,
        DecisionEvent,
        ProtocolEvent,
        ChurnEvent,
        CampaignEvent,
        TimingEvent,
        MetaEvent,
    )
}


def event_to_dict(event) -> Dict[str, object]:
    """Flatten an event to a JSON-ready dict tagged with its ``kind``."""
    payload = {"kind": event.kind}
    payload.update(asdict(event))
    return payload


def event_from_dict(payload: Dict[str, object]):
    """Rebuild a typed event from :func:`event_to_dict` output."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    return cls(**data)
