"""Machine provenance stamps for benchmark history and run sidecars.

A wall-clock number without its machine is an anecdote: the same
benchmark case differs 3x between a laptop and a one-core CI container.
Every persisted measurement — ``BENCH_engine.json`` history entries,
``--timing-out`` / ``--metrics-out`` sidecars, trace files — therefore
carries the same stamp (git rev, CPU count, worker count), and the
regression gate in :mod:`repro.obs.bench` only compares entries whose
stamps are comparable.
"""

from __future__ import annotations

import os
import subprocess
from pathlib import Path
from typing import Dict, Optional


def git_revision() -> Optional[str]:
    """The repo's short git rev, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def machine_stamp(
    workers: Optional[int] = None,
    data_plane: Optional[str] = None,
    scheduler: Optional[str] = None,
    suite: Optional[str] = None,
    transport: Optional[str] = None,
) -> Dict:
    """Provenance fields for persisted measurements.

    Timestamp-only entries from different machines are incomparable;
    stamping the git rev, CPU count, worker count and — for parallel
    runs — the engine data plane ("shm" or "pickle") and round scheduler
    ("dense" or "sparse") makes a history line reproducible evidence
    rather than an anecdote.  Real-network runs additionally stamp the
    ``transport`` ("tcp"); simulated entries carry none.
    """
    stamp: Dict = {
        "git_rev": git_revision(),
        "cpu_count": os.cpu_count(),
    }
    if workers is not None:
        stamp["workers"] = workers
    if data_plane is not None:
        stamp["data_plane"] = data_plane
    if scheduler is not None:
        stamp["scheduler"] = scheduler
    if suite is not None:
        stamp["suite"] = suite
    if transport is not None:
        stamp["transport"] = transport
    return stamp


def stamps_comparable(a: Dict, b: Dict) -> bool:
    """Whether two stamped entries measure the same machine shape.

    Comparable means same CPU count and same worker count (and both
    actually stamped) — the two parameters that change what a throughput
    number physically means.  Parallel entries additionally key on the
    engine data plane: a shared-memory number is no evidence about a
    pickle-pipe number.  The round scheduler ("dense" vs "sparse") is an
    axis for the same reason — a sparse round loop measures a different
    quantity.  So is the benchmark ``suite``: beacon sustained-load rows
    measure service epochs, not raw engine sweeps.  And so is the
    ``transport``: a real-TCP wall clock (``transport="tcp"``) measures
    sockets and kernels, never comparable with a simulated number (which
    carries no transport field at all).  These fields may legitimately
    be absent (entries predating them carry none and stay comparable
    with each other).  Git revs are expected to differ; that is the
    regression being looked for.
    """
    for key in ("cpu_count", "workers"):
        if a.get(key) is None or b.get(key) is None:
            return False
        if a[key] != b[key]:
            return False
    if a.get("data_plane") != b.get("data_plane"):
        return False
    if a.get("suite") != b.get("suite"):
        return False
    if a.get("transport") != b.get("transport"):
        return False
    return a.get("scheduler") == b.get("scheduler")
