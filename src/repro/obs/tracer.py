"""The tracer: the single emission point for all trace events.

A :class:`Tracer` fans events out to *sinks*.  A sink is anything with a
``handle(event)`` method; sinks with ``active = False`` (the
:class:`NullSink`) are never called, and a tracer whose sinks are all
inactive reports ``enabled = False`` — the engine checks that one boolean
before constructing any event object, so the default
(:data:`NULL_TRACER`) run pays nothing beyond the check itself.

The tracer *subsumes* the old ``ActionTrace`` of Definition A.5: wire
events carry the acting node and the action name, and
``repro.adversary.classification.trace_from_wire_events`` rebuilds an
identical ``ActionTrace`` view from them, so ``classify_node`` keeps
working unchanged on traced runs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.obs.events import (
    CampaignEvent,
    ChurnEvent,
    DecisionEvent,
    EnvelopeEvent,
    HaltEvent,
    PhaseEvent,
    ProtocolEvent,
    WireEvent,
)

#: Longest ``repr`` recorded for a decision value (traces stay compact).
_VALUE_REPR_LIMIT = 160


class NullSink:
    """The zero-overhead default: declares itself inactive so the tracer
    never even constructs events for it."""

    active = False

    def handle(self, event) -> None:  # pragma: no cover - never called
        pass


class MemorySink:
    """Retains every event in order (tests, in-process views)."""

    active = True

    def __init__(self) -> None:
        self.events: List[object] = []

    def handle(self, event) -> None:
        self.events.append(event)


def _jsonable(value):
    """Coerce protocol-event detail values to JSON primitives so traces
    round-trip losslessly."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    return repr(value)


class Tracer:
    """Routes structured events from the engine and protocols to sinks."""

    def __init__(self, *sinks) -> None:
        self.sinks = list(sinks)
        self._active = [s for s in self.sinks if getattr(s, "active", True)]
        #: The engine's fast-path guard: construct events only when True.
        self.enabled = bool(self._active)

    @classmethod
    def memory(cls) -> "Tracer":
        """A tracer retaining its events in memory (``.events``)."""
        return cls(MemorySink())

    # ------------------------------------------------------------------
    @property
    def events(self) -> Optional[List[object]]:
        """The retained event list, if any sink keeps one (else None)."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        return None

    def wire_events(self) -> Iterable[WireEvent]:
        """The retained wire-level events (empty if nothing is retained)."""
        events = self.events
        if events is None:
            return ()
        return (e for e in events if isinstance(e, WireEvent))

    # ------------------------------------------------------------------
    def emit(self, event) -> None:
        for sink in self._active:
            sink.handle(event)

    def close(self) -> None:
        """Flush and close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # ---- typed helpers (no-ops while disabled) ------------------------
    def phase(self, rnd: int, phase: str, count: int = 0) -> None:
        if self.enabled:
            self.emit(PhaseEvent(rnd=rnd, phase=phase, count=count))

    def wire(
        self,
        rnd: int,
        wire,
        action: str,
        actor: Optional[int] = None,
        charged: bool = False,
    ) -> None:
        if self.enabled:
            mtype = getattr(wire.mtype, "value", None)
            self.emit(
                WireEvent(
                    rnd=rnd,
                    sender=wire.sender,
                    receiver=wire.receiver,
                    size=wire.size,
                    action=action,
                    mtype=mtype,
                    actor=actor,
                    charged=charged,
                )
            )

    def wire_fanout(
        self,
        rnd: int,
        wires,
        action: str = "send",
        actor: Optional[int] = None,
        charged: bool = True,
    ) -> None:
        """Emit one :class:`WireEvent` per wire of a batched fan-out write.

        Identical to calling :meth:`wire` for each wire in order, so a
        trace of a batched transmit reconstructs the same
        ``ActionTrace``/byte accounting as the per-wire path.
        """
        if self.enabled:
            for wire in wires:
                self.wire(rnd, wire, action, actor=actor, charged=charged)

    def envelope(
        self,
        rnd: int,
        sender: int,
        receiver: int,
        count: int,
        size: int,
        wave: str = "transmit",
    ) -> None:
        """Record one physical link crossing of the envelope layer."""
        if self.enabled:
            self.emit(
                EnvelopeEvent(
                    rnd=rnd,
                    sender=sender,
                    receiver=receiver,
                    count=count,
                    size=size,
                    wave=wave,
                )
            )

    def halt(self, rnd: int, node: int, acks: int, threshold: int) -> None:
        if self.enabled:
            self.emit(
                HaltEvent(rnd=rnd, node=node, acks=acks, threshold=threshold)
            )

    def decision(
        self, rnd: int, node: int, program: str, value, instance: str = ""
    ) -> None:
        if self.enabled:
            self.emit(
                DecisionEvent(
                    rnd=rnd,
                    node=node,
                    program=program,
                    value=repr(value)[:_VALUE_REPR_LIMIT],
                    instance=instance,
                )
            )

    def protocol(
        self, name: str, node: int, rnd: int, instance: str = "", **data
    ) -> None:
        if self.enabled:
            self.emit(
                ProtocolEvent(
                    rnd=rnd,
                    node=node,
                    name=name,
                    instance=instance,
                    data={key: _jsonable(value) for key, value in data.items()},
                )
            )

    def churn(
        self,
        instance: int,
        live_byzantine: int,
        rounds: int,
        agreement_held: bool,
        ejected: Iterable[int] = (),
    ) -> None:
        if self.enabled:
            self.emit(
                ChurnEvent(
                    instance=instance,
                    live_byzantine=live_byzantine,
                    rounds=rounds,
                    agreement_held=agreement_held,
                    ejected=list(ejected),
                )
            )

    def campaign_case(
        self,
        index: int,
        protocol: str,
        n: int,
        t: int,
        strategy: str,
        seed: int,
        rounds: int,
        halted: Iterable[int] = (),
        violations: Iterable[str] = (),
        artifact: str = "",
    ) -> None:
        if self.enabled:
            self.emit(
                CampaignEvent(
                    index=index,
                    protocol=protocol,
                    n=n,
                    t=t,
                    strategy=strategy,
                    seed=seed,
                    rounds=rounds,
                    halted=list(halted),
                    violations=list(violations),
                    artifact=artifact,
                )
            )


#: The default tracer: permanently disabled, shared by every untraced run.
NULL_TRACER = Tracer()
