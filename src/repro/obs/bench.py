"""Bench-history regression gate.

``BENCH_engine.json`` accumulates one history entry per benchmark run
(:mod:`benchmarks.test_engine_throughput`).  This module compares the
newest entry against the best *comparable* prior entry and fails loudly
on a real regression:

* two entries are comparable only when both carry a machine stamp
  (:mod:`repro.obs.machine`) and agree on ``cpu_count``, ``workers``,
  ``scale`` and the parallel engine's ``data_plane`` — numbers measured
  on different hardware, sweep sizes or coordinator transports are
  anecdotes, not evidence, and are never compared;
* a case regresses when its newest ``messages_per_sec`` falls more than
  ``threshold`` (default 15%) below the best comparable prior run of the
  same case;
* ``parallel_speedup_vs_serial`` additionally has a ratchet floor: it
  must not drop below the minimum any comparable prior entry recorded.

Exit-code contract (enforced by ``tools/bench_check.py`` and CI):
``0`` pass, ``1`` regression, ``2`` structurally unusable history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default allowed throughput drop vs the best comparable prior entry.
DEFAULT_THRESHOLD = 0.15

#: Stamp keys two entries must agree on to be comparable.  ``git_rev``
#: is provenance, not a comparability axis — revisions are exactly what
#: the gate compares across.
_STAMP_KEYS = ("cpu_count", "workers", "scale")


def entries_comparable(newest: Dict, prior: Dict) -> bool:
    """Whether ``prior``'s numbers are evidence about ``newest``'s.

    The engine data plane (``shm`` vs ``pickle``) is a comparability
    axis too: parallel throughput through shared-memory rings and
    through pickle pipes are different quantities, so a v2 entry never
    regress-compares against a v1 stamp.  The round scheduler (``dense``
    vs ``sparse``) is an axis for the same reason: a sparse round loop
    skips idle nodes entirely, so its throughput is a different quantity
    from a dense sweep's and the gate must never compare entries across
    scheduler modes.  Unlike the machine-shape keys both fields may
    legitimately be absent (entries predating them, serial runs) — two
    entries without them remain comparable.

    ``suite`` is the benchmark-family axis: the beacon sustained-load
    rows (``suite="beacon"``) measure epochs of a chained service, not
    the raw engine sweeps the unsuffixed entries measure, so the gate
    never cross-compares them.  ``transport`` separates real-network
    entries (``transport="tcp"`` from the loopback wire suite) from
    simulated ones, which carry no transport field: socket wall clock
    and simulated wall clock are different quantities.  Like
    ``data_plane``/``scheduler`` both are absent-tolerant — entries
    predating the fields stay comparable with each other.
    """
    for key in _STAMP_KEYS:
        a, b = newest.get(key), prior.get(key)
        if a is None or b is None or a != b:
            return False
    if newest.get("data_plane") != prior.get("data_plane"):
        return False
    if newest.get("suite") != prior.get("suite"):
        return False
    if newest.get("transport") != prior.get("transport"):
        return False
    return newest.get("scheduler") == prior.get("scheduler")


@dataclass
class CaseDelta:
    """One benchmark case's newest-vs-best-prior comparison."""

    case: str
    newest: float
    best_prior: float
    ratio: float  # newest / best_prior
    regressed: bool


@dataclass
class GateResult:
    """Outcome of one gate evaluation (see :func:`check_history`)."""

    ok: bool
    exit_code: int  # 0 pass, 1 regression, 2 structural
    lines: List[str] = field(default_factory=list)
    deltas: List[CaseDelta] = field(default_factory=list)
    compared_entries: int = 0

    def report(self) -> str:
        return "\n".join(self.lines)


def _structural(message: str) -> GateResult:
    return GateResult(ok=False, exit_code=2, lines=[f"bench gate: {message}"])


def check_history(
    data: Dict, threshold: float = DEFAULT_THRESHOLD
) -> GateResult:
    """Gate the newest history entry of one ``BENCH_*.json`` payload."""
    history = data.get("history")
    if not isinstance(history, list) or not history:
        return _structural("no history entries to compare")
    newest = history[-1]
    cases = newest.get("cases")
    if not isinstance(cases, dict) or not cases:
        return _structural("newest history entry has no cases")

    priors = [
        entry for entry in history[:-1]
        if isinstance(entry.get("cases"), dict)
        and entries_comparable(newest, entry)
    ]
    stamp_keys = ("git_rev",) + _STAMP_KEYS
    if newest.get("data_plane") is not None:
        stamp_keys += ("data_plane",)
    if newest.get("scheduler") is not None:
        stamp_keys += ("scheduler",)
    if newest.get("suite") is not None:
        stamp_keys += ("suite",)
    stamp = ", ".join(f"{key}={newest.get(key)}" for key in stamp_keys)
    lines = [
        f"bench gate: newest entry {newest.get('timestamp', '?')} ({stamp})",
        f"bench gate: {len(priors)} comparable prior entr"
        f"{'y' if len(priors) == 1 else 'ies'} "
        f"of {len(history) - 1} (threshold {threshold:.0%})",
    ]
    if not priors:
        lines.append(
            "bench gate: PASS — nothing comparable to regress against "
            "(first stamped run on this machine/scale)"
        )
        return GateResult(ok=True, exit_code=0, lines=lines)

    deltas: List[CaseDelta] = []
    regressed = False
    for case in sorted(cases):
        newest_rate = _rate(cases[case])
        if newest_rate is None:
            continue
        best_prior: Optional[float] = None
        for entry in priors:
            prior_rate = _rate(entry["cases"].get(case))
            if prior_rate is not None:
                best_prior = (
                    prior_rate if best_prior is None
                    else max(best_prior, prior_rate)
                )
        if best_prior is None or best_prior <= 0:
            lines.append(f"  {case:<24} {newest_rate:>12,.0f} msg/s  (new case)")
            continue
        ratio = newest_rate / best_prior
        bad = ratio < 1.0 - threshold
        regressed = regressed or bad
        deltas.append(CaseDelta(
            case=case,
            newest=newest_rate,
            best_prior=best_prior,
            ratio=ratio,
            regressed=bad,
        ))
        marker = "REGRESSED" if bad else "ok"
        lines.append(
            f"  {case:<24} {newest_rate:>12,.0f} msg/s  vs best "
            f"{best_prior:>12,.0f}  ({ratio - 1.0:+.1%})  {marker}"
        )

    floor_ok, floor_lines = _check_speedup_floor(newest, priors)
    lines.extend(floor_lines)
    regressed = regressed or not floor_ok

    if regressed:
        lines.append(
            "bench gate: FAIL — throughput regressed beyond the threshold "
            "(rerun to rule out noise, or investigate the newest change)"
        )
        return GateResult(
            ok=False, exit_code=1, lines=lines, deltas=deltas,
            compared_entries=len(priors),
        )
    lines.append("bench gate: PASS")
    return GateResult(
        ok=True, exit_code=0, lines=lines, deltas=deltas,
        compared_entries=len(priors),
    )


def _rate(case: Optional[Dict]) -> Optional[float]:
    if not isinstance(case, dict):
        return None
    rate = case.get("messages_per_sec")
    try:
        return float(rate)
    except (TypeError, ValueError):
        return None


def _check_speedup_floor(newest: Dict, priors: List[Dict]):
    """The parallel-speedup ratchet: never drop below the comparable
    floor.  Throughput noise hides inside the 15% band; a speedup ratio
    collapse (e.g. a new serial section in the coordinator) usually does
    not, so it gets an absolute floor instead of a percentage."""
    key = "parallel_speedup_vs_serial"
    newest_value = newest.get(key)
    if newest_value is None:
        return True, []
    prior_values = [
        entry[key] for entry in priors if entry.get(key) is not None
    ]
    if not prior_values:
        return True, [f"  {key:<24} {newest_value:.3f}  (no prior floor)"]
    floor = min(prior_values)
    ok = float(newest_value) >= float(floor)
    marker = "ok" if ok else "REGRESSED"
    return ok, [
        f"  {key:<24} {float(newest_value):.3f}  vs floor "
        f"{float(floor):.3f}  {marker}"
    ]


def check_file(path, threshold: float = DEFAULT_THRESHOLD) -> GateResult:
    """Load a ``BENCH_*.json`` file and gate its newest entry."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        return _structural(f"cannot read {path}: {exc}")
    except ValueError as exc:
        return _structural(f"{path} is not JSON: {exc}")
    if not isinstance(data, dict):
        return _structural(f"{path} is not a benchmark history object")
    return check_history(data, threshold)
