"""Render timing sidecars and benchmark histories into reports.

``python -m repro report PATH`` accepts three inputs and renders each as
a CLI table plus (optionally) a self-contained HTML page:

* a ``--timing-out`` sidecar (``{"kind": "timing", ...}``, the
  :meth:`repro.obs.timing.TimingCollector.as_dict` payload) — phase
  breakdown, per-round detail and per-shard utilization;
* a ``--trace-out`` JSONL trace containing :class:`TimingEvent` records
  (a traced *and* timed run) — aggregated to the same shape;
* a ``BENCH_*.json`` benchmark history — throughput trend across
  entries plus the regression-gate deltas;
* a ``benchmarks/results/*.json`` row dump (``{"rows": [...]}`` — the
  figure-sweep tables, e.g. the pb-ERB and optimized-ERNG scaling
  curves) — rendered as the aligned table EXPERIMENTS.md quotes.

``timing_to_collapsed`` additionally exports the phase attribution in
collapsed-stack format (``frame;frame value`` per line, values in
microseconds), which speedscope and standard flamegraph tooling ingest
directly.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.bench import DEFAULT_THRESHOLD, check_history
from repro.obs.timing import PHASE_BUCKETS


# ----------------------------------------------------------------------
# input detection / loading
# ----------------------------------------------------------------------

def load_payload(path) -> Tuple[str, Dict]:
    """Classify and load a report input.

    Returns ``("timing", payload)`` or ``("bench", payload)``; raises
    ``ValueError`` for anything unrecognizable (the CLI maps that to
    exit code 2).
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        data = json.loads(text)
    except ValueError:
        data = None
    if isinstance(data, dict):
        if data.get("kind") == "timing":
            return "timing", data
        if isinstance(data.get("history"), list):
            return "bench", data
        if isinstance(data.get("rows"), list) and data["rows"]:
            return "rows", data
        raise ValueError(
            f"{path}: JSON is neither a timing sidecar (kind='timing'), "
            "a benchmark history (has 'history'), nor a results row dump "
            "(has 'rows')"
        )
    timing = _timing_from_trace_lines(text.splitlines())
    if timing is not None:
        return "timing", timing
    raise ValueError(
        f"{path}: not a timing sidecar, benchmark history, or a JSONL "
        "trace containing timing events"
    )


def _timing_from_trace_lines(lines: List[str]) -> Optional[Dict]:
    """Aggregate a JSONL trace's timing/meta events into a sidecar-shaped
    payload, or None when the trace carries no timing."""
    rounds: List[dict] = []
    machine: Optional[dict] = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        kind = record.get("kind")
        if kind == "timing":
            rounds.append({
                "rnd": record.get("rnd", 0),
                "wall": float(record.get("wall", 0.0)),
                "buckets": dict(record.get("buckets", {})),
                "shards": list(record.get("shards", [])),
            })
        elif kind == "meta" and machine is None:
            machine = record.get("machine")
    if not rounds:
        return None
    totals: Dict[str, float] = {}
    for record in rounds:
        for bucket, seconds in record["buckets"].items():
            totals[bucket] = totals.get(bucket, 0.0) + seconds
    payload: Dict = {
        "kind": "timing",
        "engine": "",
        "wall_seconds": sum(r["wall"] for r in rounds),
        "bucket_order": list(PHASE_BUCKETS),
        "totals": totals,
        "rounds": rounds,
    }
    if machine is not None:
        payload["machine"] = machine
    return payload


# ----------------------------------------------------------------------
# shared formatting helpers
# ----------------------------------------------------------------------

def _ordered_buckets(payload: Dict) -> List[str]:
    order = list(payload.get("bucket_order") or PHASE_BUCKETS)
    extra = sorted(set(payload.get("totals", {})) - set(order))
    return order + extra

def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    return f"{seconds * 1e3:.2f} ms"


def _stamp_line(machine: Optional[Dict]) -> Optional[str]:
    if not machine:
        return None
    parts = [f"{key}={machine[key]}" for key in
             ("git_rev", "cpu_count", "workers") if key in machine]
    return "machine: " + ", ".join(parts) if parts else None


# ----------------------------------------------------------------------
# timing report
# ----------------------------------------------------------------------

def render_timing_report(payload: Dict) -> str:
    """The CLI view of one timing payload."""
    wall = float(payload.get("wall_seconds", 0.0))
    totals: Dict[str, float] = payload.get("totals", {})
    rounds: List[dict] = payload.get("rounds", [])
    bucket_sum = sum(totals.values())
    lines = [
        f"timing: engine={payload.get('engine') or '?'}  "
        f"wall={_fmt_seconds(wall)}  rounds={len(rounds)}  "
        f"attributed={bucket_sum / wall:.1%}" if wall > 0 else
        f"timing: engine={payload.get('engine') or '?'}  rounds={len(rounds)}",
    ]
    stamp = _stamp_line(payload.get("machine"))
    if stamp:
        lines.append(stamp)
    lines.append("")
    lines.append(f"{'phase':<12} {'seconds':>12} {'share':>7}  bar")
    denom = wall if wall > 0 else (bucket_sum or 1.0)
    for bucket in _ordered_buckets(payload):
        seconds = totals.get(bucket, 0.0)
        if seconds <= 0:
            continue
        share = seconds / denom
        bar = "#" * max(1, round(share * 40))
        lines.append(
            f"{bucket:<12} {_fmt_seconds(seconds):>12} {share:>7.1%}  {bar}"
        )

    shard_rounds = [r for r in rounds if r.get("shards")]
    if shard_rounds:
        lines.append("")
        lines.append("per-shard utilization (busy vs barrier wall):")
        agg: Dict[int, List[float]] = {}
        for record in shard_rounds:
            for shard in record["shards"]:
                entry = agg.setdefault(int(shard["shard"]), [0.0, 0.0])
                entry[0] += float(shard.get("busy", 0.0))
                entry[1] += float(shard.get("idle", 0.0))
        lines.append(
            f"{'shard':>5} {'busy':>12} {'idle':>12} {'util':>6}"
        )
        for shard_id in sorted(agg):
            busy, idle = agg[shard_id]
            denom_s = busy + idle
            util = busy / denom_s if denom_s > 0 else 0.0
            lines.append(
                f"{shard_id:>5} {_fmt_seconds(busy):>12} "
                f"{_fmt_seconds(idle):>12} {util:>6.1%}"
            )

    if rounds:
        lines.append("")
        lines.append("slowest rounds (top bucket in parentheses):")
        slowest = sorted(
            rounds, key=lambda r: r.get("wall", 0.0), reverse=True
        )[:5]
        for record in slowest:
            buckets = record.get("buckets", {})
            top = max(buckets, key=buckets.get) if buckets else "-"
            lines.append(
                f"  round {record.get('rnd', '?'):>4}: "
                f"{_fmt_seconds(record.get('wall', 0.0))} ({top})"
            )

    traffic = payload.get("traffic")
    if isinstance(traffic, dict):
        ratio = traffic.get("coalescing_ratio")
        extra = []
        if ratio:
            extra.append(f"coalescing {float(ratio):.1f}x")
        summary = traffic.get("summary")
        if summary:
            extra.append(str(summary))
        if extra:
            lines.append("")
            lines.append("traffic: " + "; ".join(extra))
    return "\n".join(lines)


def timing_to_collapsed(payload: Dict) -> str:
    """Collapsed-stack export (speedscope / flamegraph.pl input).

    One line per (round, bucket) with the coordinator's attribution, and
    one per (round, shard, bucket) with the worker-side breakdown,
    values in integer microseconds.
    """
    engine = payload.get("engine") or "run"
    out: List[str] = []

    def emit(frames: List[str], seconds: float) -> None:
        usec = round(float(seconds) * 1e6)
        if usec > 0:
            out.append(f"{';'.join(frames)} {usec}")

    rounds: List[dict] = payload.get("rounds", [])
    for record in rounds:
        rnd = f"round_{record.get('rnd', 0)}"
        for bucket, seconds in sorted(record.get("buckets", {}).items()):
            emit([engine, rnd, bucket], seconds)
        for shard in record.get("shards", []):
            sframe = f"shard_{shard.get('shard', 0)}"
            for bucket, seconds in sorted(shard.get("buckets", {}).items()):
                emit([engine, rnd, sframe, bucket], seconds)
            emit([engine, rnd, sframe, "idle"], shard.get("idle", 0.0))
    if not rounds:
        for bucket, seconds in sorted(payload.get("totals", {}).items()):
            emit([engine, bucket], seconds)
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# bench report
# ----------------------------------------------------------------------

def render_bench_report(
    payload: Dict, threshold: float = DEFAULT_THRESHOLD
) -> str:
    """The CLI view of one BENCH_*.json history: trend + gate verdict."""
    history: List[dict] = [
        e for e in payload.get("history", []) if isinstance(e, dict)
    ]
    lines = [
        f"benchmark: {payload.get('benchmark', '?')}  "
        f"({len(history)} history entries)",
        "",
    ]
    cases = sorted({
        case for entry in history
        for case in (entry.get("cases") or {})
    })
    lines.append("throughput trend (msg/s, oldest → newest):")
    for case in cases:
        rates = []
        for entry in history:
            case_data = (entry.get("cases") or {}).get(case)
            rate = (case_data or {}).get("messages_per_sec")
            rates.append(f"{rate:,.0f}" if rate is not None else "-")
        lines.append(f"  {case:<24} " + " → ".join(rates))
    speedups = sorted({
        key for entry in history for key in entry
        if "_speedup" in key
    })
    if speedups:
        lines.append("")
        lines.append("speedup ratios (oldest → newest):")
        for key in speedups:
            values = [
                f"{entry[key]:.3f}" if entry.get(key) is not None else "-"
                for entry in history
            ]
            lines.append(f"  {key:<28} " + " → ".join(values))
    lines.append("")
    lines.append(check_history(payload, threshold).report())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# results-rows report (figure sweeps under benchmarks/results/)
# ----------------------------------------------------------------------

def _rows_and_headers(payload: Dict) -> Tuple[List[dict], List[str]]:
    rows = [r for r in payload.get("rows", []) if isinstance(r, dict)]
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    return rows, headers


def _fmt_cell(value) -> str:
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True)
    if isinstance(value, float):
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int) and not isinstance(value, bool):
        return f"{value:,}"
    return str(value)


def render_rows_report(payload: Dict, title: str = "results") -> str:
    """The CLI view of one figure-sweep results file: the sweep's rows
    as one aligned table (the same shape the benchmark prints with
    ``-s``, reproducible after the fact from the persisted file)."""
    rows, headers = _rows_and_headers(payload)
    cells = [[_fmt_cell(row.get(h, "-")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        f"results: {title}  ({len(rows)} rows, "
        f"scale={payload.get('scale', '?')})",
        "",
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML rendering (self-contained: inline CSS, no external assets)
# ----------------------------------------------------------------------

_HTML_HEAD = """<!doctype html>
<html><head><meta charset="utf-8"><title>{title}</title><style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 64rem; color: #1a1a2e; }}
h1 {{ font-size: 1.4rem; }} h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ text-align: left; padding: .25rem .6rem;
          border-bottom: 1px solid #ddd; font-variant-numeric: tabular-nums; }}
th {{ border-bottom: 2px solid #888; }}
.bar {{ background: #4c72b0; height: .8rem; display: inline-block;
        border-radius: 2px; }}
.idle {{ background: #c44e52; }}
.muted {{ color: #777; }}
.bad {{ color: #b00020; font-weight: 600; }}
.ok {{ color: #2e7d32; }}
</style></head><body>
<h1>{title}</h1>
"""


def _esc(value) -> str:
    return _html.escape(str(value))


def render_html(kind: str, payload: Dict, title: str = "results") -> str:
    """Self-contained HTML report for any payload kind."""
    if kind == "timing":
        return _render_timing_html(payload)
    if kind == "rows":
        return _render_rows_html(payload, title)
    return _render_bench_html(payload)


def _render_rows_html(payload: Dict, title: str) -> str:
    rows, headers = _rows_and_headers(payload)
    parts = [_HTML_HEAD.format(title=f"Results — {_esc(title)}")]
    parts.append(
        f"<p class=muted>{len(rows)} rows · "
        f"scale {_esc(payload.get('scale', '?'))}</p><table><tr>"
    )
    parts.extend(f"<th>{_esc(h)}</th>" for h in headers)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(
            f"<td>{_esc(_fmt_cell(row.get(h, '-')))}</td>" for h in headers
        )
        parts.append("</tr>")
    parts.append("</table></body></html>\n")
    return "".join(parts)


def _render_timing_html(payload: Dict) -> str:
    wall = float(payload.get("wall_seconds", 0.0))
    totals: Dict[str, float] = payload.get("totals", {})
    rounds: List[dict] = payload.get("rounds", [])
    bucket_sum = sum(totals.values())
    denom = wall if wall > 0 else (bucket_sum or 1.0)
    parts = [_HTML_HEAD.format(
        title=f"Timing report — {_esc(payload.get('engine') or 'run')}"
    )]
    stamp = _stamp_line(payload.get("machine"))
    meta = (
        f"wall {_esc(_fmt_seconds(wall))} · {len(rounds)} rounds · "
        f"{bucket_sum / denom:.1%} attributed"
    )
    if stamp:
        meta += f" · {_esc(stamp)}"
    parts.append(f"<p class=muted>{meta}</p>")

    parts.append("<h2>Phase breakdown</h2><table>"
                 "<tr><th>phase</th><th>seconds</th><th>share</th>"
                 "<th></th></tr>")
    for bucket in _ordered_buckets(payload):
        seconds = totals.get(bucket, 0.0)
        if seconds <= 0:
            continue
        share = seconds / denom
        parts.append(
            f"<tr><td>{_esc(bucket)}</td>"
            f"<td>{_esc(_fmt_seconds(seconds))}</td>"
            f"<td>{share:.1%}</td>"
            f"<td><span class=bar style='width:{share * 100:.1f}%'>"
            f"</span></td></tr>"
        )
    parts.append("</table>")

    shard_rounds = [r for r in rounds if r.get("shards")]
    if shard_rounds:
        agg: Dict[int, List[float]] = {}
        for record in shard_rounds:
            for shard in record["shards"]:
                entry = agg.setdefault(int(shard["shard"]), [0.0, 0.0])
                entry[0] += float(shard.get("busy", 0.0))
                entry[1] += float(shard.get("idle", 0.0))
        parts.append("<h2>Per-shard utilization</h2><table>"
                     "<tr><th>shard</th><th>busy</th><th>idle</th>"
                     "<th>utilization</th><th></th></tr>")
        for shard_id in sorted(agg):
            busy, idle = agg[shard_id]
            total = busy + idle
            util = busy / total if total > 0 else 0.0
            parts.append(
                f"<tr><td>{shard_id}</td>"
                f"<td>{_esc(_fmt_seconds(busy))}</td>"
                f"<td>{_esc(_fmt_seconds(idle))}</td>"
                f"<td>{util:.1%}</td>"
                f"<td><span class=bar style='width:{util * 60:.1f}%'></span>"
                f"<span class='bar idle' "
                f"style='width:{(1 - util) * 60:.1f}%'></span></td></tr>"
            )
        parts.append("</table>")

    if rounds:
        parts.append("<h2>Per-round wall</h2><table>"
                     "<tr><th>round</th><th>wall</th><th>top buckets</th>"
                     "</tr>")
        for record in rounds:
            buckets = record.get("buckets", {})
            top = sorted(buckets.items(), key=lambda kv: -kv[1])[:3]
            top_text = ", ".join(
                f"{name} {_fmt_seconds(seconds)}" for name, seconds in top
            )
            parts.append(
                f"<tr><td>{_esc(record.get('rnd', '?'))}</td>"
                f"<td>{_esc(_fmt_seconds(record.get('wall', 0.0)))}</td>"
                f"<td>{_esc(top_text)}</td></tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>\n")
    return "".join(parts)


def _render_bench_html(payload: Dict) -> str:
    history: List[dict] = [
        e for e in payload.get("history", []) if isinstance(e, dict)
    ]
    gate = check_history(payload)
    parts = [_HTML_HEAD.format(
        title=f"Benchmark history — {_esc(payload.get('benchmark', '?'))}"
    )]
    verdict_class = "ok" if gate.ok else "bad"
    verdict = "PASS" if gate.ok else (
        "REGRESSION" if gate.exit_code == 1 else "UNUSABLE HISTORY"
    )
    parts.append(
        f"<p>Regression gate: <span class={verdict_class}>{verdict}</span>"
        f" <span class=muted>({gate.compared_entries} comparable prior "
        f"entries)</span></p>"
    )
    cases = sorted({
        case for entry in history for case in (entry.get("cases") or {})
    })
    parts.append("<h2>Throughput trend (msg/s)</h2><table><tr><th>case</th>")
    for entry in history:
        label = _esc(entry.get("git_rev") or entry.get("timestamp", "?"))
        parts.append(f"<th>{label}</th>")
    parts.append("</tr>")
    best: Dict[str, float] = {}
    for case in cases:
        rates = [
            ((entry.get("cases") or {}).get(case) or {}).get(
                "messages_per_sec"
            )
            for entry in history
        ]
        best[case] = max((r for r in rates if r is not None), default=0.0)
        parts.append(f"<tr><td>{_esc(case)}</td>")
        for rate in rates:
            if rate is None:
                parts.append("<td class=muted>-</td>")
            else:
                width = 60.0 * rate / best[case] if best[case] else 0.0
                parts.append(
                    f"<td>{rate:,.0f}<br>"
                    f"<span class=bar style='width:{width:.0f}px'></span></td>"
                )
        parts.append("</tr>")
    parts.append("</table>")
    parts.append("<h2>Gate detail</h2><pre>")
    parts.append(_esc(gate.report()))
    parts.append("</pre></body></html>\n")
    return "".join(parts)


# ----------------------------------------------------------------------
# one-call entry point used by the CLI and tools/bench_check.py
# ----------------------------------------------------------------------

def render_report(
    path,
    html_out=None,
    flame_out=None,
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """Load ``path``, write optional HTML / collapsed-stack artifacts,
    and return the CLI table."""
    kind, payload = load_payload(path)
    title = Path(path).stem
    if html_out:
        with open(html_out, "w", encoding="utf-8") as fh:
            fh.write(render_html(kind, payload, title))
    if flame_out:
        if kind != "timing":
            raise ValueError("--flame requires a timing input")
        with open(flame_out, "w", encoding="utf-8") as fh:
            fh.write(timing_to_collapsed(payload))
    if kind == "timing":
        return render_timing_report(payload)
    if kind == "rows":
        return render_rows_report(payload, title)
    return render_bench_report(payload, threshold)
