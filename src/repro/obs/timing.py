"""Phase-attributed wall-clock timing for the round engine.

A :class:`TimingCollector` attaches to a run through
``SimulationConfig.timing`` and buckets each round's wall time into the
engine's cost centres:

``seal``       transport writes / envelope sealing (AEAD or counter pass)
``open``       transport reads / envelope opening and verification
``digest``     ACK digest computation (``H(val)`` per multicast identity)
``serialize``  message sizing, body encoding, and cross-process pickling
``handler``    protocol hook execution (``on_round_begin`` /
               ``on_message`` / ``on_round_end`` / setup and finish)
``ack_wave``   the phase-4 ACK aggregation and crediting
``batch_crypto``  wave-batched envelope sealing / opening and digest
               pre-passes (the vectorized fast path; per-link crypto
               stays in ``seal``/``open``/``digest``)
``shm``        parallel engine only: shared-memory data-plane traffic —
               frame writes, polls that landed a frame, and frame
               decode (the pickle pipe fallback charges ``serialize``)
``barrier``    parallel engine only: coordinator wall blocked on worker
               phases *beyond* any shard's concurrent busy time (true
               coordination latency; worker fork/join included)
``overlap``    parallel engine only: coordinator wall blocked on worker
               phases *while* at least one shard was computing — the
               parallelized work the coordinator was waiting for, not
               coordination overhead
``merge``      parallel engine only: splicing staged intents / events
               back into serial order and replaying the transmit plan
``scheduler``  sparse scheduling only: computing the per-round active
               set, wake-hint bookkeeping and the incremental doneness
               tracking (dense scheduling charges nothing here)
``other``      the round's measured residual (engine bookkeeping not
               covered by a named bucket)

Like the tracer and :data:`~repro.obs.metrics.PROFILER`, the collector
is **zero-cost when absent**: the engine caches ``self._timing`` in a
local and checks ``is not None`` once per instrumentation point, so the
default (untimed) run pays a handful of predicted branches per round.

On the parallel engine the coordinator's buckets account its own wall
clock (bucket sums still cover the measured round wall); the workers'
in-barrier buckets are shipped back through the staged-intent merge and
recorded per shard, including per-barrier idle time — the imbalance the
coordinator's ``barrier`` bucket hides.  ``as_dict()`` is the sidecar
payload ``python -m repro report`` renders.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

#: The attribution buckets, in report order.
PHASE_BUCKETS = (
    "seal",
    "open",
    "digest",
    "serialize",
    "handler",
    "ack_wave",
    "batch_crypto",
    "shm",
    "barrier",
    "overlap",
    "merge",
    "scheduler",
    "other",
)


class TimingCollector:
    """Accumulates per-round and per-run phase attribution.

    One collector may span several ``run()`` calls (multi-instance
    drivers like churn reuse one config): wall time and buckets
    accumulate, and the round list keeps growing in execution order.
    """

    __slots__ = (
        "engine",
        "wall_seconds",
        "totals",
        "rounds",
        "_run_t0",
        "_round_t0",
        "_round",
    )

    def __init__(self) -> None:
        self.engine = ""
        self.wall_seconds = 0.0
        self.totals: Dict[str, float] = {}
        self.rounds: List[dict] = []
        self._run_t0: Optional[float] = None
        self._round_t0: Optional[float] = None
        self._round: Optional[dict] = None

    # ---- run / round lifecycle ---------------------------------------
    def start_run(self, engine: str = "") -> None:
        if engine:
            self.engine = engine
        self._run_t0 = perf_counter()

    def end_run(self) -> None:
        if self._run_t0 is not None:
            self.wall_seconds += perf_counter() - self._run_t0
            self._run_t0 = None

    def set_engine(self, engine: str) -> None:
        self.engine = engine

    def start_round(self, rnd: int) -> None:
        self._round = {"rnd": rnd, "wall": 0.0, "buckets": {}, "shards": []}
        self._round_t0 = perf_counter()

    def end_round(self) -> dict:
        """Close the round: measure its wall, attribute the residual to
        ``other``, and return the finished record (for TimingEvent)."""
        record = self._round
        assert record is not None, "start_round() first"
        wall = perf_counter() - self._round_t0
        record["wall"] = wall
        buckets = record["buckets"]
        residual = wall - sum(buckets.values())
        if residual > 0:
            buckets["other"] = buckets.get("other", 0.0) + residual
            self.totals["other"] = self.totals.get("other", 0.0) + residual
        self.rounds.append(record)
        self._round = None
        self._round_t0 = None
        return record

    # ---- attribution --------------------------------------------------
    def add(self, bucket: str, seconds: float) -> None:
        """Charge ``seconds`` to ``bucket`` (round-level when a round is
        open, else run-level only — setup/finish hooks, worker spawn)."""
        self.totals[bucket] = self.totals.get(bucket, 0.0) + seconds
        record = self._round
        if record is not None:
            b = record["buckets"]
            b[bucket] = b.get(bucket, 0.0) + seconds

    def record_shard(
        self,
        shard: int,
        busy: float,
        idle: float,
        buckets: Dict[str, float],
    ) -> None:
        """Attach one shard's in-barrier breakdown to the open round.

        ``busy`` is the shard's total wall inside this round's barriers,
        ``idle`` the time it sat at barriers waiting for slower shards
        (coordinator barrier wall minus shard busy) — the per-round
        imbalance signal.  ``buckets`` are the worker-side cost centres;
        any un-attributed busy time lands in the shard's ``other``.
        """
        record = self._round
        if record is None:
            return
        buckets = dict(buckets)
        residual = busy - sum(buckets.values())
        if residual > 0:
            buckets["other"] = buckets.get("other", 0.0) + residual
        record["shards"].append(
            {"shard": shard, "busy": busy, "idle": idle, "buckets": buckets}
        )

    # ---- summaries ----------------------------------------------------
    @property
    def bucket_sum(self) -> float:
        return sum(self.totals.values())

    def coverage(self) -> float:
        """Fraction of the measured run wall the buckets account for."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.bucket_sum / self.wall_seconds

    def as_dict(self) -> dict:
        """The ``--timing-out`` sidecar payload."""
        return {
            "kind": "timing",
            "engine": self.engine,
            "wall_seconds": self.wall_seconds,
            "bucket_order": list(PHASE_BUCKETS),
            "totals": dict(self.totals),
            "rounds": [
                {
                    "rnd": r["rnd"],
                    "wall": r["wall"],
                    "buckets": dict(r["buckets"]),
                    "shards": [dict(s) for s in r["shards"]],
                }
                for r in self.rounds
            ],
        }
