"""repro.obs — unified tracing and metrics for the round engine.

Three pieces:

* :mod:`repro.obs.events` — the typed event vocabulary (round spans,
  wire actions, halts, decisions, churn);
* :mod:`repro.obs.tracer` — the :class:`Tracer` the engine and protocols
  emit into (disabled by default, zero overhead when off);
* :mod:`repro.obs.metrics` — counters / gauges / histograms plus the
  wall-clock :data:`PROFILER` hooks around crypto and serialization;
* :mod:`repro.obs.export` — JSONL persistence and the per-round
  timeline renderer behind ``python -m repro inspect``.

Typical use::

    from repro.obs import JsonlSink, Tracer

    config = SimulationConfig(n=16, tracer=Tracer(JsonlSink("t.jsonl")))
    result = run_erb(config, initiator=0, message=b"hello")
    config.tracer.close()
"""

from repro.obs.events import (
    ROUND_PHASES,
    CampaignEvent,
    ChurnEvent,
    DecisionEvent,
    EnvelopeEvent,
    HaltEvent,
    PhaseEvent,
    ProtocolEvent,
    RoundSpan,
    WireEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.export import (
    JsonlSink,
    charged_bytes_by_round,
    read_trace,
    render_timeline,
    write_trace,
)
from repro.obs.metrics import (
    PROFILER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
)
from repro.obs.tracer import NULL_TRACER, MemorySink, NullSink, Tracer

__all__ = [
    "CampaignEvent",
    "ChurnEvent",
    "Counter",
    "DecisionEvent",
    "EnvelopeEvent",
    "Gauge",
    "HaltEvent",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullSink",
    "PROFILER",
    "PhaseEvent",
    "Profiler",
    "ProtocolEvent",
    "ROUND_PHASES",
    "RoundSpan",
    "Tracer",
    "WireEvent",
    "charged_bytes_by_round",
    "event_from_dict",
    "event_to_dict",
    "read_trace",
    "render_timeline",
    "write_trace",
]
