"""repro.obs — unified tracing, metrics and performance reporting.

Six pieces:

* :mod:`repro.obs.events` — the typed event vocabulary (round spans,
  wire actions, halts, decisions, churn, timing, provenance);
* :mod:`repro.obs.tracer` — the :class:`Tracer` the engine and protocols
  emit into (disabled by default, zero overhead when off);
* :mod:`repro.obs.metrics` — counters / gauges / histograms plus the
  wall-clock :data:`PROFILER` hooks around crypto and serialization;
* :mod:`repro.obs.timing` — the :class:`TimingCollector` that attributes
  per-round wall clock to engine phases (``--timing-out``), including
  per-shard busy/idle on the parallel engine;
* :mod:`repro.obs.machine` — machine provenance stamps (git rev, CPU
  count, workers) attached to every persisted measurement;
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSONL persistence,
  the ``inspect`` timeline, and the ``report`` renderers (CLI table,
  self-contained HTML, collapsed-stack flame export);
* :mod:`repro.obs.bench` — the benchmark-history regression gate behind
  ``tools/bench_check.py``.

Typical use::

    from repro.obs import JsonlSink, Tracer, TimingCollector

    config = SimulationConfig(
        n=16,
        tracer=Tracer(JsonlSink("t.jsonl")),
        timing=TimingCollector(),
    )
    result = run_erb(config, initiator=0, message=b"hello")
    config.tracer.close()
    print(config.timing.coverage())   # fraction of wall attributed
"""

from repro.obs.bench import GateResult, check_file, check_history
from repro.obs.events import (
    ROUND_PHASES,
    CampaignEvent,
    ChurnEvent,
    DecisionEvent,
    EnvelopeEvent,
    HaltEvent,
    MetaEvent,
    PhaseEvent,
    ProtocolEvent,
    RoundSpan,
    TimingEvent,
    WireEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.export import (
    JsonlSink,
    charged_bytes_by_round,
    read_trace,
    render_timeline,
    write_trace,
)
from repro.obs.machine import git_revision, machine_stamp, stamps_comparable
from repro.obs.metrics import (
    PROFILER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
)
from repro.obs.report import render_report, timing_to_collapsed
from repro.obs.timing import PHASE_BUCKETS, TimingCollector
from repro.obs.tracer import NULL_TRACER, MemorySink, NullSink, Tracer

__all__ = [
    "CampaignEvent",
    "ChurnEvent",
    "Counter",
    "DecisionEvent",
    "EnvelopeEvent",
    "GateResult",
    "Gauge",
    "HaltEvent",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetaEvent",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullSink",
    "PHASE_BUCKETS",
    "PROFILER",
    "PhaseEvent",
    "Profiler",
    "ProtocolEvent",
    "ROUND_PHASES",
    "RoundSpan",
    "TimingCollector",
    "TimingEvent",
    "Tracer",
    "WireEvent",
    "charged_bytes_by_round",
    "check_file",
    "check_history",
    "event_from_dict",
    "event_to_dict",
    "git_revision",
    "machine_stamp",
    "read_trace",
    "render_report",
    "render_timeline",
    "stamps_comparable",
    "timing_to_collapsed",
    "write_trace",
]
