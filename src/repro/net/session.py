"""Persistent engine sessions: build the network once, run many times.

One-shot drivers (``run_erng`` et al.) rebuild the whole world per run —
network, channels, caches, and with ``workers > 1`` a fresh fork of every
worker shard.  For a long-lived service shape (the random beacon, soak
tests, campaigns that sweep seeds over one population) that setup cost
dominates: an unoptimized ERNG epoch at N=9 costs ~4 ms of protocol work
but ~30-40 ms of per-run worker forking.

:class:`EngineSession` keeps the expensive state alive across runs:

* the :class:`~repro.net.simulator.SynchronousNetwork` itself — topology,
  transport, and (under FULL security) every established secure channel;
* the parallel engine's forked worker shards (fork once, run many — see
  ``run_parallel``'s session-crew reuse);
* the warm per-network caches that are *safe* to keep (neighbour tuples
  are rebuilt lazily, channel freshness counters stay monotone).

Between runs, :meth:`SynchronousNetwork.begin_session_run` performs the
explicit cross-run hygiene: enclaves are relaunched with fresh programs
and RDRAND forks off a re-seeded master RNG, the ACK digest LRU /
ack-size / neighbour-tuple / dispatch caches are invalidated, staged
queues are dropped, and traffic stats are rescoped.  Because RNG forks
are label-derived, a session run is **bit-identical** to the same run on
a freshly built network — reuse is purely a performance property, and
the equivalence is pinned by tests.

Observability scoping: ``config.tracer`` and ``config.timing`` belong to
the *session* — one tracer sees every run's events (with per-run round
numbering restarting at 1), and one TimingCollector accumulates
`start_run`/`end_run` records per run, which is exactly what a sustained
-load service wants (`barrier` buckets show fork cost collapsing to a
recycle handshake after the first run).  Per-run traffic/round stats stay
per-run via ``RunResult.stats``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.net.topology import Topology
from repro.sgx.program import EnclaveProgram


class EngineSession:
    """A long-lived network serving many independent protocol runs.

    Usage::

        with EngineSession(config, factory) as session:
            first = session.run(max_rounds=4)
            second = session.run(max_rounds=4, seed=123)   # fresh run
            third = session.run(max_rounds=6, program_factory=other)

    Every :meth:`run` after the first recycles the network via
    :meth:`~repro.net.simulator.SynchronousNetwork.begin_session_run`
    (fresh programs, re-seeded RNG, invalidated caches) and — when the
    run executes on the parallel engine — hands the persistent worker
    crew a recycle frame instead of reforking it.
    """

    def __init__(
        self,
        config: SimulationConfig,
        program_factory: Callable[[int], EnclaveProgram],
        behaviors: Optional[Dict[int, object]] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self._factory = program_factory
        self.network = SynchronousNetwork(
            config, program_factory, behaviors=behaviors, topology=topology
        )
        # Marks the network so run_parallel stores (and keeps) its crew.
        self.network._session_persistent = True
        self._runs = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def config(self) -> SimulationConfig:
        return self.network.config

    @property
    def runs_started(self) -> int:
        return self._runs

    # ------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        *,
        program_factory: Optional[Callable[[int], EnclaveProgram]] = None,
        seed: Optional[int] = None,
    ) -> RunResult:
        """Execute one fresh protocol run on the shared network.

        ``program_factory`` overrides the session's factory for this run
        (and becomes the default for later ones); ``seed`` re-seeds the
        run (the session keeps the last seed otherwise).
        """
        if self._closed:
            raise ConfigurationError("engine session is closed")
        factory = (
            program_factory if program_factory is not None else self._factory
        )
        needs_recycle = (
            self._runs > 0
            or factory is not self._factory
            or (seed is not None and seed != self.network.config.seed)
        )
        self._factory = factory
        if needs_recycle:
            self.network.begin_session_run(factory, seed=seed)
            self._stash_worker_reset(factory)
        self._runs += 1
        return self.network.run(max_rounds)

    def _stash_worker_reset(self, factory) -> None:
        """Prepare the recycle frame for a live persistent worker crew.

        ``run_parallel`` consumes it; a crew found *without* a prepared
        frame (someone ran the network outside the session) is reforked
        defensively, so this is an optimisation hint, never a
        correctness requirement.
        """
        net = self.network
        if getattr(net, "_session_crew", None) is None:
            return
        net._session_worker_reset = (
            net.config.seed,
            factory,
            net.tracer.enabled,
            net._timing is not None,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Join the persistent worker crew (if any) and retire the
        session.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        net = self.network
        crew = getattr(net, "_session_crew", None)
        if crew is not None:
            crew.shutdown()
            net._session_crew = None
        net.__dict__.pop("_session_worker_reset", None)

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
