"""Traffic and round accounting.

Every delivered-or-attempted message is recorded here; the figure
benchmarks read these counters.  Conventions match the paper's evaluation:

* *traffic size* counts bytes of every message handed to the network by a
  sender's OS (Fig. 3 measures network bandwidth, so dropped-at-sender
  messages don't count, but messages dropped by the *receiver* do — they
  crossed the wire);
* *termination time* is simulated seconds until the last honest node
  accepts, where each round lasts ``max(2*delta, round_bytes/bandwidth)``
  under the shared-link model.

Since the round-envelope layer the counters form a *dual ledger*:

* the **logical** ledger (``messages_sent``, ``bytes_sent``, per-type and
  per-round counters) counts protocol messages exactly as the paper's
  Fig. 3 does, regardless of how they were batched on the wire;
* the **physical** ledger (``envelopes_sent``, ``envelope_bytes_sent``)
  counts what actually crossed each link — one envelope per
  ``(sender, receiver, round)`` triple when the engine coalesces, one
  per message on the per-wire paths (where the two ledgers mirror).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from repro.common.types import MessageType


@dataclass
class TrafficStats:
    """Mutable counters for one protocol run."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    omissions: int = 0            # messages dropped (by adversary or checks)
    rejections: int = 0           # messages rejected by channel verification
    bytes_by_round: Counter = field(default_factory=Counter)
    # Physical ledger: actual link crossings.  On per-wire paths every
    # message is its own crossing (the ledgers mirror); the envelope path
    # charges these separately via record_envelope(s).
    envelopes_sent: int = 0
    envelope_bytes_sent: int = 0

    def record_send(
        self, mtype: MessageType, size: int, rnd: int, physical: bool = True
    ) -> None:
        """Charge one logical message; ``physical=False`` leaves the
        physical ledger to a separate :meth:`record_envelope` call (the
        envelope path charges link crossings, not messages)."""
        if size < 0:
            raise ValueError(f"message size must be non-negative, got {size}")
        self.messages_sent += 1
        self.bytes_sent += size
        self.messages_by_type[mtype] += 1
        self.bytes_by_type[mtype] += size
        self.bytes_by_round[rnd] += size
        if physical:
            self.envelopes_sent += 1
            self.envelope_bytes_sent += size

    def record_send_bulk(
        self,
        mtype: MessageType,
        total_bytes: int,
        rnd: int,
        count: int,
        physical: bool = True,
    ) -> None:
        """Charge ``count`` same-type messages totalling ``total_bytes``.

        One call is arithmetically identical to ``count`` calls of
        :meth:`record_send` — the fan-out fast path uses it to record a
        whole multicast (or ACK wave) without per-wire Counter updates.
        """
        if count < 0 or total_bytes < 0:
            raise ValueError(
                f"bulk send must be non-negative, got count={count} "
                f"bytes={total_bytes}"
            )
        if count == 0:
            return
        self.messages_sent += count
        self.bytes_sent += total_bytes
        self.messages_by_type[mtype] += count
        self.bytes_by_type[mtype] += total_bytes
        self.bytes_by_round[rnd] += total_bytes
        if physical:
            self.envelopes_sent += count
            self.envelope_bytes_sent += total_bytes

    def record_envelope(self, members: int, size: int) -> None:
        """Charge one physical link crossing carrying ``members`` messages."""
        if members < 1 or size < 0:
            raise ValueError(
                f"envelope must carry >=1 members with non-negative size, "
                f"got members={members} size={size}"
            )
        self.envelopes_sent += 1
        self.envelope_bytes_sent += size

    def record_envelopes(self, count: int, total_bytes: int) -> None:
        """Charge ``count`` link crossings totalling ``total_bytes``."""
        if count < 0 or total_bytes < 0:
            raise ValueError(
                f"bulk envelopes must be non-negative, got count={count} "
                f"bytes={total_bytes}"
            )
        self.envelopes_sent += count
        self.envelope_bytes_sent += total_bytes

    def merge(self, other: "TrafficStats") -> None:
        """Fold another ledger into this one — logical *and* physical.

        Used to combine per-shard ledgers from the parallel engine (and
        generally any disjoint sub-run accounting) into one run total:
        every counter adds, so merging the shards of one round is
        arithmetically identical to recording every event on a single
        ledger.
        """
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.messages_by_type.update(other.messages_by_type)
        self.bytes_by_type.update(other.bytes_by_type)
        self.bytes_by_round.update(other.bytes_by_round)
        self.omissions += other.omissions
        self.rejections += other.rejections
        self.envelopes_sent += other.envelopes_sent
        self.envelope_bytes_sent += other.envelope_bytes_sent

    def record_omission(self) -> None:
        self.omissions += 1

    def record_omissions(self, count: int) -> None:
        """Record ``count`` omissions at once (bulk fast-path variant)."""
        if count < 0:
            raise ValueError(f"omission count must be non-negative, got {count}")
        self.omissions += count

    def record_rejection(self) -> None:
        self.rejections += 1

    @property
    def megabytes_sent(self) -> float:
        return self.bytes_sent / (1024.0 * 1024.0)

    @property
    def physical_megabytes_sent(self) -> float:
        return self.envelope_bytes_sent / (1024.0 * 1024.0)

    @property
    def coalescing_ratio(self) -> float:
        """Logical messages per physical crossing (1.0 on per-wire paths)."""
        if self.envelopes_sent == 0:
            return 1.0
        return self.messages_sent / self.envelopes_sent

    def round_bytes(self, rnd: int) -> int:
        return self.bytes_by_round[rnd]

    def publish(self, registry, prefix: str = "traffic") -> None:
        """Feed this run's totals into a metrics registry.

        ``registry`` is duck-typed (``repro.obs.metrics.MetricsRegistry``
        or anything with the same ``counter``/``histogram`` surface).
        Counters accumulate across runs published into the same registry.
        """
        registry.counter(f"{prefix}.messages_sent").inc(self.messages_sent)
        registry.counter(f"{prefix}.bytes_sent").inc(self.bytes_sent)
        registry.counter(f"{prefix}.envelopes_sent").inc(self.envelopes_sent)
        registry.counter(f"{prefix}.envelope_bytes_sent").inc(
            self.envelope_bytes_sent
        )
        registry.counter(f"{prefix}.omissions").inc(self.omissions)
        registry.counter(f"{prefix}.rejections").inc(self.rejections)
        for mtype, count in self.messages_by_type.items():
            registry.counter(f"{prefix}.messages.{mtype.value}").inc(count)
        histogram = registry.histogram(f"{prefix}.bytes_per_round")
        for rnd in sorted(self.bytes_by_round):
            histogram.observe(self.bytes_by_round[rnd])

    def summary(self) -> str:
        per_type = ", ".join(
            f"{mtype.value}={count}"
            for mtype, count in sorted(
                self.messages_by_type.items(), key=lambda kv: kv[0].value
            )
        )
        text = (
            f"{self.messages_sent} msgs / {self.megabytes_sent:.3f} MB "
            f"({per_type}); omissions={self.omissions}, "
            f"rejections={self.rejections}"
        )
        if self.envelopes_sent and self.envelopes_sent != self.messages_sent:
            text += (
                f"; envelopes={self.envelopes_sent} / "
                f"{self.physical_megabytes_sent:.3f} MB physical "
                f"({self.coalescing_ratio:.1f}x coalesced)"
            )
        return text


@dataclass
class RoundRecord:
    """Timing record of one executed round."""

    rnd: int
    bytes: int
    seconds: float


@dataclass
class RunStats:
    """Aggregated result of one simulation run."""

    rounds: List[RoundRecord] = field(default_factory=list)
    traffic: TrafficStats = field(default_factory=TrafficStats)

    @property
    def rounds_executed(self) -> int:
        return len(self.rounds)

    @property
    def termination_seconds(self) -> float:
        return sum(record.seconds for record in self.rounds)

    def publish(self, registry, prefix: str = "run") -> None:
        """Feed round timings and traffic totals into a metrics registry."""
        registry.counter(f"{prefix}.rounds").inc(self.rounds_executed)
        seconds = registry.histogram(f"{prefix}.round_seconds")
        for record in self.rounds:
            seconds.observe(record.seconds)
        self.traffic.publish(registry, prefix=f"{prefix}.traffic")
