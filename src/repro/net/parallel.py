"""Sharded multi-process round engine (v2: streaming data plane).

A synchronous lockstep round is embarrassingly parallel across
*receivers*: on the honest envelope path (the only domain where this
module engages, see ``SynchronousNetwork._parallel_eligible``) a node's
round work — its ``on_round_begin`` / ``on_message`` / ``on_round_end``
transitions, outbound message sizing and ACK digest computation — reads
and writes only that node's enclave plus the network-level queues, never
another node's state.  So the engine partitions the ``n`` nodes into
``P`` shards (``node_id % P``), gives every shard its own *forked*
worker process holding a full replica of the network, and runs each
round as three phases coordinated over per-shard duplex channels
(:mod:`repro.net.shm`: shared-memory rings, or a pipe fallback):

``begin``     the coordinator broadcasts one command frame; workers run
              ``on_round_begin`` for their owned nodes and *stream*
              packed send-intents back in chunks as they are produced,
              closing the phase with one ``done`` frame;
``transmit``  the coordinator merges the streamed intents back into
              exact serial emission order (every record is keyed) and
              does *all* traffic accounting while building the plan;
``deliver``   the plan is pickled once and written into every shard's
              ring; workers dispatch the members addressed to their
              owned receivers, streaming next-round intents, and ship
              ACK aggregates / voluntary halts in the ``done`` frame;
``ack_wave``  the coordinator credits the pending multicast handles
              (reusing the serial ``_ack_wave_envelope`` verbatim on
              traced runs; on untraced runs the workers pre-aggregate);
``halt_check``/``end``  run on the coordinator's node mirror / in the
              workers respectively, with divergence halts shipped down
              so every replica observes the same liveness.

The v1 protocol ran the same phases over per-shard single-worker
``ProcessPoolExecutor``s — every phase paid two pickled pipe crossings
per shard plus the executor's queue-management threads, which the phase
observatory measured at ~96% of parallel wall clock
(``parallel_speedup_vs_serial`` 0.598).  v2 keeps every payload and
merge rule bit-for-bit but changes the carriage: command frames go down
a shared-memory ring, responses stream up as the workers produce them,
and the coordinator splices chunks incrementally instead of sleeping on
futures.  While the coordinator *is* blocked, the wall where at least
one shard was busy is charged to the ``overlap`` timing bucket (that is
parallelized compute, not coordination overhead); only the residual —
true protocol latency — stays in ``barrier``.

Determinism: per-node RNG streams live in the enclaves, which are
sharded wholesale; shard assignment is a pure function of ``node_id``;
every cross-process collection is keyed (node id, emission index, plan
position) with globally unique keys and merged in sorted key order,
which provably reconstructs the serial engine's iteration order no
matter how shard chunks interleave on the wire.  A parallel run
therefore yields byte-identical ``RunResult`` snapshots,
``TrafficStats`` ledgers and traced event streams versus
``_run_round_envelope`` — enforced by ``tests/test_parallel_engine.py``
and ``tests/test_parallel_v2.py`` on both data planes.

Bookkeeping that is *not* replicated: the coordinator performs no
transmit-side ``seal_envelope``/``open_envelope`` calls (on MODELED/NONE
transports these only advance internal channel counters, which nothing
on the eligible domain can observe), and worker-side tracers are
swapped for in-memory sinks whose events are shipped back each phase.

If worker processes cannot be forked at all, :func:`run_parallel` logs
why and returns ``None`` and the caller falls back to the serial
engine; a worker dying *mid-run* raises, because shard state is already
ahead of the coordinator's mirror.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import traceback
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.common.config import CHANNEL_OVERHEAD_BYTES
from repro.common.types import MessageType, ProtocolMessage
from repro.net.shm import (
    _NOTHING,
    _wait_spin,
    DATA_PLANE_PICKLE,
    DATA_PLANE_SHM,
    make_channels,
    shared_memory_available,
    shared_memory_unavailable_reason,
)
from repro.net.simulator import (
    MulticastHandle,
    RunResult,
    SynchronousNetwork,
    _multicast_key,
    _SendIntent,
)
from repro.net.stats import RoundRecord
from repro.obs.events import RoundSpan, WireEvent
from repro.obs.metrics import PROFILER, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sgx.enclave import EnclaveState
from repro.sgx.program import sparse_aware

_LOG = logging.getLogger("repro.engine")

_PKL = pickle.HIGHEST_PROTOCOL

#: Workers flush a streamed intent chunk once it holds this many staged
#: records — small enough that the coordinator overlaps its merge with
#: the shard still producing, large enough to amortize the pickle.
_FLUSH_INTENTS = 128

#: The network replica a freshly forked worker inherits.  Set in the
#: parent strictly while the worker processes are started (fork copies
#: it into the child), consumed by :func:`_worker_init` in the child,
#: and cleared on both sides immediately after.
_FORK_NETWORK: Optional[SynchronousNetwork] = None

#: Worker-side shard state, created once per process by _worker_init.
_STATE: Optional["_WorkerState"] = None


def resolve_data_plane(extra: Optional[dict]) -> str:
    """Pick the coordinator↔worker carriage for this run.

    ``extra["parallel_data_plane"]`` may force ``"shm"`` or ``"pickle"``;
    the default (``"auto"``) prefers shared memory and falls back to the
    pipe plane — loudly — when the host cannot provide it.
    """
    requested = (extra or {}).get("parallel_data_plane", "auto")
    if requested == DATA_PLANE_PICKLE:
        return DATA_PLANE_PICKLE
    if shared_memory_available():
        return DATA_PLANE_SHM
    _LOG.warning(
        "parallel engine: shared-memory data plane unavailable (%s); "
        "using pickle pipe fallback",
        shared_memory_unavailable_reason(),
    )
    return DATA_PLANE_PICKLE


def planned_data_plane(
    workers: Optional[int], extra: Optional[dict] = None
) -> Optional[str]:
    """The data plane a run with this shape would use, or ``None`` when
    the parallel engine is not in play (single worker, no fork).  Pure —
    no warnings — so stamps and bench entries can call it freely."""
    if not workers or workers <= 1:
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None  # pragma: no cover - POSIX containers always fork
    requested = (extra or {}).get("parallel_data_plane", "auto")
    if requested == DATA_PLANE_PICKLE:
        return DATA_PLANE_PICKLE
    return DATA_PLANE_SHM if shared_memory_available() else DATA_PLANE_PICKLE


class _WorkerState:
    __slots__ = ("net", "shard", "nshards", "owned", "events", "traced",
                 "timed", "bucket", "sparse", "aware", "always", "wake",
                 "buckets", "delivered", "visit", "undone", "decided_count")

    net: SynchronousNetwork
    shard: int
    nshards: int
    owned: List[int]
    events: Optional[List[object]]
    traced: bool
    timed: bool
    bucket: str
    # Sparse-scheduler shard view (mirrors SynchronousNetwork._sched_*,
    # restricted to owned nodes): wake hints / buckets drive the begin
    # visit list, ``delivered`` re-wakes receivers for round end, and the
    # undone set + decided counter replace the per-round O(owned) scans.
    sparse: bool
    aware: set
    always: List[int]
    wake: Dict[int, int]
    buckets: Dict[int, List[int]]
    delivered: set
    visit: List[int]
    undone: set
    decided_count: int


# A packed send intent, as shipped from workers to the coordinator:
# (sender, targets, message, size, digest, expect_acks, threshold).
# ``targets`` is ``None`` when the intent goes to the sender's full
# neighbour set — by far the common case — so a mesh multicast ships a
# sentinel instead of n-1 node ids; both sides resolve it through their
# own (identical) neighbour cache.
_PackedIntent = Tuple[int, Optional[Tuple[int, ...]], ProtocolMessage, int,
                      bytes, bool, int]


def _pack_intent(
    intent: _SendIntent, rnd: int, net: SynchronousNetwork,
    tmb: Optional[dict] = None,
) -> _PackedIntent:
    """Stamp, size and digest one staged intent (the per-sender work the
    serial transmit phase does inline, here parallelized into the worker
    that ran the emitting hook).  ``tmb`` is a timing-bucket dict the
    digest / sizing costs accrue into when the run is timed."""
    message = intent.message.with_round(rnd)
    if tmb is None:
        digest = net._ack_digest(_multicast_key(message))
        targets: Optional[Tuple[int, ...]] = intent.targets
        size = net.transport.message_size(message) if targets else 0
    else:
        t0 = perf_counter()
        digest = net._ack_digest(_multicast_key(message))
        t1 = perf_counter()
        targets = intent.targets
        size = net.transport.message_size(message) if targets else 0
        t2 = perf_counter()
        tmb["digest"] = tmb.get("digest", 0.0) + (t1 - t0)
        tmb["serialize"] = tmb.get("serialize", 0.0) + (t2 - t1)
    if targets and targets is net._neighbour_cache.get(intent.sender):
        targets = None
    return (
        intent.sender, targets, message, size, digest,
        intent.expect_acks, intent.threshold,
    )


# ----------------------------------------------------------------------
# worker-side phase handlers (run inside the forked shard processes)
# ----------------------------------------------------------------------

def _worker_init(shard: int, nshards: int) -> None:
    """First thing a freshly forked worker does: claim the inherited
    network replica and reduce it to this shard's view."""
    global _STATE, _FORK_NETWORK
    net = _FORK_NETWORK
    _FORK_NETWORK = None
    if net is None:  # pragma: no cover - defensive: spawn start method
        raise RuntimeError(
            "parallel engine worker started without a forked network"
        )
    st = _WorkerState()
    st.net = net
    st.shard = shard
    st.nshards = nshards
    st.owned = [i for i in range(net.config.n) if i % nshards == shard]
    st.traced = net.tracer.enabled
    # The worker replica's hooks are timed from the phase handlers, not
    # by the engine; buckets ship back per phase as plain dicts.
    st.timed = net._timing is not None
    st.bucket = "other"
    net._timing = None
    if PROFILER.enabled:
        # The fork copied the coordinator's profiling registry wholesale;
        # keeping it would re-ship the parent's pre-fork observations.  A
        # fresh registry makes the dump shipped at _worker_finish hold
        # exactly this shard's post-fork counts, so coordinator + worker
        # registries add to what a serial run would have observed.
        PROFILER.registry = MetricsRegistry()
    if st.traced:
        # Replace the inherited tracer (whose sinks may hold duplicated
        # file handles) with a memory sink; events ship back per phase.
        tracer = Tracer.memory()
        net.tracer = tracer
        st.events = tracer.events
    else:
        net.tracer = NULL_TRACER
        st.events = None
    # The coordinator owns all queue state; worker replicas start clean.
    net._outbox_now.clear()
    net._outbox_next.clear()
    net._ack_queue.clear()
    net._ack_queue_fast.clear()
    net._ack_digest_by_id.clear()
    # Sparse scheduling: rebuild the engine's wake bookkeeping restricted
    # to owned nodes.  Wake hints are pure functions of enclave state,
    # which is sharded wholesale, so every shard's view evolves exactly
    # like the matching slice of the serial engine's.
    _rebuild_sparse_view(st)
    _STATE = st


def _rebuild_sparse_view(st: "_WorkerState") -> None:
    """(Re)build the shard's sparse-scheduler view from the replica's
    current programs — at fork time and again on every session recycle
    (the recycled programs may differ in SPARSE_AWARE)."""
    net = st.net
    st.sparse = net._sparse
    if st.sparse:
        st.aware = {
            i for i in st.owned if sparse_aware(net.nodes[i].program)
        }
        st.always = [i for i in st.owned if i not in st.aware]
        st.wake = {i: 1 for i in st.aware}
        st.buckets = {1: sorted(st.aware)} if st.aware else {}
        st.delivered = set()
        st.visit = []
        st.undone = set()
        st.decided_count = 0
        for i in st.owned:
            node = net.nodes[i]
            if node.program.has_output:
                st.decided_count += 1
            elif node.alive:
                st.undone.add(i)


def _worker_recycle(channel, payload: tuple) -> None:
    """Session recycle (op ``"n"``): re-run the fresh-run reset on this
    replica so a persistent crew serves the next protocol run without
    reforking.

    Mirrors what the coordinator's :meth:`SynchronousNetwork.\
begin_session_run` + ``_setup`` did on its side — same relaunch, same
    re-seeding, same cache invalidation, then ``on_setup`` for every
    alive node (fork inheritance would have copied exactly that state) —
    followed by the worker-side specialisations of ``_worker_init``:
    queues stay coordinator-owned, the tracer is a local memory sink,
    timing buckets ship per phase, and the sparse shard view is rebuilt
    from the new programs.
    """
    st = _STATE
    net = st.net
    seed, factory, traced, timed = payload
    net.begin_session_run(factory, seed=seed)
    # _resolve_run_paths restored config's tracer/timing; re-apply the
    # worker policy (the inherited config tracer may hold duplicated
    # file handles, and worker walls are charged per phase, not here).
    st.traced = traced
    st.timed = timed
    net._timing = None
    if traced:
        tracer = Tracer.memory()
        net.tracer = tracer
        st.events = tracer.events
    else:
        net.tracer = NULL_TRACER
        st.events = None
    if PROFILER.enabled:
        PROFILER.registry = MetricsRegistry()
    for node in net.nodes.values():
        if node.alive:
            node.program.on_setup(node.context)
    # The coordinator owns all queue state (it ran the same on_setup and
    # keeps the staged intents); worker replicas start each run clean.
    net._outbox_now.clear()
    net._outbox_next.clear()
    net._ack_queue.clear()
    net._ack_queue_fast.clear()
    net._ack_digest_by_id.clear()
    _rebuild_sparse_view(st)
    channel.send(("r", st.shard))


def _check_no_stray_acks(net: SynchronousNetwork, hook: str) -> None:
    if net._ack_queue_fast or net._ack_queue:
        raise RuntimeError(
            f"parallel engine: ctx.acknowledge during {hook} is not "
            "supported (ACKs must answer a delivered message); "
            "run with workers=1"
        )


def _flush_staged(channel, staged: List[tuple], timed: bool) -> float:
    """Stream one chunk of keyed staged intents home; returns the send
    seconds (0.0 on untimed runs)."""
    if timed:
        t0 = perf_counter()
        channel.send(("s", staged))
        return perf_counter() - t0
    channel.send(("s", staged))
    return 0.0


def _worker_begin(channel, rnd: int) -> None:
    """Phase 1: on_round_begin for owned live nodes, in node order.

    Staged intents stream home in keyed chunks as nodes produce them;
    the closing ``done`` frame carries voluntary halts, traced event
    batches and the shard's timing payload — ``(busy_seconds, buckets)``
    when the run is timed, else ``None``.
    """
    st = _STATE
    net = st.net
    timed = st.timed
    t_start = perf_counter() if timed else 0.0
    tmb: Optional[dict] = {} if timed else None
    handler_s = 0.0
    send_s = 0.0
    net.current_round = rnd
    outbox = net._outbox_now
    events = st.events
    halted: List[int] = []
    staged: List[tuple] = []
    batches: List[tuple] = []
    counts = None
    if st.sparse:
        t0 = perf_counter() if timed else 0.0
        woken = st.buckets.pop(rnd, None)
        if woken:
            wake = st.wake
            sched = sorted({i for i in woken if wake.get(i) == rnd})
        else:
            sched = []
        if not st.always:
            visit_ids = sched
        elif not sched:
            visit_ids = st.always
        else:
            visit_ids = sorted(st.always + sched)
        st.visit = visit_ids
        counts = (len(visit_ids), len(st.owned) - len(visit_ids))
        if timed:
            tmb["scheduler"] = tmb.get("scheduler", 0.0) + (
                perf_counter() - t0
            )
    else:
        visit_ids = st.owned
    net._in_round_begin = True
    for node_id in visit_ids:
        node = net.nodes[node_id]
        if not node.alive:
            continue
        obase = len(outbox)
        ebase = len(events) if events is not None else 0
        if timed:
            t0 = perf_counter()
            node.program.on_round_begin(node.context)
            handler_s += perf_counter() - t0
        else:
            node.program.on_round_begin(node.context)
        if node.enclave.halted:
            halted.append(node_id)
        for idx in range(obase, len(outbox)):
            staged.append(
                ((node_id, idx - obase),
                 _pack_intent(outbox[idx], rnd, net, tmb))
            )
        if len(staged) >= _FLUSH_INTENTS:
            send_s += _flush_staged(channel, staged, timed)
            staged = []
        if events is not None and len(events) > ebase:
            batches.append((node_id, events[ebase:]))
    net._in_round_begin = False
    outbox.clear()
    if events is not None:
        events.clear()
    _check_no_stray_acks(net, "on_round_begin")
    if staged:
        send_s += _flush_staged(channel, staged, timed)
    timing = None
    if timed:
        tmb["handler"] = tmb.get("handler", 0.0) + handler_s
        tmb[st.bucket] = tmb.get(st.bucket, 0.0) + send_s
        timing = (perf_counter() - t_start, tmb)
    channel.send(("d", (halted, batches, counts, timing)))


def _worker_deliver(channel, rnd: int, packed: list) -> None:
    """Phase 2: dispatch the plan's members to owned receivers.

    Next-round intents stream home in keyed chunks; the ``done`` frame
    carries voluntary halts, per-(plan, target) omission keys for dead
    owned receivers and the ACK wave (raw and keyed when traced, else
    pre-aggregated link/credit counters).
    """
    st = _STATE
    net = st.net
    timed = st.timed
    t_start = perf_counter() if timed else 0.0
    tmb: Optional[dict] = {} if timed else None
    handler_s = 0.0
    send_s = 0.0
    digest_by_id = net._ack_digest_by_id
    digest_by_id.clear()
    plan = []
    for sender, targets, message, digest in packed:
        if targets is None:
            targets = net.neighbour_tuple(sender)
        digest_by_id[id(message)] = digest
        plan.append((sender, targets, message))
    nshards = st.nshards
    shard = st.shard
    nodes = net.nodes
    outbox = net._outbox_next
    ackq = net._ack_queue_fast
    events = st.events
    traced = st.traced
    halted: List[int] = []
    omitted: List[tuple] = []
    staged: List[tuple] = []
    batches: List[tuple] = []
    raw_acks: List[tuple] = []
    halted_state = EnclaveState.HALTED
    delivered = st.delivered if st.sparse else None
    next_rnd = rnd + 1
    for i, (sender, targets, message) in enumerate(plan):
        for j, receiver in enumerate(targets):
            if receiver % nshards != shard:
                continue
            node = nodes[receiver]
            enclave = node.enclave
            if enclave.state is halted_state:
                omitted.append((i, j))
                continue
            abase = len(ackq)
            obase = len(outbox)
            ebase = len(events) if traced else 0
            if delivered is not None:
                delivered.add(receiver)
            if timed:
                t0 = perf_counter()
                node.program.on_message(node.context, sender, message)
                handler_s += perf_counter() - t0
            else:
                node.program.on_message(node.context, sender, message)
            if enclave.state is halted_state:
                halted.append(receiver)
            if traced and len(ackq) > abase:
                for k in range(abase, len(ackq)):
                    raw_acks.append(((i, j, k - abase), ackq[k]))
            for idx in range(obase, len(outbox)):
                staged.append(
                    ((i, j, idx - obase),
                     _pack_intent(outbox[idx], next_rnd, net, tmb))
                )
            if len(staged) >= _FLUSH_INTENTS:
                send_s += _flush_staged(channel, staged, timed)
                staged = []
            if traced and len(events) > ebase:
                batches.append(((i, j), events[ebase:]))
    link_counts: Dict[tuple, int] = {}
    credits: Dict[tuple, int] = {}
    total = 0
    if not traced:
        # Pre-aggregate the wave.  The serial ACK wave drops a halted
        # acker's queued ACKs at wave time; since every ACK a node emits
        # is handled in its own shard, final liveness is known locally.
        for acker, dest, digest in ackq:
            if nodes[acker].enclave.state is halted_state:
                continue
            total += 1
            key = (acker, dest)
            link_counts[key] = link_counts.get(key, 0) + 1
            ckey = (dest, digest)
            credits[ckey] = credits.get(ckey, 0) + 1
    ackq.clear()
    outbox.clear()
    if traced:
        events.clear()
    if staged:
        send_s += _flush_staged(channel, staged, timed)
    timing = None
    if timed:
        tmb["handler"] = tmb.get("handler", 0.0) + handler_s
        tmb[st.bucket] = tmb.get(st.bucket, 0.0) + send_s
        timing = (perf_counter() - t_start, tmb)
    channel.send((
        "d",
        (halted, omitted, link_counts, credits, total, raw_acks, batches,
         timing),
    ))


def _worker_end(
    channel, rnd: int, halted_now: List[int], seconds: float
) -> None:
    """Phase 3: apply divergence halts, run on_round_end, advance the
    shard's clock replica, and report decided / all-done state."""
    st = _STATE
    net = st.net
    timed = st.timed
    t_start = perf_counter() if timed else 0.0
    tmb: Optional[dict] = {} if timed else None
    handler_s = 0.0
    send_s = 0.0
    for node_id in halted_now:
        enclave = net.nodes[node_id].enclave
        if not enclave.halted:
            enclave.halt(rnd)
            net.evict_departed_node(node_id)
    outbox = net._outbox_next
    events = st.events
    traced = st.traced
    halted: List[int] = []
    staged: List[tuple] = []
    batches: List[tuple] = []
    counts = None
    if st.sparse:
        t0 = perf_counter() if timed else 0.0
        delivered = st.delivered
        if delivered:
            delivered.update(st.visit)
            end_visit = sorted(delivered)
        else:
            end_visit = st.visit
        counts = (len(end_visit), len(st.owned) - len(end_visit))
        if timed:
            tmb["scheduler"] = tmb.get("scheduler", 0.0) + (
                perf_counter() - t0
            )
    else:
        end_visit = st.owned
    next_rnd = rnd + 1
    for node_id in end_visit:
        node = net.nodes[node_id]
        if not node.alive:
            continue
        obase = len(outbox)
        ebase = len(events) if traced else 0
        if timed:
            t0 = perf_counter()
            node.program.on_round_end(node.context)
            handler_s += perf_counter() - t0
        else:
            node.program.on_round_end(node.context)
        if node.enclave.halted:
            halted.append(node_id)
        for idx in range(obase, len(outbox)):
            staged.append(
                ((node_id, idx - obase),
                 _pack_intent(outbox[idx], next_rnd, net, tmb))
            )
        if len(staged) >= _FLUSH_INTENTS:
            send_s += _flush_staged(channel, staged, timed)
            staged = []
        if traced and len(events) > ebase:
            batches.append((node_id, events[ebase:]))
    outbox.clear()
    if traced:
        events.clear()
    _check_no_stray_acks(net, "on_round_end")
    net.clock.advance(seconds)
    if st.sparse:
        t0 = perf_counter() if timed else 0.0
        wake = st.wake
        buckets = st.buckets
        undone = st.undone
        aware = st.aware
        nodes = net.nodes
        for node_id in end_visit:
            node = nodes[node_id]
            if node_id in undone and (
                node.program.has_output or not node.alive
            ):
                undone.discard(node_id)
                if node.program.has_output:
                    st.decided_count += 1
            if not node.alive:
                wake.pop(node_id, None)
                continue
            if node_id in aware:
                hint = node.program.sparse_wake_round(rnd)
                if hint is None:
                    wake.pop(node_id, None)
                else:
                    if hint <= rnd:
                        hint = rnd + 1
                    if wake.get(node_id) != hint:
                        wake[node_id] = hint
                        buckets.setdefault(hint, []).append(node_id)
        nshards = st.nshards
        shard = st.shard
        for node_id in halted_now:
            if node_id % nshards != shard:
                continue
            wake.pop(node_id, None)
            if node_id in undone:
                undone.discard(node_id)
                if nodes[node_id].program.has_output:
                    st.decided_count += 1
        st.delivered.clear()
        st.visit = []
        decided = st.decided_count
        all_done = not undone
        if timed:
            tmb["scheduler"] = tmb.get("scheduler", 0.0) + (
                perf_counter() - t0
            )
    else:
        decided = 0
        all_done = True
        for node_id in st.owned:
            node = net.nodes[node_id]
            if node.program.has_output:
                decided += 1
            elif node.alive:
                all_done = False
    if staged:
        send_s += _flush_staged(channel, staged, timed)
    timing = None
    if timed:
        tmb["handler"] = tmb.get("handler", 0.0) + handler_s
        tmb[st.bucket] = tmb.get(st.bucket, 0.0) + send_s
        timing = (perf_counter() - t_start, tmb)
    channel.send(("d", (halted, batches, decided, all_done, counts, timing)))


def _worker_finish(channel) -> None:
    """Final phase: on_protocol_end, then ship the terminal per-node
    state back as plain tuples.

    Plain tuples, not program objects: ``EnclaveProgram`` tracks its
    undecided state with a module-level ``_UNSET`` singleton compared by
    identity, which pickling would silently break.
    """
    st = _STATE
    net = st.net
    timed = st.timed
    t_start = perf_counter() if timed else 0.0
    handler_s = 0.0
    events = st.events
    traced = st.traced
    batches: List[tuple] = []
    for node_id in st.owned:
        node = net.nodes[node_id]
        if not node.alive:
            continue
        ebase = len(events) if traced else 0
        if timed:
            t0 = perf_counter()
            node.program.on_protocol_end(node.context)
            handler_s += perf_counter() - t0
        else:
            node.program.on_protocol_end(node.context)
        if traced and len(events) > ebase:
            batches.append((node_id, events[ebase:]))
    final = []
    for node_id in st.owned:
        node = net.nodes[node_id]
        program = node.program
        has_output = program.has_output
        final.append((
            node_id,
            node.alive,
            node.enclave.halted_round,
            has_output,
            program.output if has_output else None,
            program.decided_round,
            node.enclave.rdrand,
        ))
    # Ship this shard's post-fork profiling observations home: the fork
    # orphans the worker's PROFILER registry, so without this the crypto /
    # serialization histograms a parallel run populates in the workers
    # would silently vanish from the coordinator's report.
    profile = None
    if PROFILER.enabled and PROFILER.registry is not None:
        profile = PROFILER.registry.dump()
        # A persistent crew (engine sessions) may serve further runs from
        # this same process; a fresh registry keeps the next run's dump
        # from re-shipping (double-counting) this run's observations.
        PROFILER.registry = MetricsRegistry()
    timing = (perf_counter() - t_start, {"handler": handler_s}) \
        if timed else None
    channel.send(("d", (batches, final, profile, timing)))


def _worker_main(shard: int, nshards: int, channel) -> None:
    """Worker process entry: bind the channel, init the shard, then loop
    on command frames until told to quit.  Any failure ships one ``"x"``
    frame (the formatted traceback) home and exits non-zero; exit is via
    ``os._exit`` so inherited file handles and shared mappings are never
    double-flushed or double-closed by the child's teardown."""
    status = 0
    try:
        channel.bind_worker()
        _worker_init(shard, nshards)
        _STATE.bucket = (
            "shm" if channel.data_plane == DATA_PLANE_SHM else "serialize"
        )
        channel.send(("r", shard))
        parent_pid = os.getppid()

        def _parent_alive() -> None:
            if os.getppid() != parent_pid:  # pragma: no cover - reparented
                os._exit(3)

        while True:
            cmd = channel.recv(_parent_alive)
            op = cmd[0]
            if op == "b":
                _worker_begin(channel, cmd[1])
            elif op == "v":
                _worker_deliver(channel, cmd[1], cmd[2])
            elif op == "e":
                _worker_end(channel, cmd[1], cmd[2], cmd[3])
            elif op == "f":
                _worker_finish(channel)
            elif op == "n":
                _worker_recycle(channel, cmd[1])
            elif op == "q":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
    except BaseException:
        status = 1
        try:
            channel.send(("x", traceback.format_exc()))
        except Exception:  # pragma: no cover - channel gone too
            pass
    finally:
        os._exit(status)


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------

class _ShardCrew:
    """P forked worker processes, one duplex channel each.

    Dedicated processes (rather than one P-worker pool) pin each shard
    to one worker for the whole run — the fixed shard→worker assignment
    that keeps per-node RNG streams and caches deterministic.
    """

    def __init__(
        self, network: SynchronousNetwork, nshards: int, data_plane: str
    ) -> None:
        global _FORK_NETWORK
        ctx = multiprocessing.get_context("fork")
        # Flush any buffered tracer sinks: the children inherit open file
        # objects, and a non-empty write buffer would be flushed twice.
        for sink in network.tracer.sinks:
            fh = getattr(sink, "_fh", None)
            if fh is not None and not fh.closed:
                fh.flush()
        self.channels = make_channels(ctx, nshards, data_plane)
        self.nshards = nshards
        self.data_plane = (
            self.channels[0].data_plane if self.channels else data_plane
        )
        self.procs: List[multiprocessing.process.BaseProcess] = []
        _FORK_NETWORK = network
        try:
            for shard, channel in enumerate(self.channels):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(shard, nshards, channel),
                    name=f"repro-shard-{shard}",
                    daemon=True,
                )
                proc.start()
                self.procs.append(proc)
            for shard, channel in enumerate(self.channels):
                msg = channel.recv(self.check_alive)
                if msg[0] != "r":
                    self.raise_worker_error(shard, msg)
        except BaseException:
            self.shutdown()
            raise
        finally:
            _FORK_NETWORK = None

    def broadcast_frame(self, blob: bytes) -> None:
        for channel in self.channels:
            channel.send_frame(blob)

    def check_alive(self) -> None:
        for shard, proc in enumerate(self.procs):
            if not proc.is_alive():
                raise RuntimeError(
                    f"parallel engine: shard {shard} worker died "
                    f"(exit code {proc.exitcode})"
                )

    def raise_worker_error(self, shard: int, msg) -> None:
        if isinstance(msg, tuple) and msg and msg[0] == "x":
            raise RuntimeError(
                f"parallel engine: shard {shard} worker failed:\n{msg[1]}"
            )
        raise RuntimeError(  # pragma: no cover - protocol bug
            f"parallel engine: unexpected frame from shard {shard}: {msg!r}"
        )

    def shutdown(self) -> None:
        blob = pickle.dumps(("q",), _PKL)
        for proc, channel in zip(self.procs, self.channels):
            if proc.is_alive():
                try:
                    channel.send_frame(blob)
                except Exception:  # pragma: no cover - ring torn down
                    pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=5)
        for channel in self.channels:
            channel.close()


class _Coordinator:
    """Runs the round loop against a shard crew.

    The coordinator's own ``SynchronousNetwork`` acts as the *mirror*:
    its enclaves' liveness is kept in lockstep with the shards (worker
    hooks never run here), so plan building, halt checks and the final
    ``RunResult`` read the same state the serial engine would.
    """

    def __init__(self, network: SynchronousNetwork, crew: _ShardCrew) -> None:
        self.net = network
        self.crew = crew
        self.traced = network.tracer.enabled
        self.tm = network._timing
        self.chan_bucket = (
            "shm" if crew.data_plane == DATA_PLANE_SHM else "serialize"
        )
        # Setup ran in the main process before the fork, so the round-1
        # emissions are staged here, not in any worker.
        intents = network._outbox_next
        network._outbox_next = []
        tmb: Optional[dict] = {} if self.tm is not None else None
        self.pending: List[_PackedIntent] = [
            _pack_intent(intent, 1, network, tmb) for intent in intents
        ]
        if tmb:
            for bucket, seconds in tmb.items():
                self.tm.add(bucket, seconds)

    # -- helpers -------------------------------------------------------

    def _apply_halts(self, node_ids: List[int], rnd: int) -> None:
        net = self.net
        for node_id in node_ids:
            enclave = net.nodes[node_id].enclave
            if not enclave.halted:
                enclave.halt(rnd)
                net.evict_departed_node(node_id)

    def _emit_batches(self, batches: List[tuple]) -> None:
        """Splice per-node event batches back in serial (key) order."""
        emit = self.net.tracer.emit
        batches.sort(key=lambda kv: kv[0])
        for _key, events in batches:
            for event in events:
                emit(event)

    def _wave(self, blob: bytes, sink: List[tuple]):
        """One streamed phase: broadcast a command frame, then drain the
        shard channels until every shard's ``done`` frame has landed.

        Streamed ``"s"`` chunks splice into ``sink`` the moment they
        arrive — the incremental merge that replaces v1's
        wait-then-merge barrier.  Returns ``(done_payloads, wall)`` with
        payloads in shard order.

        Timed runs split the wave wall four ways: channel time (send +
        frame decode) into the data plane's bucket, splice time into
        ``merge``, and the *blocked* residual into ``overlap`` up to the
        busiest shard's in-phase busy time (that much of the wait bought
        parallel compute) with only the remainder — true coordination
        latency — charged to ``barrier``.
        """
        channels = self.crew.channels
        nshards = len(channels)
        done: List[Optional[tuple]] = [None] * nshards
        remaining = nshards
        tm = self.tm
        if tm is None:
            self.crew.broadcast_frame(blob)
            step = 0
            while remaining:
                progress = False
                for shard, channel in enumerate(channels):
                    if done[shard] is not None:
                        continue
                    while True:
                        msg = channel.try_recv()
                        if msg is _NOTHING:
                            break
                        progress = True
                        tag = msg[0]
                        if tag == "s":
                            sink.extend(msg[1])
                        elif tag == "d":
                            done[shard] = msg[1]
                            remaining -= 1
                            break
                        else:
                            self.crew.raise_worker_error(shard, msg)
                if progress:
                    step = 0
                else:
                    if step and step % 2048 == 0:
                        self.crew.check_alive()
                    _wait_spin(step)
                    step += 1
            return done, 0.0
        t_wave = perf_counter()
        self.crew.broadcast_frame(blob)
        chan_s = perf_counter() - t_wave
        merge_s = 0.0
        step = 0
        while remaining:
            progress = False
            for shard, channel in enumerate(channels):
                if done[shard] is not None:
                    continue
                while True:
                    t0 = perf_counter()
                    msg = channel.try_recv()
                    if msg is _NOTHING:
                        break  # empty-poll cost stays in the blocked wall
                    t1 = perf_counter()
                    chan_s += t1 - t0
                    progress = True
                    tag = msg[0]
                    if tag == "s":
                        sink.extend(msg[1])
                        merge_s += perf_counter() - t1
                    elif tag == "d":
                        done[shard] = msg[1]
                        remaining -= 1
                        break
                    else:
                        self.crew.raise_worker_error(shard, msg)
            if progress:
                step = 0
            else:
                if step and step % 2048 == 0:
                    self.crew.check_alive()
                _wait_spin(step)
                step += 1
        wall = perf_counter() - t_wave
        busy_max = 0.0
        for payload in done:
            w_timing = payload[-1]
            if w_timing is not None and w_timing[0] > busy_max:
                busy_max = w_timing[0]
        blocked = max(0.0, wall - chan_s - merge_s)
        overlap = min(blocked, busy_max)
        tm.add(self.chan_bucket, chan_s)
        tm.add("merge", merge_s)
        tm.add("overlap", overlap)
        tm.add("barrier", blocked - overlap)
        return done, wall

    # -- the round loop ------------------------------------------------

    def run(self, max_rounds: int) -> RunResult:
        net = self.net
        for rnd in range(1, max_rounds + 1):
            net.current_round = rnd
            if self._round(rnd):
                break
        return self._finish()

    def _round(self, rnd: int) -> bool:
        net = self.net
        nodes = net.nodes
        traffic = net.stats.traffic
        tracer = net.tracer
        traced = self.traced
        tm = self.tm
        nshards = len(self.crew.channels)
        if tm is not None:
            tm.start_round(rnd)
            # Coordinator buckets cover the coordinator's own wall only;
            # the workers' in-phase breakdowns accumulate here and
            # attach per shard (busy + idle) when the round closes.
            shard_busy = [0.0] * nshards
            shard_buckets: List[dict] = [{} for _ in range(nshards)]
            wave_wall = 0.0
        omissions_before = traffic.omissions
        rejections_before = traffic.rejections
        net._pending_handles.clear()
        net._ack_size_cache.clear()

        # Phase 1: round begin.  Carried-over intents (staged during the
        # previous round's deliver/end hooks, already packed) precede the
        # ones on_round_begin emits now, exactly as the serial outbox
        # swap orders them.
        outbox = self.pending
        self.pending = []
        if traced:
            tracer.phase(rnd, "begin", count=len(outbox))
        begin_staged: List[tuple] = []
        responses, wall = self._wave(
            pickle.dumps(("b", rnd), _PKL), begin_staged
        )
        if tm is not None:
            wave_wall += wall
            t0 = perf_counter()
        begin_events: List[tuple] = []
        sched_counters = net.sched_counters
        for shard, (halted, batches, w_counts, w_timing) in \
                enumerate(responses):
            self._apply_halts(halted, rnd)
            begin_events.extend(batches)
            if w_counts is not None:
                sched_counters["begin_visited"] += w_counts[0]
                sched_counters["begin_skipped"] += w_counts[1]
            if w_timing is not None:
                busy, buckets = w_timing
                shard_busy[shard] += busy
                sb = shard_buckets[shard]
                for bucket, seconds in buckets.items():
                    sb[bucket] = sb.get(bucket, 0.0) + seconds
        if traced:
            self._emit_batches(begin_events)
        begin_staged.sort(key=lambda kv: kv[0])
        outbox.extend(record for _key, record in begin_staged)
        if tm is not None:
            tm.add("merge", perf_counter() - t0)

        # Phase 2: transmit.  All accounting happens here on the
        # coordinator's ledger, replaying the serial transmit loop over
        # the merged outbox; sizes and digests were computed in the
        # workers (or in _pack_intent for round-1 setup intents).
        if traced:
            tracer.phase(rnd, "transmit", count=len(outbox))
        t0 = perf_counter() if tm is not None else 0.0
        handles = net._pending_handles
        plan: List[tuple] = []
        per_sender: Dict[int, List[tuple]] = {}
        logical_count = 0
        for record in outbox:
            sender, targets, message, size, digest, expect_acks, threshold \
                = record
            if not nodes[sender].alive:
                continue
            resolved = (
                net.neighbour_tuple(sender) if targets is None else targets
            )
            if expect_acks:
                handles[(sender, digest)] = MulticastHandle(
                    sender=sender,
                    rnd=rnd,
                    key=digest,
                    expect_acks=expect_acks,
                    threshold=threshold,
                    targets=len(resolved),
                )
            if not resolved:
                continue
            logical_count += len(resolved)
            plan.append((sender, targets, resolved, message, size, digest))
            per_sender.setdefault(sender, []).append((resolved, size))
            traffic.record_send_bulk(
                message.type,
                size * len(resolved),
                rnd,
                len(resolved),
                physical=False,
            )
            if traced:
                mtype = message.type.value
                for receiver in resolved:
                    tracer.emit(WireEvent(
                        rnd=rnd,
                        sender=sender,
                        receiver=receiver,
                        size=size,
                        action="send",
                        mtype=mtype,
                        charged=True,
                    ))

        # Physical ledger: one envelope per (sender, receiver) link, the
        # same coalescing arithmetic as the serial path.  No channel
        # seal/open here — on MODELED/NONE those only bump internal
        # counters nothing on the eligible domain observes.
        overhead = CHANNEL_OVERHEAD_BYTES
        for sender, entries in per_sender.items():
            first_targets = entries[0][0]
            if all(
                e[0] is first_targets or e[0] == first_targets
                for e in entries
            ):
                env_size = (
                    sum(e[1] for e in entries) - overhead * (len(entries) - 1)
                )
                traffic.record_envelopes(
                    len(first_targets), env_size * len(first_targets)
                )
                if traced:
                    count = len(entries)
                    for receiver in first_targets:
                        tracer.envelope(rnd, sender, receiver, count, env_size)
            else:
                buckets: Dict[int, int] = {}
                sizes: Dict[int, int] = {}
                for targets, size in entries:
                    for receiver in targets:
                        buckets[receiver] = buckets.get(receiver, 0) + 1
                        sizes[receiver] = sizes.get(receiver, 0) + size
                for receiver, count in buckets.items():
                    env_size = sizes[receiver] - overhead * (count - 1)
                    traffic.record_envelope(count, env_size)
                    if traced:
                        tracer.envelope(rnd, sender, receiver, count, env_size)
        if tm is not None:
            tm.add("merge", perf_counter() - t0)

        # Phase 3: deliver.  The plan is pickled once and the same frame
        # written into every shard's ring; the workers dispatch, the
        # coordinator accounts.
        if traced:
            tracer.phase(rnd, "deliver", count=logical_count)
        t0 = perf_counter() if tm is not None else 0.0
        blob = pickle.dumps(
            ("v", rnd, [(s, raw, m, d) for s, raw, _res, m, _sz, d in plan]),
            _PKL,
        )
        if tm is not None:
            tm.add("serialize", perf_counter() - t0)
        deliver_staged: List[tuple] = []
        omitted: List[tuple] = []
        raw_acks: List[tuple] = []
        link_counts: Dict[tuple, int] = {}
        credits: Dict[tuple, int] = {}
        ack_total = 0
        deliver_events: Dict[tuple, list] = {}
        responses, wall = self._wave(blob, deliver_staged)
        if tm is not None:
            wave_wall += wall
            t0 = perf_counter()
        for shard, response in enumerate(responses):
            (halted, w_omitted, w_links, w_credits, w_total, w_raw,
             batches, w_timing) = response
            self._apply_halts(halted, rnd)
            omitted.extend(w_omitted)
            if w_timing is not None:
                busy, buckets = w_timing
                shard_busy[shard] += busy
                sb = shard_buckets[shard]
                for bucket, seconds in buckets.items():
                    sb[bucket] = sb.get(bucket, 0.0) + seconds
            if traced:
                raw_acks.extend(w_raw)
                for key, events in batches:
                    deliver_events[key] = events
            else:
                for key, value in w_links.items():
                    link_counts[key] = link_counts.get(key, 0) + value
                for key, value in w_credits.items():
                    credits[key] = credits.get(key, 0) + value
                ack_total += w_total
        if omitted:
            traffic.record_omissions(len(omitted))
        if traced:
            # Replay dispatch order: per (plan index, target index),
            # either the receiver's hook events or its omit_dead event.
            omitted_keys = set(omitted)
            emit = tracer.emit
            for i, (sender, _raw, resolved, message, size, _d) in \
                    enumerate(plan):
                mtype = message.type.value
                for j, receiver in enumerate(resolved):
                    events = deliver_events.get((i, j))
                    if events:
                        for event in events:
                            emit(event)
                    elif (i, j) in omitted_keys:
                        emit(WireEvent(
                            rnd=rnd,
                            sender=sender,
                            receiver=receiver,
                            size=size,
                            action="omit_dead",
                            mtype=mtype,
                        ))
        if tm is not None:
            tm.add("merge", perf_counter() - t0)

        # Phase 4: ack wave.
        t0 = perf_counter() if tm is not None else 0.0
        if traced:
            raw_acks.sort(key=lambda kv: kv[0])
            queue = [ack for _key, ack in raw_acks]
            tracer.phase(rnd, "ack_wave", count=len(queue))
            if queue:
                net._ack_wave_envelope(queue, rnd)
        elif ack_total or credits:
            self._ack_wave_aggregated(link_counts, credits, ack_total, rnd)
        if tm is not None:
            tm.add("ack_wave", perf_counter() - t0)

        # Phases 5 and 6.  The live scan is O(n) and only feeds the
        # traced RoundSpan / debug log, so sparse runs skip it.
        halted_now = net._phase_halt_check(rnd)
        debug = _LOG.isEnabledFor(logging.DEBUG)
        live = 0
        if traced or debug:
            live = sum(1 for node in nodes.values() if node.alive)
        if traced:
            tracer.phase(rnd, "end", count=live)
        seconds = net.config.round_seconds
        round_bytes = traffic.round_bytes(rnd)
        bandwidth = net.config.bandwidth_bytes_per_s
        if bandwidth:
            seconds = max(seconds, round_bytes / bandwidth)
        end_staged: List[tuple] = []
        end_events: List[tuple] = []
        decided = 0
        all_done = True
        responses, wall = self._wave(
            pickle.dumps(("e", rnd, halted_now, seconds), _PKL), end_staged
        )
        if tm is not None:
            wave_wall += wall
            t0 = perf_counter()
        for shard, (halted, batches, w_decided, w_done, w_counts,
                    w_timing) in enumerate(responses):
            self._apply_halts(halted, rnd)
            end_events.extend(batches)
            decided += w_decided
            all_done = all_done and w_done
            if w_counts is not None:
                sched_counters["end_visited"] += w_counts[0]
                sched_counters["end_skipped"] += w_counts[1]
            if w_timing is not None:
                busy, buckets = w_timing
                shard_busy[shard] += busy
                sb = shard_buckets[shard]
                for bucket, seconds_ in buckets.items():
                    sb[bucket] = sb.get(bucket, 0.0) + seconds_
        if traced:
            self._emit_batches(end_events)
        if tm is not None:
            tm.add("merge", perf_counter() - t0)
        net.clock.advance(seconds)
        net.stats.rounds.append(
            RoundRecord(rnd=rnd, bytes=round_bytes, seconds=seconds)
        )
        if traced or debug:
            omissions = traffic.omissions - omissions_before
            rejections = traffic.rejections - rejections_before
            if traced:
                tracer.emit(RoundSpan(
                    rnd=rnd,
                    bytes=round_bytes,
                    seconds=seconds,
                    omissions=omissions,
                    rejections=rejections,
                    live=live,
                    decided=decided,
                    halted=halted_now,
                ))
            _LOG.debug(
                "round %d: bytes=%d seconds=%.3f omissions=%d rejections=%d "
                "live=%d decided=%d halted=%s [parallel x%d %s]",
                rnd, round_bytes, seconds, omissions, rejections,
                live, decided, halted_now, nshards, self.crew.data_plane,
            )
        if net._round_hook is not None:
            # Halts and liveness are mirrored into the coordinator, so the
            # per-round observation hook sees the same network view the
            # serial engine's _phase_end would hand it.
            net._round_hook(net, rnd, halted_now)
        t0 = perf_counter() if tm is not None else 0.0
        deliver_staged.sort(key=lambda kv: kv[0])
        end_staged.sort(key=lambda kv: kv[0])
        self.pending = [record for _key, record in deliver_staged]
        self.pending.extend(record for _key, record in end_staged)
        if tm is not None:
            tm.add("merge", perf_counter() - t0)
            for shard in range(nshards):
                busy = shard_busy[shard]
                tm.record_shard(
                    shard, busy, max(0.0, wave_wall - busy),
                    shard_buckets[shard],
                )
            net._finish_round_timing(tm, rnd)
        return all_done

    def _ack_wave_aggregated(
        self,
        link_counts: Dict[tuple, int],
        credits: Dict[tuple, int],
        total: int,
        rnd: int,
    ) -> None:
        """Untraced ACK wave from worker-aggregated counters — the same
        arithmetic as ``_ack_wave_envelope``, minus per-ACK iteration."""
        net = self.net
        nodes = net.nodes
        traffic = net.stats.traffic
        ack_size = net.transport.message_size(ProtocolMessage(
            type=MessageType.ACK,
            initiator=0,
            seq=0,
            payload=b"\x00" * 8,
            rnd=rnd,
            instance="",
        ))
        if total:
            traffic.record_send_bulk(
                MessageType.ACK, ack_size * total, rnd, total, physical=False
            )
        overhead = CHANNEL_OVERHEAD_BYTES
        for (_acker, _dest), count in link_counts.items():
            traffic.record_envelope(count, ack_size * count - overhead * (count - 1))
        handles = net._pending_handles
        for (dest, digest), count in credits.items():
            if not nodes[dest].alive:
                traffic.record_omissions(count)
                continue
            handle = handles.get((dest, digest))
            if handle is not None:
                handle.acks += count

    # -- protocol end --------------------------------------------------

    def _finish(self) -> RunResult:
        net = self.net
        batches: List[tuple] = []
        final: Dict[int, tuple] = {}
        # No round is open any more, so the wave's buckets land at run
        # level: the finish handoff is engine overhead, like the fork.
        responses, _wall = self._wave(pickle.dumps(("f",), _PKL), [])
        for w_batches, w_final, w_profile, _w_timing in responses:
            batches.extend(w_batches)
            for record in w_final:
                final[record[0]] = record
            if w_profile is not None and PROFILER.enabled \
                    and PROFILER.registry is not None:
                PROFILER.registry.merge_dump(w_profile)
        if self.traced:
            self._emit_batches(batches)
        outputs: Dict[int, object] = {}
        decided: Dict[int, Optional[int]] = {}
        halted: List[int] = []
        for node_id in sorted(final):
            (_nid, alive, halted_round, has_output, output, decided_round,
             rdrand) = final[node_id]
            enclave = net.nodes[node_id].enclave
            # Re-sync the mirror's per-node RNG stream so a follow-up
            # instance on this network (replace_programs) continues the
            # exact stream a serial run would.
            enclave.rdrand = rdrand
            if not alive:
                if not enclave.halted:  # halts during on_protocol_end
                    enclave.halt(halted_round)
                    net.evict_departed_node(node_id)
                halted.append(node_id)
            if has_output:
                outputs[node_id] = output
                decided[node_id] = decided_round
        return RunResult(
            outputs=outputs,
            halted=halted,
            stats=net.stats,
            decided_rounds=decided,
        )


def run_parallel(
    network: SynchronousNetwork, max_rounds: int
) -> Optional[RunResult]:
    """Run an eligible network on the sharded engine.

    Returns ``None`` — *before* mutating any state, and after logging
    why — when worker processes cannot be forked, in which case the
    caller runs the serial engine instead.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        _LOG.warning(  # pragma: no cover - POSIX containers always fork
            "parallel engine unavailable (no fork start method on this "
            "platform); running serial"
        )
        return None  # pragma: no cover
    data_plane = resolve_data_plane(network.config.extra)
    nshards = min(network.config.workers, network.config.n)
    tm = network._timing
    t0 = perf_counter() if tm is not None else 0.0
    # Engine sessions (repro.net.session) keep the forked crew alive
    # across runs: fork once, run many.  A reusable crew must match this
    # run's shape and come with a recycle payload prepared by the
    # session's begin_session_run — anything else reforks from scratch.
    persistent = getattr(network, "_session_persistent", False)
    crew = getattr(network, "_session_crew", None)
    reset = network.__dict__.pop("_session_worker_reset", None)
    if crew is not None and (
        reset is None
        or crew.nshards != nshards
        or crew.data_plane != data_plane
        or not all(proc.is_alive() for proc in crew.procs)
    ):
        crew.shutdown()
        crew = None
        network._session_crew = None
    if crew is not None:
        try:
            blob = pickle.dumps(("n", reset), _PKL)
        except Exception:
            # Unpicklable program factory: the recycle frame cannot ship;
            # fall back to a fresh fork (which needs no pickling at all).
            crew.shutdown()
            crew = None
            network._session_crew = None
        else:
            crew.broadcast_frame(blob)
            for shard, channel in enumerate(crew.channels):
                msg = channel.recv(crew.check_alive)
                if msg[0] != "r":
                    crew.raise_worker_error(shard, msg)
    if crew is None:
        try:
            crew = _ShardCrew(network, nshards, data_plane)
        except OSError as exc:  # pragma: no cover - fork/shm exhaustion
            _LOG.warning(
                "parallel engine unavailable (%s); running serial", exc
            )
            return None
        if persistent:
            network._session_crew = crew
    # Recorded for stamps and tests: which carriage this run actually
    # used ("shm" or "pickle").
    network.parallel_data_plane = crew.data_plane
    if tm is not None:
        # Forking P replicas is the dominant fixed cost of a parallel
        # run; charge it to the run-level barrier bucket so short runs
        # still account for their measured wall.  Session reuse turns
        # this into a cheap recycle handshake — same bucket, so timing
        # dumps show exactly what the session saved.
        tm.add("barrier", perf_counter() - t0)
    try:
        return _Coordinator(network, crew).run(max_rounds)
    finally:
        # Joining the workers is the tail half of the engine's fixed
        # cost; like the fork it lands in the run-level barrier bucket.
        # A session-owned crew stays warm for the next run; the session's
        # close() joins it instead.
        t0 = perf_counter() if tm is not None else 0.0
        if getattr(network, "_session_crew", None) is not crew:
            crew.shutdown()
        if tm is not None:
            tm.add("barrier", perf_counter() - t0)
