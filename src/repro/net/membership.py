"""Dynamic membership — the Appendix G relaxation of assumption S1.

The paper fixes the network size N but sketches the extension: "whenever
a node wants to join P, the joining node contacts another neighbor node
and communicates both its sequence number and identifier.  The contacted
node will use ERB to reliably broadcast the pair to all peers."

:class:`MembershipService` implements that life cycle over the simulator:
every join (and, symmetrically, leave) is announced through a real ERB
instance among the *current* members, so all honest members transition
between identical directory versions; the joiner is then handed the full
directory by its sponsor.  Because announcements ride on ERB, a byzantine
sponsor cannot show different member lists to different peers — it can
only fail to announce, which keeps the old directory consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.types import NodeId
from repro.core.erb import run_erb


@dataclass(frozen=True)
class MembershipEvent:
    """One committed directory change."""

    kind: str                 # "join" | "leave"
    member: NodeId
    sponsor: NodeId
    version: int              # directory version after the event


@dataclass
class MembershipDirectory:
    """A versioned view of the member set (every honest peer holds an
    identical copy after each committed event)."""

    members: Set[NodeId] = field(default_factory=set)
    version: int = 0
    history: List[MembershipEvent] = field(default_factory=list)

    def apply(self, event: MembershipEvent) -> None:
        if event.version != self.version + 1:
            raise ProtocolError(
                f"event version {event.version} does not extend directory "
                f"version {self.version}"
            )
        if event.kind == "join":
            if event.member in self.members:
                raise ProtocolError(f"{event.member} is already a member")
            self.members.add(event.member)
        elif event.kind == "leave":
            if event.member not in self.members:
                raise ProtocolError(f"{event.member} is not a member")
            self.members.discard(event.member)
        else:
            raise ProtocolError(f"unknown membership event kind {event.kind!r}")
        self.version = event.version
        self.history.append(event)

    def snapshot(self) -> Tuple[int, Tuple[NodeId, ...]]:
        return (self.version, tuple(sorted(self.members)))


class MembershipService:
    """Drives join/leave announcements through ERB broadcasts.

    The service owns one directory per member (what each peer would hold)
    so tests can assert that every honest view stays identical — the
    point of running announcements through reliable broadcast.
    """

    def __init__(self, initial_members: int, seed: int = 0) -> None:
        if initial_members < 1:
            raise ConfigurationError("need at least one initial member")
        self._seed = seed
        self._events = 0
        self.views: Dict[NodeId, MembershipDirectory] = {}
        genesis = set(range(initial_members))
        for member in genesis:
            directory = MembershipDirectory(members=set(genesis))
            self.views[member] = directory
        self._next_id = initial_members

    # ------------------------------------------------------------------
    @property
    def members(self) -> Tuple[NodeId, ...]:
        any_view = next(iter(self.views.values()))
        return tuple(sorted(any_view.members))

    def _broadcast_event(self, sponsor: NodeId, payload: tuple) -> object:
        """Run one ERB instance among current members; returns the value
        every honest member accepted (or None)."""
        members = self.members
        if sponsor not in members:
            raise ConfigurationError(f"sponsor {sponsor} is not a member")
        index = {node: position for position, node in enumerate(members)}
        config = SimulationConfig(
            n=len(members), seed=(self._seed, self._events)
            .__hash__() & 0x7FFFFFFF,
        )
        result = run_erb(
            config,
            initiator=index[sponsor],
            message=payload,
            seq=self._events + 1,
        )
        values = set(result.outputs.values())
        if len(values) != 1:
            raise ProtocolError(f"membership broadcast diverged: {values}")
        self._events += 1
        return values.pop()

    # ------------------------------------------------------------------
    def join(self, sponsor: NodeId) -> NodeId:
        """A new peer contacts ``sponsor``; the join is ERB-announced.

        Returns the new member's id.  Every existing member's directory
        advances to the same next version; the joiner receives a full
        copy from the sponsor.
        """
        new_id = self._next_id
        accepted = self._broadcast_event(sponsor, ("JOIN", new_id, sponsor))
        if accepted is None:
            raise ProtocolError("join announcement was not delivered")
        version = next(iter(self.views.values())).version + 1
        event = MembershipEvent(
            kind="join", member=new_id, sponsor=sponsor, version=version
        )
        for directory in self.views.values():
            directory.apply(event)
        # The sponsor transfers its directory to the newcomer (O(N)).
        sponsor_view = self.views[sponsor]
        joiner = MembershipDirectory(
            members=set(sponsor_view.members),
            version=sponsor_view.version,
            history=list(sponsor_view.history),
        )
        self.views[new_id] = joiner
        self._next_id += 1
        return new_id

    def leave(self, member: NodeId, sponsor: Optional[NodeId] = None) -> None:
        """Announce a departure (voluntary, or observed by the sponsor —
        e.g. after halt-on-divergence ejected the node)."""
        members = self.members
        if member not in members:
            raise ConfigurationError(f"{member} is not a member")
        announcer = sponsor if sponsor is not None else next(
            node for node in members if node != member
        )
        accepted = self._broadcast_event(announcer, ("LEAVE", member, announcer))
        if accepted is None:
            raise ProtocolError("leave announcement was not delivered")
        version = next(iter(self.views.values())).version + 1
        event = MembershipEvent(
            kind="leave", member=member, sponsor=announcer, version=version
        )
        departed_view = self.views.pop(member)
        del departed_view
        for directory in self.views.values():
            directory.apply(event)

    # ------------------------------------------------------------------
    def views_consistent(self) -> bool:
        """Do all member directories agree (the invariant ERB buys)?"""
        snapshots = {d.snapshot() for d in self.views.values()}
        return len(snapshots) == 1
