"""The synchronous round-based simulation engine.

One :class:`SynchronousNetwork` drives N peers through lockstep rounds of
length ``2*delta`` (assumptions S2/S3).  Each peer is a :class:`Node`:
an :class:`Enclave` running an :class:`EnclaveProgram` (trusted) plus an
optional adversarial :class:`OSBehavior` (untrusted).

Round anatomy (matching Algorithm 2's phases):

1. **begin** — every live program's ``on_round_begin`` runs; multicasts
   staged during the previous round (the paper's ``Wait(rnd) then
   Multicast(...)``) are emitted now, stamped with the current round.
2. **transmit** — each emission is written through the blinded channel,
   then handed to the sender's OS behaviour, which may drop / delay /
   inject; surviving wires are charged to the traffic statistics (they
   crossed the network).
3. **deliver** — each wire passes the receiver's OS behaviour, then the
   channel ``read`` (integrity / program / freshness checks; failures
   count as omissions per Theorem A.2), then the program's ``on_message``,
   which may acknowledge (``ctx.acknowledge``) and stage next-round
   multicasts.
4. **ack wave** — acknowledgements flow back within the same round (a
   round is one round *trip*); the engine credits them to the pending
   multicast handles.
5. **halt check** — any multicast that collected fewer than the ACK
   threshold halts its sender's enclave (halt-on-divergence, P4).
6. **end** — ``on_round_end`` runs for live programs; the round's wall
   time is ``max(2*delta, round_bytes / bandwidth)`` under the shared-link
   model, and the trusted clock advances by it.

The engine stops once every live node's program has produced an output
(early stopping) or the protocol's round bound is exhausted, after which
``on_protocol_end`` lets undecided programs accept their default (⊥).

Honest untraced runs take the *round-envelope* path
(:meth:`SynchronousNetwork._run_round_envelope`): all messages sharing a
``(sender, receiver, round)`` triple cross the link as one
:class:`~repro.channel.peer_channel.Envelope` — one AEAD seal (FULL) or
one counter-row pass (MODELED) per link instead of per message — while
the *logical* traffic statistics, protocol outputs, halted sets and
decided rounds stay byte-identical to the per-wire path.  Adversarial
and traced-FULL runs fall back to per-wire processing (OS behaviours act
on individual messages, before envelope assembly would happen), where
the physical ledger still records one coalesced crossing per link.
"""

from __future__ import annotations

import logging
from collections import Counter, OrderedDict, deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.adversary.behaviors import OSBehavior
from repro.adversary.classification import ActionTrace, trace_from_wire_events
from repro.channel.peer_channel import Envelope, WireMessage
from repro.common.config import (
    CHANNEL_OVERHEAD_BYTES,
    ChannelSecurity,
    SimulationConfig,
)
from repro.common.errors import (
    ConfigurationError,
    IntegrityError,
    ProtocolError,
    ReplayError,
    StaleRoundError,
)
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, NodeId, ProtocolMessage, Round
from repro.common.serialization import encode
from repro.crypto.dh import MODP_768, MODP_2048
from repro.crypto.hashing import hash_bytes
from repro.net.stats import RoundRecord, RunStats, TrafficStats
from repro.net.topology import Topology
from repro.obs.events import RoundSpan, TimingEvent, WireEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.net.transport import (
    FullTransport,
    ModeledTransport,
    PlainTransport,
    Transport,
)
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave, EnclaveState
from repro.sgx.program import EnclaveProgram, sparse_aware
from repro.sgx.trusted_time import SimulationClock

#: Value accepted when a protocol times out without deciding (the paper's ⊥).
BOTTOM = None

#: Engine-level diagnostics (per-round summaries) — DEBUG.
_LOG = logging.getLogger("repro.engine")
#: Protocol-visible events (halt-on-divergence ejections) — INFO.
_PROTOCOL_LOG = logging.getLogger("repro.protocol")


@dataclass
class MulticastHandle:
    """Tracks one Multicast(...) call's acknowledgements (P4)."""

    sender: NodeId
    rnd: Round
    key: bytes  # H(val) digest the receivers' ACKs will carry
    expect_acks: bool
    threshold: int
    targets: int
    acks: int = 0

    @property
    def diverged(self) -> bool:
        return self.expect_acks and self.acks < self.threshold


@dataclass
class _SendIntent:
    sender: NodeId
    targets: Tuple[NodeId, ...]
    message: ProtocolMessage
    expect_acks: bool
    threshold: int
    handle: Optional[MulticastHandle] = None


def _multicast_key(message: ProtocolMessage) -> tuple:
    """Identity of a multicast for ACK matching: instance + header fields."""
    return (
        message.instance,
        message.type.value,
        message.initiator,
        message.seq,
        message.rnd,
    )


#: Cap on each network's ACK-digest cache.  The cache is a true LRU
#: (:class:`collections.OrderedDict`): every hit refreshes its entry, and
#: at the cap the least-recently-used entry is evicted — so the multicast
#: identities hot in the current round can never be displaced by a long
#: tail of stale ones.
_DIGEST_CACHE_LIMIT = 4096


class EnclaveContext:
    """The enclave-visible API handed to every program hook.

    Multicast/send timing follows the paper's ``Wait`` semantics: calls
    made during ``on_round_begin`` transmit this round; calls made during
    message handling or ``on_round_end`` are staged for the start of the
    next round.  ``acknowledge`` is always immediate (same round trip).
    """

    def __init__(self, network: "SynchronousNetwork", node_id: NodeId) -> None:
        self._network = network
        self.node_id = node_id

    # ---- environment ---------------------------------------------------
    @property
    def n(self) -> int:
        return self._network.config.n

    @property
    def t(self) -> int:
        return self._network.config.t

    @property
    def config(self) -> SimulationConfig:
        return self._network.config

    @property
    def round(self) -> Round:
        return self._network.current_round

    @property
    def rdrand(self):
        return self._network.nodes[self.node_id].enclave.rdrand

    @property
    def tracer(self) -> Tracer:
        """The run's tracer (the disabled NULL_TRACER when untraced)."""
        return self._network.tracer

    @property
    def clock(self):
        return self._network.nodes[self.node_id].enclave.clock

    def neighbours(self) -> Tuple[NodeId, ...]:
        """This node's neighbour set, as the network's cached tuple.

        The topology is static between churn/halt events, so the network
        memoizes one tuple per node instead of recomputing the adjacency
        view on every multicast.
        """
        return self._network.neighbour_tuple(self.node_id)

    # ---- actions ---------------------------------------------------------
    def multicast(
        self,
        message: ProtocolMessage,
        targets: Optional[Iterable[NodeId]] = None,
        expect_acks: bool = True,
        threshold: Optional[int] = None,
    ) -> None:
        """Queue ``Multicast(id_i, val)`` to ``targets`` (default: all peers)."""
        self._network._queue_multicast(
            self.node_id, message, targets, expect_acks, threshold
        )

    def send(
        self, dest: NodeId, message: ProtocolMessage, expect_acks: bool = False
    ) -> None:
        """Queue a unicast message."""
        self._network._queue_multicast(
            self.node_id, message, (dest,), expect_acks, None
        )

    def acknowledge(self, dest: NodeId, original: ProtocolMessage) -> None:
        """Send an ACK for ``original`` back to ``dest`` this round."""
        self._network._queue_ack(self.node_id, dest, original)

    def halt(self) -> None:
        """Voluntary Halt(st) — the enclave leaves the network (P4)."""
        self._network.nodes[self.node_id].enclave.halt(self.round)
        self._network.evict_departed_node(self.node_id)


@dataclass
class Node:
    """One peer: trusted enclave + untrusted OS behaviour."""

    node_id: NodeId
    enclave: Enclave
    behavior: Optional[OSBehavior]
    context: EnclaveContext

    @property
    def program(self) -> EnclaveProgram:
        return self.enclave.program

    @property
    def alive(self) -> bool:
        return not self.enclave.halted


@dataclass
class RunResult:
    """Everything a benchmark or test needs from one protocol run."""

    outputs: Dict[NodeId, object]
    halted: List[NodeId]
    stats: RunStats
    decided_rounds: Dict[NodeId, Optional[int]]

    @property
    def rounds_executed(self) -> int:
        return self.stats.rounds_executed

    @property
    def termination_seconds(self) -> float:
        return self.stats.termination_seconds

    @property
    def traffic(self) -> TrafficStats:
        return self.stats.traffic

    def honest_outputs(self, byzantine: Iterable[NodeId]) -> Dict[NodeId, object]:
        excluded = set(byzantine) | set(self.halted)
        return {
            node: value
            for node, value in self.outputs.items()
            if node not in excluded
        }


class SynchronousNetwork:
    """The simulator: builds the network, runs one protocol to completion."""

    def __init__(
        self,
        config: SimulationConfig,
        program_factory: Callable[[NodeId], EnclaveProgram],
        behaviors: Optional[Dict[NodeId, OSBehavior]] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.config = config
        self.topology = topology or Topology.full_mesh(config.n)
        if self.topology.n != config.n:
            raise ConfigurationError(
                f"topology size {self.topology.n} != network size {config.n}"
            )
        self.clock = SimulationClock()
        self.master_rng = DeterministicRNG(("simulation", config.seed))
        behaviors = behaviors or {}

        authority: Optional[AttestationAuthority] = None
        if config.channel_security is ChannelSecurity.FULL:
            group_name = config.extra.get("dh_group", "2048")
            self._dh_group = MODP_768 if group_name == "small" else MODP_2048
            authority = AttestationAuthority(self.master_rng, self._dh_group)
        else:
            self._dh_group = MODP_2048

        self.nodes: Dict[NodeId, Node] = {}
        enclaves: Dict[NodeId, Enclave] = {}
        for node_id in range(config.n):
            program = program_factory(node_id)
            enclave = Enclave(
                node_id, program, self.master_rng, self.clock, authority
            )
            enclaves[node_id] = enclave
            self.nodes[node_id] = Node(
                node_id=node_id,
                enclave=enclave,
                behavior=behaviors.get(node_id),
                context=EnclaveContext(self, node_id),
            )

        # The transports hold a reference to this same dict, so swapping
        # an entry here (parallel-run re-integration) updates them too.
        self._enclaves = enclaves

        self.transport: Transport
        if config.channel_security is ChannelSecurity.FULL:
            self.transport = FullTransport(enclaves, self._dh_group)
        elif config.channel_security is ChannelSecurity.MODELED:
            self.transport = ModeledTransport(enclaves)
        else:
            self.transport = PlainTransport(enclaves)

        self.stats = RunStats()
        self.current_round: Round = 0
        # Emission queues: _outbox_now transmits in the current round,
        # _outbox_next at the start of the next one (Wait semantics).
        self._outbox_now: List[_SendIntent] = []
        self._outbox_next: List[_SendIntent] = []
        self._ack_queue: List[Tuple[NodeId, NodeId, ProtocolMessage]] = []
        # Envelope-path ACK queue: (acker, dest, digest) triples — the
        # digest is all an ACK carries, so the envelope path never builds
        # per-ACK ProtocolMessage objects.
        self._ack_queue_fast: List[Tuple[NodeId, NodeId, bytes]] = []
        # Multicast digest by message object identity, valid for one round
        # (entries are cleared at round start; the messages stay referenced
        # by the round's delivery plan, so ids cannot be reused mid-round).
        self._ack_digest_by_id: Dict[int, bytes] = {}
        # Per-node neighbour tuples (the topology is static between
        # churn/halt events) — see neighbour_tuple().
        self._neighbour_cache: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._future_wires: Dict[Round, List[WireMessage]] = {}
        self._pending_handles: Dict[Tuple[NodeId, tuple], MulticastHandle] = {}
        # Per-round wire-size cache for ACKs (keys embed the round number,
        # so entries die with the round — cleared at every round start and
        # on instance swap).
        self._ack_size_cache: Dict[tuple, int] = {}
        # Per-network ACK digest cache (H(val) per multicast identity);
        # networks must not share it — see _ack_digest.  OrderedDict: the
        # eviction policy is LRU.
        self._digest_cache: "OrderedDict[tuple, bytes]" = OrderedDict()
        self._in_round_begin = False
        # Nodes with OS behaviours, ascending (static for the network's
        # lifetime): phase-2 injection drains and phase-6 behaviour ticks
        # iterate this instead of scanning all N nodes.
        self._behavior_nodes: List[NodeId] = [
            node_id for node_id, node in self.nodes.items()
            if node.behavior is not None
        ]
        self._resolve_run_paths()

    def _resolve_run_paths(self) -> None:
        """(Re)resolve every per-run engine decision from live state.

        Called once by ``__init__`` and again by every
        :meth:`begin_session_run`: the fast-path eligibility flags depend
        on the installed programs' measurements, the scheduler mode on
        their SPARSE_AWARE opt-ins, and the dispatch table on their bound
        methods — all of which a session recycle may change.
        """
        config = self.config
        # The observability hub.  config.tracer wins; the legacy
        # extra["trace_actions"] flag gets a memory tracer so the
        # Definition A.5 `action_trace` view below keeps working; the
        # default is the permanently disabled NULL_TRACER (zero overhead:
        # the engine checks one boolean before building any event).
        tracer = config.tracer
        if tracer is None:
            tracer = (
                Tracer.memory()
                if config.extra.get("trace_actions")
                else NULL_TRACER
            )
        self.tracer: Tracer = tracer
        # Phase-attributed wall-clock collector (repro.obs.timing).  Same
        # zero-cost-when-off contract as the tracer: the engine caches
        # this in a local and checks `is not None` per instrumentation
        # point; None (the default) adds a handful of predicted branches.
        self._timing = config.timing
        # The fan-out fast path applies when a run can never diverge from
        # the per-wire path: no OS behaviours anywhere (no drops, delays,
        # injections or future wires), tracer disabled (no per-wire
        # events), and homogeneous program measurements (so channel reads
        # cannot reject).  Adversarial and traced runs automatically fall
        # back to the per-wire path.  ``extra["disable_fanout_fast_path"]``
        # forces the legacy path (used by the equivalence tests).
        measurements = {node.enclave.measurement for node in self.nodes.values()}
        honest = all(node.behavior is None for node in self.nodes.values())
        self._fanout_fast_path = (
            not self.tracer.enabled
            and honest
            and len(measurements) <= 1
            and not config.extra.get("disable_fanout_fast_path", False)
        )
        # The round-envelope path coalesces every (sender, receiver, round)
        # triple into one link crossing.  It requires the same honesty /
        # homogeneity conditions as the fan-out path, but tolerates a
        # tracer for MODELED/NONE runs (it replays the per-wire event
        # stream exactly, plus envelope events).  Traced FULL runs fall
        # back: their per-wire events carry real per-message sealed sizes,
        # which only per-message sealing produces.
        envelope_disabled = bool(
            config.extra.get("disable_envelope_fast_path", False)
        )
        self._envelope_fast_path = (
            honest
            and len(measurements) <= 1
            and not (
                self.tracer.enabled
                and config.channel_security is ChannelSecurity.FULL
            )
            and not envelope_disabled
        )
        # Runs that fall back to per-wire processing (adversarial, traced
        # FULL, heterogeneous measurements) still keep the dual ledger
        # honest: per-message sends are recorded as logical-only and the
        # physical ledger gets one coalesced crossing per link afterwards.
        # With the envelope layer explicitly disabled, per-wire sends
        # mirror 1:1 into the physical ledger (the pre-envelope meaning).
        self._envelope_accounting = (
            not envelope_disabled and not self._envelope_fast_path
        )
        # Per-round observation hook: ``extra["round_hook"]`` is called as
        # ``hook(network, rnd, halted_now)`` at the very end of phase 6 on
        # every engine path (per-wire, envelope, and the parallel
        # coordinator).  The campaign runner uses it to collect liveness
        # trails for invariant checking; the hook must treat the network
        # as read-only.
        self._round_hook = config.extra.get("round_hook")
        # Active-set sparse scheduling (``extra["scheduler"]``): visit
        # only nodes that can act this round instead of all N.  ``auto``
        # (the default) goes sparse exactly when every per-round hook is
        # covered by the contract — i.e. at least one program opted in
        # via SPARSE_AWARE; non-aware programs stay on the always-visited
        # list either way, so mixed populations remain correct.
        requested = config.extra.get("scheduler", "auto")
        if requested not in ("dense", "sparse", "auto"):
            raise ConfigurationError(
                f"extra['scheduler'] must be 'dense', 'sparse' or 'auto', "
                f"got {requested!r}"
            )
        if requested == "auto":
            self._sparse = any(
                sparse_aware(node.program) for node in self.nodes.values()
            )
        else:
            self._sparse = requested == "sparse"
        #: The resolved scheduling mode ("dense" or "sparse") — stamped
        #: into bench entries so the gate never compares across modes.
        self.scheduler = "sparse" if self._sparse else "dense"
        #: Cumulative hook-visit accounting (sparse runs only; dense
        #: visits everyone and skips nobody).  Lives outside RunStats so
        #: the sparse==dense equivalence suite can byte-compare results.
        self.sched_counters: Dict[str, int] = {
            "begin_visited": 0,
            "begin_skipped": 0,
            "end_visited": 0,
            "end_skipped": 0,
        }
        # Sparse bookkeeping (rebuilt by _setup for every run): the
        # always-visited list, per-node wake hints, round buckets, the
        # delivered-this-round set and the monotone not-yet-done set.
        self._sched_aware: set = set()
        self._sched_always: List[NodeId] = []
        self._sched_wake: Dict[NodeId, Round] = {}
        self._sched_buckets: Dict[Round, List[NodeId]] = {}
        self._sched_delivered: set = set()
        self._sched_visit: List[NodeId] = []
        self._undone: set = set()
        # Envelope-path dispatch table, cached across rounds (halts are
        # read live off the enclave; only replace_programs invalidates).
        self._dispatch_cache: Optional[List[tuple]] = None

    @property
    def action_trace(self) -> Optional[ActionTrace]:
        """Definition A.5 instrumentation as a view over the tracer.

        Available when the tracer retains events in memory (the
        ``extra["trace_actions"]`` flag, or any tracer with a
        :class:`repro.obs.tracer.MemorySink`); None otherwise.
        """
        if not self.tracer.enabled or self.tracer.events is None:
            return None
        return trace_from_wire_events(self.tracer.wire_events())

    # ------------------------------------------------------------------
    # queueing API used by EnclaveContext
    # ------------------------------------------------------------------
    def neighbour_tuple(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The cached neighbour tuple of ``node``.

        ``topology.neighbours`` returns an adjacency view that every
        multicast used to re-tuple; with N concurrent ERB instances that
        is N identical recomputations per node per round.  The cache
        holds one tuple per node and is invalidated on churn and halts
        (:meth:`invalidate_neighbour_cache`), keeping it correct if a
        future topology becomes dynamic.
        """
        cached = self._neighbour_cache.get(node)
        if cached is None:
            cached = tuple(self.topology.neighbours(node))
            self._neighbour_cache[node] = cached
        return cached

    def invalidate_neighbour_cache(self, node: Optional[NodeId] = None) -> None:
        """Drop cached neighbour tuples (all of them when ``node`` is None)."""
        if node is None:
            self._neighbour_cache.clear()
        else:
            self._neighbour_cache.pop(node, None)

    def evict_departed_node(self, node: NodeId) -> None:
        """Active-set change (halt / eject): drop every cached view keyed
        by the departed node — its neighbour tuple and the ACK-digest LRU
        entries for multicasts it initiated.  Digests are pure functions
        of their key, so eviction can only prevent stale-view retention
        after churn, never change a value; the LRU simply stops carrying
        identities no live node will ever ACK again.
        """
        self.invalidate_neighbour_cache(node)
        cache = self._digest_cache
        if cache:
            stale = [key for key in cache if key[2] == node]
            for key in stale:
                del cache[key]

    def _queue_multicast(
        self,
        sender: NodeId,
        message: ProtocolMessage,
        targets: Optional[Iterable[NodeId]],
        expect_acks: bool,
        threshold: Optional[int],
    ) -> None:
        if targets is None:
            target_tuple = self.neighbour_tuple(sender)
        else:
            target_tuple = tuple(t for t in targets if t != sender)
        intent = _SendIntent(
            sender=sender,
            targets=target_tuple,
            message=message,
            expect_acks=expect_acks,
            threshold=(
                threshold if threshold is not None else self.config.ack_threshold
            ),
        )
        if self._in_round_begin:
            self._outbox_now.append(intent)
        else:
            self._outbox_next.append(intent)

    def _ack_digest(self, key: tuple) -> bytes:
        """The paper's ``H(val)`` carried inside an ACK, truncated to 8 bytes.

        Cached per multicast identity — within one round every receiver
        ACKs the same few multicast values.  The cache is per-network
        (digests are pure functions of the key, but a shared cache would
        let one network's churn evict another's hot entries) and a
        bounded LRU: hits refresh recency, and at the cap the single
        least-recently-used entry is evicted, so current-round identities
        always survive arbitrarily long runs.
        """
        cache = self._digest_cache
        digest = cache.get(key)
        if digest is None:
            if len(cache) >= _DIGEST_CACHE_LIMIT:
                cache.popitem(last=False)
            digest = hash_bytes(encode(key), domain="ack")[:8]
            cache[key] = digest
        else:
            cache.move_to_end(key)
        return digest

    def _queue_ack(
        self, acker: NodeId, dest: NodeId, original: ProtocolMessage
    ) -> None:
        # An ACK carries only H(val) — the truncated digest of the
        # multicast identity — matching the ~80 B ACKs of Section 6.1.
        if self._envelope_fast_path:
            # The envelope ACK wave works on digests alone; the digest of
            # the delivered message object was cached during transmit
            # (FULL delivers decoded copies, so it falls back to the
            # keyed cache).
            digest = self._ack_digest_by_id.get(id(original))
            if digest is None:
                digest = self._ack_digest(_multicast_key(original))
            self._ack_queue_fast.append((acker, dest, digest))
            return
        digest = self._ack_digest(_multicast_key(original))
        ack = ProtocolMessage(
            type=MessageType.ACK,
            initiator=0,
            seq=0,
            payload=digest,
            rnd=self.current_round,
            instance="",
        )
        self._ack_queue.append((acker, dest, ack))

    # ------------------------------------------------------------------
    # multi-instance support
    # ------------------------------------------------------------------
    def replace_programs(
        self, program_factory: Callable[[NodeId], EnclaveProgram]
    ) -> None:
        """Install fresh programs for the *next* protocol instance.

        The network persists across instances — channels keep their keys
        and monotone counters (so replays from instance i are still dead
        in instance i+1), and halted enclaves stay halted (a churned-out
        node cannot rejoin, Section 3.1/P6).  The new program must have
        the same measurement as the old one: swapping in different code
        would be caught by attestation in a real deployment, so it is a
        usage error here.
        """
        from repro.sgx.measurement import measure_program

        for node in self.nodes.values():
            if not node.alive:
                continue
            program = program_factory(node.node_id)
            if measure_program(program) != node.enclave.measurement:
                raise ConfigurationError(
                    "replacement program has a different measurement; "
                    "an instance swap cannot change the attested code"
                )
            node.enclave.program = program
        self._outbox_now.clear()
        self._outbox_next.clear()
        self._ack_queue.clear()
        self._ack_queue_fast.clear()
        self._ack_digest_by_id.clear()
        self._future_wires.clear()
        self._pending_handles.clear()
        self._ack_size_cache.clear()
        self.invalidate_neighbour_cache()
        # The cached envelope dispatch table holds bound on_message
        # methods of the *old* programs — rebuild on next use.
        self._dispatch_cache = None
        self.stats = RunStats()
        self.current_round = 0

    def begin_session_run(
        self,
        program_factory: Callable[[NodeId], EnclaveProgram],
        *,
        seed: Optional[int] = None,
    ) -> None:
        """Recycle the network for a fresh, *independent* protocol run.

        Where :meth:`replace_programs` models instance succession inside
        one execution (same attested code, halts persist, monotone state
        carries over), a session recycle starts a **new execution** on the
        long-lived network: every enclave is relaunched — fresh program
        (any measurement), fresh RDRAND fork off a re-seeded master RNG,
        trusted-clock reference reset — and every cache that could leak
        one run's state into the next is invalidated: the ACK digest LRU,
        the per-round ack-size cache, neighbour tuples, the envelope
        dispatch table, staged outboxes, ACK queues, future wires and
        multicast handles.  Traffic stats are rescoped to the new run.

        What deliberately survives is the *network*: topology, secure
        channels (a FULL session keeps its established keys) and the
        ModeledTransport's monotone freshness counters keep advancing —
        a replay captured in run ``i`` is still dead in run ``i+1``.
        That is the long-lived-service shape: relaunched enclaves joining
        a new protocol instance over existing channels, not halted ones
        rejoining an ongoing run (still forbidden, P6).

        Because :class:`DeterministicRNG` forks are label-derived, the
        recycled network's RNG streams are bit-identical to a freshly
        built network with the same ``seed`` — session reuse can never
        change protocol outputs.
        """
        if seed is not None:
            self.config.seed = seed
        self.master_rng = DeterministicRNG(("simulation", self.config.seed))
        for node_id in sorted(self.nodes):
            self.nodes[node_id].enclave.relaunch(
                program_factory(node_id), self.master_rng
            )
        self.transport.refresh_measurements()
        self._outbox_now.clear()
        self._outbox_next.clear()
        self._ack_queue.clear()
        self._ack_queue_fast.clear()
        self._ack_digest_by_id.clear()
        self._future_wires.clear()
        self._pending_handles.clear()
        self._ack_size_cache.clear()
        # Unlike replace_programs (same execution, same multicast
        # identities) a fresh run must also drop the ACK digest LRU —
        # stale (instance, round)-keyed digests must not leak across.
        self._digest_cache.clear()
        self.invalidate_neighbour_cache()
        self._dispatch_cache = None
        self.stats = RunStats()
        self.current_round = 0
        self._warned_parallel_fallback = False
        self._resolve_run_paths()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_rounds: int) -> RunResult:
        """Execute the protocol for at most ``max_rounds`` rounds.

        With ``config.workers > 1`` an eligible run (honest, homogeneous,
        MODELED/NONE — see :meth:`_parallel_eligible`) executes on the
        sharded multi-process engine of :mod:`repro.net.parallel`, which
        is byte-identical to the serial envelope path; everything else
        (and any failure to spawn workers) falls back to the serial
        engine below.
        """
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        tm = self._timing
        if tm is not None:
            tm.start_run()
        try:
            self._setup()
            if self._parallel_eligible():
                t0 = perf_counter() if tm is not None else 0.0
                from repro.net.parallel import run_parallel

                if tm is not None:
                    # First use pays the module import; make the timed
                    # wall account for it instead of leaking coverage.
                    tm.add("other", perf_counter() - t0)
                    tm.set_engine("parallel")
                result = run_parallel(self, max_rounds)
                if result is not None:
                    return result
            elif self.config.workers > 1 \
                    and not getattr(self, "_warned_parallel_fallback", False):
                # workers>1 was requested but the run is not eligible:
                # say why, once, instead of silently going serial.
                reason = self._parallel_fallback_reason()
                if reason:
                    self._warned_parallel_fallback = True
                    _LOG.warning(
                        "parallel engine disabled for this run (%s); "
                        "running serial despite workers=%d",
                        reason, self.config.workers,
                    )
            envelope = self._envelope_fast_path
            if tm is not None:
                tm.set_engine("envelope" if envelope else "serial")
            for rnd in range(1, max_rounds + 1):
                self.current_round = rnd
                if envelope:
                    self._run_round_envelope(rnd)
                else:
                    self._run_round(rnd)
                if self._everyone_done():
                    break
            self._finish()
            return self._result()
        finally:
            if tm is not None:
                tm.end_run()

    def _parallel_eligible(self) -> bool:
        """Whether this run may use the sharded multi-process engine.

        The parallel path inherits every activation condition of the
        round-envelope path (honest — so ROD/byzantine schedules that act
        on individual wires fall back automatically — homogeneous
        measurements, not explicitly disabled) and additionally requires
        a non-FULL transport: FULL seals draw per-link enclave RNG whose
        stream order a sharded run cannot reproduce byte-identically.
        """
        return (
            self.config.workers > 1
            and self.config.n > 1
            and self._envelope_fast_path
            and self.transport.security is not ChannelSecurity.FULL
            and not self.config.extra.get("disable_parallel_engine", False)
        )

    def _parallel_fallback_reason(self) -> Optional[str]:
        """Why a ``workers > 1`` run executes serially, or ``None`` when
        the fallback needs no warning (single node, or explicitly
        disabled — an intentional choice, not a surprise).  Fork / shared
        memory unavailability is reported by :func:`run_parallel` itself,
        which can observe the actual failure."""
        config = self.config
        if config.n <= 1:
            return None
        if config.extra.get("disable_parallel_engine", False):
            return None
        if not all(node.behavior is None for node in self.nodes.values()):
            return "adversarial OS behaviours require per-wire processing"
        measurements = {
            node.enclave.measurement for node in self.nodes.values()
        }
        if len(measurements) > 1:
            return "heterogeneous program measurements"
        if self.transport.security is ChannelSecurity.FULL:
            return (
                "FULL channel security draws per-link enclave RNG, which "
                "a sharded run cannot reproduce byte-identically"
            )
        if not self._envelope_fast_path:
            return "envelope fast path disabled via config extra"
        return None  # pragma: no cover - eligible runs never ask

    def _setup(self) -> None:
        self.current_round = 0
        tm = self._timing
        t0 = perf_counter() if tm is not None else 0.0
        for node in self.nodes.values():
            if node.alive:
                node.program.on_setup(node.context)
        if tm is not None:
            tm.add("handler", perf_counter() - t0)
        if self._sparse:
            t0 = perf_counter() if tm is not None else 0.0
            self._sched_init()
            if tm is not None:
                tm.add("scheduler", perf_counter() - t0)

    # ------------------------------------------------------------------
    # sparse scheduling bookkeeping
    # ------------------------------------------------------------------
    def _sched_init(self) -> None:
        """(Re)build the sparse-scheduler state for one run.

        Everyone starts woken for round 1 (programs act spontaneously in
        their first round at the latest via setup-staged sends or
        round-1 draws); from round 2 on, only hinted wake rounds and
        deliveries put a SPARSE_AWARE node back on the visit list.
        """
        aware: set = set()
        always: List[NodeId] = []
        for node_id, node in self.nodes.items():
            if sparse_aware(node.program):
                aware.add(node_id)
            else:
                always.append(node_id)
        self._sched_aware = aware
        self._sched_always = always
        self._sched_wake = {node_id: 1 for node_id in aware}
        self._sched_buckets = {1: sorted(aware)} if aware else {}
        self._sched_delivered = set()
        self._sched_visit = []
        self._undone = {
            node_id for node_id, node in self.nodes.items()
            if node.alive and not node.program.has_output
        }

    def _sched_begin(self, rnd: Round) -> List[NodeId]:
        """Phase-1 visit list (ascending, matching dense iteration order):
        the always-visited nodes merged with this round's woken set."""
        woken = self._sched_buckets.pop(rnd, None)
        if woken:
            wake = self._sched_wake
            # Stale bucket entries (hint later retracted or moved) and
            # re-hint duplicates are filtered here, at pop time.
            sched = sorted({i for i in woken if wake.get(i) == rnd})
        else:
            sched = []
        always = self._sched_always
        if not always:
            visit = sched
        elif not sched:
            visit = always
        else:
            visit = sorted(always + sched)
        self._sched_visit = visit
        counters = self.sched_counters
        counters["begin_visited"] += len(visit)
        counters["begin_skipped"] += self.config.n - len(visit)
        return visit

    def _sched_end(self) -> List[NodeId]:
        """Phase-6 visit list: phase-1's visits plus every node that had
        a message dispatched to it this round (deliveries always re-wake
        for the round-end hook, regardless of hints)."""
        delivered = self._sched_delivered
        visit = self._sched_visit
        if delivered:
            delivered.update(visit)
            end_visit = sorted(delivered)
        else:
            end_visit = visit
        counters = self.sched_counters
        counters["end_visited"] += len(end_visit)
        counters["end_skipped"] += self.config.n - len(end_visit)
        return end_visit

    def _sched_after_end(
        self, rnd: Round, end_visit: List[NodeId], halted_now: List[NodeId]
    ) -> None:
        """Post-hook bookkeeping: re-query wake hints for every visited
        aware node, and retire finished nodes from the not-done set."""
        nodes = self.nodes
        aware = self._sched_aware
        wake = self._sched_wake
        buckets = self._sched_buckets
        undone = self._undone
        for node_id in end_visit:
            node = nodes[node_id]
            if not node.alive:
                wake.pop(node_id, None)
                undone.discard(node_id)
                continue
            if node.program.has_output:
                undone.discard(node_id)
            if node_id not in aware:
                continue
            hint = node.program.sparse_wake_round(rnd)
            if hint is None:
                wake.pop(node_id, None)
            else:
                if hint <= rnd:
                    hint = rnd + 1
                if wake.get(node_id) != hint:
                    wake[node_id] = hint
                    buckets.setdefault(hint, []).append(node_id)
        for node_id in halted_now:
            wake.pop(node_id, None)
            undone.discard(node_id)
        self._sched_delivered.clear()

    def _finish(self) -> None:
        tm = self._timing
        t0 = perf_counter() if tm is not None else 0.0
        for node in self.nodes.values():
            if node.alive:
                node.program.on_protocol_end(node.context)
        if tm is not None:
            tm.add("handler", perf_counter() - t0)

    def _finish_round_timing(self, tm, rnd: Round) -> None:
        """Close the round's timing record; when also traced, emit it as
        a :class:`TimingEvent` so traces carry the breakdown inline."""
        record = tm.end_round()
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(TimingEvent(
                rnd=rnd,
                wall=record["wall"],
                buckets=dict(record["buckets"]),
                shards=list(record["shards"]),
            ))

    def _everyone_done(self) -> bool:
        if self._sparse:
            # _sched_after_end retires nodes as they decide or halt, so
            # the doneness check is O(1) instead of an O(N) scan.
            return not self._undone
        return all(
            (not node.alive) or node.program.has_output
            for node in self.nodes.values()
        )

    def _result(self) -> RunResult:
        outputs: Dict[NodeId, object] = {}
        decided: Dict[NodeId, Optional[int]] = {}
        halted: List[NodeId] = []
        for node_id, node in sorted(self.nodes.items()):
            if not node.alive:
                halted.append(node_id)
            if node.program.has_output:
                outputs[node_id] = node.program.output
                decided[node_id] = node.program.decided_round
        return RunResult(
            outputs=outputs,
            halted=halted,
            stats=self.stats,
            decided_rounds=decided,
        )

    # ------------------------------------------------------------------
    def _run_round(self, rnd: Round) -> None:
        nodes = self.nodes
        traffic = self.stats.traffic
        transport = self.transport
        tracer = self.tracer
        traced = tracer.enabled
        tm = self._timing
        if tm is not None:
            tm.start_round(rnd)
        fast = self._fanout_fast_path
        # With envelope accounting, per-wire sends are logical-only; the
        # physical ledger gets one coalesced crossing per link below.
        physical = not self._envelope_accounting
        omissions_before = traffic.omissions
        rejections_before = traffic.rejections
        self._pending_handles.clear()
        self._ack_size_cache.clear()

        # Phase 1: round begin.  Staged multicasts from last round move to
        # the live queue first so their relative order is stable.
        self._outbox_now, self._outbox_next = self._outbox_next, []
        if traced:
            tracer.phase(rnd, "begin", count=len(self._outbox_now))
        self._in_round_begin = True
        if self._sparse:
            t0 = perf_counter() if tm is not None else 0.0
            begin_visit = self._sched_begin(rnd)
            if tm is not None:
                tm.add("scheduler", perf_counter() - t0)
            t0 = perf_counter() if tm is not None else 0.0
            for node_id in begin_visit:
                node = nodes[node_id]
                if node.alive:
                    node.program.on_round_begin(node.context)
        else:
            t0 = perf_counter() if tm is not None else 0.0
            for node in nodes.values():
                if node.alive:
                    node.program.on_round_begin(node.context)
        if tm is not None:
            tm.add("handler", perf_counter() - t0)
        self._in_round_begin = False

        # Phase 2: transmit.
        if traced:
            tracer.phase(rnd, "transmit", count=len(self._outbox_now))
        digest_s = serialize_s = seal_s = 0.0
        transmissions: List[WireMessage] = []
        for intent in self._outbox_now:
            sender_node = nodes[intent.sender]
            if not sender_node.alive:
                continue
            message = intent.message.with_round(rnd)
            if tm is None:
                digest = self._ack_digest(_multicast_key(message))
            else:
                t0 = perf_counter()
                digest = self._ack_digest(_multicast_key(message))
                digest_s += perf_counter() - t0
            handle = MulticastHandle(
                sender=intent.sender,
                rnd=rnd,
                key=digest,
                expect_acks=intent.expect_acks,
                threshold=intent.threshold,
                targets=len(intent.targets),
            )
            if intent.expect_acks:
                self._pending_handles[(intent.sender, digest)] = handle
            if not intent.targets:
                # Nothing to size or write (n == 1, or an explicitly empty
                # target list); the handle above still tracks the call.
                continue
            if tm is None:
                size_hint = transport.message_size(message)
                wires = transport.write_fanout(
                    intent.sender, intent.targets, message, size_hint
                )
            else:
                t0 = perf_counter()
                size_hint = transport.message_size(message)
                t1 = perf_counter()
                wires = transport.write_fanout(
                    intent.sender, intent.targets, message, size_hint
                )
                serialize_s += t1 - t0
                seal_s += perf_counter() - t1
            if not wires:
                continue
            if fast:
                # Honest fast path: charge the whole fan-out in one call.
                total = (
                    size_hint * len(wires)
                    if transport.uniform_fanout_size
                    else sum(wire.size for wire in wires)
                )
                traffic.record_send_bulk(message.type, total, rnd, len(wires))
                transmissions.extend(wires)
                continue
            behavior = sender_node.behavior
            if behavior is None:
                for wire in wires:
                    traffic.record_send(
                        wire.mtype, wire.size, rnd, physical=physical
                    )
                if traced:
                    tracer.wire_fanout(rnd, wires, "send", charged=True)
                transmissions.extend(wires)
            else:
                for wire in wires:
                    self._apply_send_filter(
                        behavior, intent.sender, wire, rnd, transmissions
                    )
        self._outbox_now = []
        if tm is not None:
            tm.add("digest", digest_s)
            tm.add("serialize", serialize_s)
            tm.add("seal", seal_s)

        # Injected (replayed / forged) wires and previously delayed wires
        # (only OS behaviours produce either, so the fast path has none).
        if not fast:
            for behavior_id in self._behavior_nodes:
                node = nodes[behavior_id]
                behavior = node.behavior
                if not node.alive:
                    continue
                for delay, out in behavior.drain_injections(rnd):
                    if delay <= 0:
                        traffic.record_send(
                            out.mtype, out.size, rnd, physical=physical
                        )
                        if traced:
                            tracer.wire(
                                rnd, out, "replay", actor=node.node_id, charged=True
                            )
                        transmissions.append(out)
                    else:
                        if traced:
                            tracer.wire(rnd, out, "replay", actor=node.node_id)
                        self._future_wires.setdefault(rnd + delay, []).append(out)
            for out in self._future_wires.pop(rnd, ()):  # delayed arrivals
                traffic.record_send(
                    out.mtype, out.size, rnd, physical=physical
                )
                if traced:
                    tracer.wire(rnd, out, "flush", charged=True)
                transmissions.append(out)

        if not physical and transmissions:
            self._record_physical_links(transmissions, rnd, "transmit")

        # Phase 3: deliver protocol messages.
        if traced:
            tracer.phase(rnd, "deliver", count=len(transmissions))
        if fast:
            self._deliver_fast(transmissions, rnd)
        else:
            self._deliver(transmissions, rnd, is_ack_wave=False)

        # Phase 4: ack wave (same round trip).
        if traced:
            tracer.phase(rnd, "ack_wave", count=len(self._ack_queue))
        ack_queue, self._ack_queue = self._ack_queue, []
        if fast and transport.security is not ChannelSecurity.FULL:
            # Identical ACKs aggregate: every (dest, digest) pair credits
            # its pending handle in one Counter bump instead of a wire
            # write/read and handle lookup per ACK.  (FULL seals each ACK
            # for real — per-wire sizes and enclave RNG draws must match
            # the legacy path — so it keeps the wire loop below.)
            t0 = perf_counter() if tm is not None else 0.0
            self._ack_wave_fast(ack_queue, rnd)
            if tm is not None:
                tm.add("ack_wave", perf_counter() - t0)
        else:
            # The ACK write loop is charged to ack_wave; the delivery call
            # below attributes its own open / handler time internally.
            t0 = perf_counter() if tm is not None else 0.0
            ack_wires: List[WireMessage] = []
            for acker, dest, ack in ack_queue:
                acker_node = nodes[acker]
                if not acker_node.alive:
                    continue
                cache_key = (
                    ack.instance, ack.initiator, ack.seq, ack.rnd, ack.payload
                )
                size_hint = self._ack_size_cache.get(cache_key)
                if size_hint is None:
                    size_hint = transport.message_size(ack)
                    self._ack_size_cache[cache_key] = size_hint
                wire = transport.write(acker, dest, ack, size_hint)
                behavior = acker_node.behavior
                if behavior is None:
                    traffic.record_send(
                        wire.mtype, wire.size, rnd, physical=physical
                    )
                    if traced:
                        tracer.wire(rnd, wire, "send", charged=True)
                    ack_wires.append(wire)
                    continue
                self._apply_send_filter(behavior, acker, wire, rnd, ack_wires)
            if not physical and ack_wires:
                self._record_physical_links(ack_wires, rnd, "ack")
            if tm is not None:
                tm.add("ack_wave", perf_counter() - t0)
            if fast:
                self._deliver_fast(ack_wires, rnd)
            else:
                self._deliver(ack_wires, rnd, is_ack_wave=True)

        # Phases 5 and 6 are shared with the envelope path.
        halted_now = self._phase_halt_check(rnd)
        self._phase_end(rnd, halted_now, omissions_before, rejections_before)
        if tm is not None:
            self._finish_round_timing(tm, rnd)

    def _phase_halt_check(self, rnd: Round) -> List[NodeId]:
        """Phase 5: halt-on-divergence check (P4)."""
        nodes = self.nodes
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.phase(rnd, "halt_check", count=len(self._pending_handles))
        halted_now: List[NodeId] = []
        for (sender, _key), handle in self._pending_handles.items():
            if handle.diverged and handle.targets >= handle.threshold:
                nodes[sender].enclave.halt(rnd)
                self.evict_departed_node(sender)
                if sender not in halted_now:
                    halted_now.append(sender)
                if traced:
                    tracer.halt(rnd, sender, handle.acks, handle.threshold)
                _PROTOCOL_LOG.info(
                    "round %d: node %d halted on divergence (%d/%d acks)",
                    rnd, sender, handle.acks, handle.threshold,
                )
        return halted_now

    def _phase_end(
        self,
        rnd: Round,
        halted_now: List[NodeId],
        omissions_before: int,
        rejections_before: int,
    ) -> None:
        """Phase 6: round end hooks, clock advance, round summary."""
        nodes = self.nodes
        traffic = self.stats.traffic
        tracer = self.tracer
        traced = tracer.enabled
        debug = _LOG.isEnabledFor(logging.DEBUG)
        live = 0
        if traced or debug:
            live = sum(1 for node in nodes.values() if node.alive)
        if traced:
            tracer.phase(rnd, "end", count=live)
        tm = self._timing
        if self._sparse:
            t0 = perf_counter() if tm is not None else 0.0
            end_visit = self._sched_end()
            if tm is not None:
                tm.add("scheduler", perf_counter() - t0)
            t0 = perf_counter() if tm is not None else 0.0
            for node_id in end_visit:
                node = nodes[node_id]
                if node.alive:
                    node.program.on_round_end(node.context)
            # Behaviours tick every round regardless of program activity
            # (delay queues and injection schedules advance on rounds,
            # not on deliveries); they never interact with program end
            # hooks, so running them after the sparse loop matches the
            # dense interleaving observationally.
            for behavior_id in self._behavior_nodes:
                nodes[behavior_id].behavior.on_round_end(rnd)
            if tm is not None:
                tm.add("handler", perf_counter() - t0)
            t0 = perf_counter() if tm is not None else 0.0
            self._sched_after_end(rnd, end_visit, halted_now)
            if tm is not None:
                tm.add("scheduler", perf_counter() - t0)
        else:
            t0 = perf_counter() if tm is not None else 0.0
            for node in nodes.values():
                if node.alive:
                    node.program.on_round_end(node.context)
                if node.behavior is not None:
                    node.behavior.on_round_end(rnd)
            if tm is not None:
                tm.add("handler", perf_counter() - t0)

        # Advance simulated time under the shared-link bandwidth model.
        seconds = self.config.round_seconds
        round_bytes = traffic.round_bytes(rnd)
        bandwidth = self.config.bandwidth_bytes_per_s
        if bandwidth:
            seconds = max(seconds, round_bytes / bandwidth)
        self.clock.advance(seconds)
        self.stats.rounds.append(
            RoundRecord(rnd=rnd, bytes=round_bytes, seconds=seconds)
        )
        if traced or debug:
            decided = sum(
                1 for node in nodes.values() if node.program.has_output
            )
            omissions = traffic.omissions - omissions_before
            rejections = traffic.rejections - rejections_before
            if traced:
                tracer.emit(
                    RoundSpan(
                        rnd=rnd,
                        bytes=round_bytes,
                        seconds=seconds,
                        omissions=omissions,
                        rejections=rejections,
                        live=live,
                        decided=decided,
                        halted=halted_now,
                    )
                )
            _LOG.debug(
                "round %d: bytes=%d seconds=%.3f omissions=%d rejections=%d "
                "live=%d decided=%d halted=%s",
                rnd, round_bytes, seconds, omissions, rejections,
                live, decided, halted_now,
            )
        if self._round_hook is not None:
            self._round_hook(self, rnd, halted_now)

    def _record_physical_links(
        self, wires: List[WireMessage], rnd: Round, wave: str
    ) -> None:
        """Physical accounting for per-wire rounds: one crossing per link.

        Adversarial filtering already happened per message, so each
        surviving message keeps its own sealing — the envelope here is
        only the link-layer batch (crossings coalesce, bytes do not).
        """
        links: Dict[Tuple[NodeId, NodeId], List[int]] = {}
        for wire in wires:
            entry = links.get((wire.sender, wire.receiver))
            if entry is None:
                links[(wire.sender, wire.receiver)] = [1, wire.size]
            else:
                entry[0] += 1
                entry[1] += wire.size
        traffic = self.stats.traffic
        tracer = self.tracer
        traced = tracer.enabled
        for (sender, receiver), (count, total) in links.items():
            traffic.record_envelope(count, total)
            if traced:
                tracer.envelope(rnd, sender, receiver, count, total, wave=wave)

    def _apply_send_filter(
        self,
        behavior: OSBehavior,
        sender: NodeId,
        wire: WireMessage,
        rnd: Round,
        immediate: List[WireMessage],
    ) -> None:
        """Run one wire through the sender's OS behaviour, recording the
        traffic and (when traced) the per-wire OS action events that back
        the Definition A.5 classification."""
        traffic = self.stats.traffic
        tracer = self.tracer
        traced = tracer.enabled
        physical = not self._envelope_accounting
        delivered_any = False
        for index, (delay, out) in enumerate(behavior.filter_send(wire, rnd)):
            delivered_any = True
            if delay <= 0:
                traffic.record_send(out.mtype, out.size, rnd, physical=physical)
                immediate.append(out)
            else:
                self._future_wires.setdefault(rnd + delay, []).append(out)
            if traced:
                if out is not wire:
                    action = "modify"
                elif delay > 0:
                    action = "delay"
                elif index == 0:
                    action = "deliver"
                else:
                    action = "replay"  # duplicate copies
                tracer.wire(
                    rnd, out, action, actor=sender, charged=delay <= 0
                )
        if not delivered_any:
            traffic.record_omission()
            if traced:
                tracer.wire(rnd, wire, "drop_send", actor=sender)

    # ------------------------------------------------------------------
    # the round-envelope fast path
    # ------------------------------------------------------------------
    def _run_round_envelope(self, rnd: Round) -> None:
        """One round with per-link traffic coalescing.

        Semantically identical to :meth:`_run_round` on its activation
        domain (honest, homogeneous, untraced-or-non-FULL): same logical
        traffic statistics, same dispatch order (so first-wins message
        semantics match), same ACK credits, halts and round summaries.
        Physically, everything one sender transmits to one receiver in
        one wave crosses as a single :class:`Envelope` — one AEAD seal
        (FULL) or one counter bump (MODELED/NONE) per link.
        """
        nodes = self.nodes
        traffic = self.stats.traffic
        transport = self.transport
        tracer = self.tracer
        traced = tracer.enabled
        full = transport.security is ChannelSecurity.FULL
        tm = self._timing
        if tm is not None:
            tm.start_round(rnd)
        omissions_before = traffic.omissions
        rejections_before = traffic.rejections
        self._pending_handles.clear()
        self._ack_size_cache.clear()
        self._ack_digest_by_id.clear()

        # Phase 1: round begin (identical to the per-wire path).
        self._outbox_now, self._outbox_next = self._outbox_next, []
        if traced:
            tracer.phase(rnd, "begin", count=len(self._outbox_now))
        self._in_round_begin = True
        if self._sparse:
            t0 = perf_counter() if tm is not None else 0.0
            begin_visit = self._sched_begin(rnd)
            if tm is not None:
                tm.add("scheduler", perf_counter() - t0)
            t0 = perf_counter() if tm is not None else 0.0
            for node_id in begin_visit:
                node = nodes[node_id]
                if node.alive:
                    node.program.on_round_begin(node.context)
        else:
            t0 = perf_counter() if tm is not None else 0.0
            for node in nodes.values():
                if node.alive:
                    node.program.on_round_begin(node.context)
        if tm is not None:
            tm.add("handler", perf_counter() - t0)
        self._in_round_begin = False

        # Phase 2: transmit.  First build the delivery plan — one entry
        # per multicast, in emission order, so dispatch below replays the
        # per-wire delivery order exactly — then seal one envelope per
        # (sender, receiver) link.
        if traced:
            tracer.phase(rnd, "transmit", count=len(self._outbox_now))
        digest_by_id = self._ack_digest_by_id
        plan: List[Tuple[NodeId, Tuple[NodeId, ...], ProtocolMessage, int]] = []
        per_sender: Dict[NodeId, List[tuple]] = {}
        logical_count = 0
        serialize_s = 0.0
        # Digest pre-pass: stamp and hash the wave's staged multicasts in
        # one tight sweep (attribute lookups hoisted) instead of a digest
        # call interleaved per intent.  Liveness cannot change during
        # transmit (no handlers run), and cache insertions happen in the
        # serial per-intent order, so the digest LRU state — and every
        # digest value — stays byte-identical.
        t0 = perf_counter() if tm is not None else 0.0
        ack_digest = self._ack_digest
        staged = [
            (intent, intent.message.with_round(rnd))
            for intent in self._outbox_now
            if nodes[intent.sender].alive
        ]
        digests = [ack_digest(_multicast_key(message)) for _, message in staged]
        if tm is not None:
            tm.add("batch_crypto", perf_counter() - t0)
        for (intent, message), digest in zip(staged, digests):
            if intent.expect_acks:
                self._pending_handles[(intent.sender, digest)] = MulticastHandle(
                    sender=intent.sender,
                    rnd=rnd,
                    key=digest,
                    expect_acks=intent.expect_acks,
                    threshold=intent.threshold,
                    targets=len(intent.targets),
                )
            if not intent.targets:
                continue
            digest_by_id[id(message)] = digest
            logical_count += len(intent.targets)
            if full:
                # FULL charges the real per-member sealed sizes, known
                # only after sealing; bodies are encoded once per fan-out.
                if tm is None:
                    body = encode(message.to_tuple())
                else:
                    t0 = perf_counter()
                    body = encode(message.to_tuple())
                    serialize_s += perf_counter() - t0
                plan.append((intent.sender, intent.targets, message, 0))
                per_sender.setdefault(intent.sender, []).append(
                    (intent.targets, message, body)
                )
            else:
                if tm is None:
                    size_hint = transport.message_size(message)
                else:
                    t0 = perf_counter()
                    size_hint = transport.message_size(message)
                    serialize_s += perf_counter() - t0
                plan.append((intent.sender, intent.targets, message, size_hint))
                per_sender.setdefault(intent.sender, []).append(
                    (intent.targets, message, size_hint)
                )
                traffic.record_send_bulk(
                    message.type,
                    size_hint * len(intent.targets),
                    rnd,
                    len(intent.targets),
                    physical=False,
                )
                if traced:
                    mtype = message.type.value
                    sender = intent.sender
                    for receiver in intent.targets:
                        tracer.emit(WireEvent(
                            rnd=rnd,
                            sender=sender,
                            receiver=receiver,
                            size=size_hint,
                            action="send",
                            mtype=mtype,
                            charged=True,
                        ))
        self._outbox_now = []
        if tm is not None:
            tm.add("serialize", serialize_s)

        # Seal one envelope per link.  Counters advance per member, so
        # channel state stays interchangeable with the per-wire path.
        t0 = perf_counter() if tm is not None else 0.0
        batch_s = 0.0
        envelopes: List[Envelope] = []
        overhead = CHANNEL_OVERHEAD_BYTES
        for sender, entries in per_sender.items():
            if full:
                buckets: Dict[NodeId, List[tuple]] = {}
                for targets, message, body in entries:
                    for receiver in targets:
                        buckets.setdefault(receiver, []).append((message, body))
                for receiver, pairs in buckets.items():
                    env = transport.seal_envelope(
                        sender,
                        receiver,
                        None,
                        encoded_bodies=[body for _, body in pairs],
                    )
                    for (message, _), msize in zip(pairs, env.member_sizes):
                        traffic.record_send(
                            message.type, msize, rnd, physical=False
                        )
                    traffic.record_envelope(env.count, env.size)
                    envelopes.append(env)
                continue
            first_targets = entries[0][0]
            if all(
                e[0] is first_targets or e[0] == first_targets
                for e in entries
            ):
                # Common case: every multicast this sender staged goes to
                # the same receiver set — one shared member list, and the
                # same physical size on every link (member bodies plus a
                # single channel overhead).
                members = [e[1] for e in entries]
                env_size = (
                    sum(e[2] for e in entries) - overhead * (len(entries) - 1)
                )
                # One vectorized seal pass for the whole wave: the same
                # member list crosses every link, so the transport hoists
                # the guard / measurement / row lookups out of the loop.
                if tm is None:
                    envelopes.extend(transport.seal_envelope_wave(
                        sender, first_targets, members, size=env_size
                    ))
                else:
                    t1 = perf_counter()
                    envelopes.extend(transport.seal_envelope_wave(
                        sender, first_targets, members, size=env_size
                    ))
                    batch_s += perf_counter() - t1
                traffic.record_envelopes(
                    len(first_targets), env_size * len(first_targets)
                )
                if traced:
                    count = len(members)
                    for receiver in first_targets:
                        tracer.envelope(rnd, sender, receiver, count, env_size)
            else:
                buckets = {}
                sizes: Dict[NodeId, int] = {}
                for targets, message, size_hint in entries:
                    for receiver in targets:
                        buckets.setdefault(receiver, []).append(message)
                        sizes[receiver] = sizes.get(receiver, 0) + size_hint
                for receiver, members in buckets.items():
                    env_size = sizes[receiver] - overhead * (len(members) - 1)
                    envelopes.append(transport.seal_envelope(
                        sender, receiver, members, size=env_size
                    ))
                    traffic.record_envelope(len(members), env_size)
                    if traced:
                        tracer.envelope(
                            rnd, sender, receiver, len(members), env_size
                        )
        if tm is not None:
            tm.add("seal", perf_counter() - t0 - batch_s)
            tm.add("batch_crypto", batch_s)

        # Phase 3: deliver.  Open each live receiver's envelopes (the
        # link-level integrity / freshness checks, and for FULL the single
        # AEAD open) grouped per receiver — one guard / accepted-row
        # borrow per receiver instead of per envelope; every link appears
        # at most once per round, so regrouping cannot reorder any
        # per-link counter sequence — then dispatch members in plan order.
        if traced:
            tracer.phase(rnd, "deliver", count=logical_count)
        t0 = perf_counter() if tm is not None else 0.0
        opened: Dict[Tuple[NodeId, NodeId], deque] = {}
        inbound: Dict[NodeId, List[Envelope]] = {}
        for env in envelopes:
            if not nodes[env.receiver].alive:
                continue  # per-member omissions are recorded in dispatch
            inbound.setdefault(env.receiver, []).append(env)
        for receiver, batch in inbound.items():
            opened_members = transport.open_envelope_wave(receiver, batch)
            if full:
                for env, members in zip(batch, opened_members):
                    opened[(env.sender, receiver)] = deque(members)
        if tm is not None:
            tm.add("batch_crypto", perf_counter() - t0)
        # The dispatch table is static between program swaps (halts are
        # read live off the enclave below), so it is built once per run
        # instead of once per round.
        dispatch = self._dispatch_cache
        if dispatch is None:
            dispatch = [None] * self.config.n
            for node_id in range(self.config.n):
                node = nodes[node_id]
                dispatch[node_id] = (
                    node.enclave, node.program.on_message, node.context
                )
            self._dispatch_cache = dispatch
        halted = EnclaveState.HALTED
        t0 = perf_counter() if tm is not None else 0.0
        for sender, targets, message, size_hint in plan:
            mtype = message.type.value if traced else None
            for receiver in targets:
                enclave, on_message, context = dispatch[receiver]
                if enclave.state is halted:
                    traffic.record_omission()
                    if traced:
                        tracer.emit(WireEvent(
                            rnd=rnd,
                            sender=sender,
                            receiver=receiver,
                            size=size_hint,
                            action="omit_dead",
                            mtype=mtype,
                        ))
                    continue
                if full:
                    on_message(
                        context, sender, opened[(sender, receiver)].popleft()
                    )
                else:
                    on_message(context, sender, message)
        if tm is not None:
            tm.add("handler", perf_counter() - t0)
        if self._sparse and inbound:
            # Every receiver that had an envelope opened got at least one
            # on_message dispatch — deliveries re-wake for phase 6.
            self._sched_delivered.update(inbound)

        # Phase 4: ack wave (same round trip).
        queue = self._ack_queue_fast
        self._ack_queue_fast = []
        if traced:
            tracer.phase(rnd, "ack_wave", count=len(queue))
        if queue:
            t0 = perf_counter() if tm is not None else 0.0
            if full:
                self._ack_wave_envelope_full(queue, rnd)
            else:
                self._ack_wave_envelope(queue, rnd)
            if tm is not None:
                tm.add("ack_wave", perf_counter() - t0)

        # Phases 5 and 6 are shared with the per-wire path.
        halted_now = self._phase_halt_check(rnd)
        self._phase_end(rnd, halted_now, omissions_before, rejections_before)
        if tm is not None:
            self._finish_round_timing(tm, rnd)

    def _ack_wave_envelope(
        self, queue: List[Tuple[NodeId, NodeId, bytes]], rnd: Round
    ) -> None:
        """Envelope-path ACK wave for MODELED/NONE transports.

        ACKs are digests, never ProtocolMessage objects: every ACK of a
        round has the same header and an 8-byte payload, so one modeled
        size covers the whole wave.  Each link's ACKs cross as a single
        counted envelope; (dest, digest) pairs credit their pending
        handles in one addition each, exactly as the per-wire path's
        sequential deliveries would.
        """
        nodes = self.nodes
        traffic = self.stats.traffic
        transport = self.transport
        tracer = self.tracer
        traced = tracer.enabled
        ack_size = transport.message_size(ProtocolMessage(
            type=MessageType.ACK,
            initiator=0,
            seq=0,
            payload=b"\x00" * 8,
            rnd=rnd,
            instance="",
        ))
        link_counts: Counter = Counter()
        credits: Counter = Counter()
        total = 0
        for acker, dest, digest in queue:
            if not nodes[acker].alive:
                continue
            total += 1
            link_counts[(acker, dest)] += 1
            credits[(dest, digest)] += 1
            if traced:
                tracer.emit(WireEvent(
                    rnd=rnd,
                    sender=acker,
                    receiver=dest,
                    size=ack_size,
                    action="send",
                    mtype=MessageType.ACK.value,
                    charged=True,
                ))
        if total:
            traffic.record_send_bulk(
                MessageType.ACK, ack_size * total, rnd, total, physical=False
            )
        overhead = CHANNEL_OVERHEAD_BYTES
        for (acker, dest), count in link_counts.items():
            env_size = ack_size * count - overhead * (count - 1)
            env = transport.seal_envelope(
                acker, dest, None, count=count, size=env_size
            )
            traffic.record_envelope(count, env_size)
            if traced:
                tracer.envelope(rnd, acker, dest, count, env_size, wave="ack")
            if nodes[dest].alive:
                transport.open_envelope(dest, env)
        if traced:
            # The per-wire path records an omit_dead event per ACK to a
            # halted destination, in queue order, after the sends.
            for acker, dest, _digest in queue:
                if nodes[acker].alive and not nodes[dest].alive:
                    tracer.emit(WireEvent(
                        rnd=rnd,
                        sender=acker,
                        receiver=dest,
                        size=ack_size,
                        action="omit_dead",
                        mtype=MessageType.ACK.value,
                    ))
        handles = self._pending_handles
        for (dest, digest), count in credits.items():
            if not nodes[dest].alive:
                traffic.record_omissions(count)
                continue
            handle = handles.get((dest, digest))
            if handle is not None:
                handle.acks += count
            # ACKs for unknown multicasts are ignored, as in _deliver.

    def _ack_wave_envelope_full(
        self, queue: List[Tuple[NodeId, NodeId, bytes]], rnd: Round
    ) -> None:
        """Envelope-path ACK wave for the FULL transport.

        Each link's ACKs seal as one envelope whose members carry their
        own channel counters, so the logical per-ACK sizes (and the
        per-link counter sequences) match per-message writes exactly.
        """
        nodes = self.nodes
        traffic = self.stats.traffic
        transport = self.transport
        body_cache: Dict[bytes, bytes] = {}
        links: Dict[Tuple[NodeId, NodeId], List[bytes]] = {}
        for acker, dest, digest in queue:
            if not nodes[acker].alive:
                continue
            links.setdefault((acker, dest), []).append(digest)
        handles = self._pending_handles
        for (acker, dest), digests in links.items():
            bodies = []
            for digest in digests:
                body = body_cache.get(digest)
                if body is None:
                    body = encode(ProtocolMessage(
                        type=MessageType.ACK,
                        initiator=0,
                        seq=0,
                        payload=digest,
                        rnd=rnd,
                        instance="",
                    ).to_tuple())
                    body_cache[digest] = body
                bodies.append(body)
            env = transport.seal_envelope(
                acker, dest, None, encoded_bodies=bodies
            )
            for msize in env.member_sizes:
                traffic.record_send(MessageType.ACK, msize, rnd, physical=False)
            traffic.record_envelope(env.count, env.size)
            if not nodes[dest].alive:
                traffic.record_omissions(env.count)
                continue
            for message in transport.open_envelope(dest, env):
                handle = handles.get((dest, message.payload))
                if handle is not None:
                    handle.acks += 1

    def _ack_wave_fast(
        self, ack_queue: List[Tuple[NodeId, NodeId, ProtocolMessage]], rnd: Round
    ) -> None:
        """Honest-path ACK wave: aggregate instead of per-wire round trips.

        With no OS behaviours an ACK can never be dropped, delayed,
        tampered or replayed, so writing each one through the transport
        and reading it back is pure bookkeeping.  ACKs identical in
        (dest, digest) collapse into one Counter entry that credits the
        pending multicast handle in a single addition; traffic is charged
        in bulk with the same per-ACK modeled size the per-wire path uses.
        """
        nodes = self.nodes
        traffic = self.stats.traffic
        transport = self.transport
        size_cache = self._ack_size_cache
        counts: Counter = Counter()
        total_bytes = 0
        total_count = 0
        for acker, dest, ack in ack_queue:
            if not nodes[acker].alive:
                continue
            cache_key = (ack.instance, ack.initiator, ack.seq, ack.rnd, ack.payload)
            size = size_cache.get(cache_key)
            if size is None:
                size = transport.message_size(ack)
                size_cache[cache_key] = size
            total_bytes += size
            total_count += 1
            counts[(dest, ack.payload)] += 1
        if total_count:
            traffic.record_send_bulk(
                MessageType.ACK, total_bytes, rnd, total_count
            )
        handles = self._pending_handles
        for (dest, digest), count in counts.items():
            dest_node = nodes.get(dest)
            if dest_node is None or not dest_node.alive:
                traffic.record_omissions(count)
                continue
            handle = handles.get((dest, digest))
            if handle is not None:
                handle.acks += count
            # ACKs for unknown multicasts are ignored, as in _deliver.

    def _deliver_fast(self, wires: List[WireMessage], rnd: Round) -> None:
        """Honest-path delivery: no OS behaviours to consult, no tracing.

        Channel verification still runs per wire — it is the semantics
        being simulated — but the behaviour and tracer indirections of
        :meth:`_deliver` are skipped entirely.
        """
        nodes = self.nodes
        traffic = self.stats.traffic
        read = self.transport.read
        handles = self._pending_handles
        delivered = self._sched_delivered if self._sparse else None
        tm = self._timing
        if tm is None:
            for wire in wires:
                receiver_node = nodes.get(wire.receiver)
                if receiver_node is None or not receiver_node.alive:
                    traffic.record_omission()
                    continue
                try:
                    message = read(wire.receiver, wire)
                except (IntegrityError, ReplayError, StaleRoundError,
                        ProtocolError):
                    traffic.record_rejection()
                    continue
                if message.type is MessageType.ACK:
                    handle = handles.get((wire.receiver, message.payload))
                    if handle is not None:
                        handle.acks += 1
                    continue
                if delivered is not None:
                    delivered.add(wire.receiver)
                receiver_node.program.on_message(
                    receiver_node.context, wire.sender, message
                )
            return
        # Timed twin of the loop above: channel reads accrue to ``open``,
        # program dispatch to ``handler``.
        open_s = handler_s = 0.0
        for wire in wires:
            receiver_node = nodes.get(wire.receiver)
            if receiver_node is None or not receiver_node.alive:
                traffic.record_omission()
                continue
            t0 = perf_counter()
            try:
                message = read(wire.receiver, wire)
            except (IntegrityError, ReplayError, StaleRoundError, ProtocolError):
                open_s += perf_counter() - t0
                traffic.record_rejection()
                continue
            open_s += perf_counter() - t0
            if message.type is MessageType.ACK:
                handle = handles.get((wire.receiver, message.payload))
                if handle is not None:
                    handle.acks += 1
                continue
            if delivered is not None:
                delivered.add(wire.receiver)
            t0 = perf_counter()
            receiver_node.program.on_message(
                receiver_node.context, wire.sender, message
            )
            handler_s += perf_counter() - t0
        tm.add("open", open_s)
        tm.add("handler", handler_s)

    def _deliver(
        self, wires: List[WireMessage], rnd: Round, is_ack_wave: bool
    ) -> None:
        nodes = self.nodes
        traffic = self.stats.traffic
        transport = self.transport
        tracer = self.tracer
        traced = tracer.enabled
        handles = self._pending_handles
        delivered = self._sched_delivered if self._sparse else None
        tm = self._timing
        open_s = handler_s = 0.0
        for wire in wires:
            receiver_node = nodes.get(wire.receiver)
            if receiver_node is None or not receiver_node.alive:
                traffic.record_omission()
                if traced:
                    tracer.wire(rnd, wire, "omit_dead")
                continue
            behavior = receiver_node.behavior
            if behavior is not None and not behavior.filter_receive(wire, rnd):
                traffic.record_omission()
                if traced:
                    tracer.wire(rnd, wire, "drop_recv", actor=wire.receiver)
                continue
            t0 = perf_counter() if tm is not None else 0.0
            try:
                message = transport.read(wire.receiver, wire)
            except (IntegrityError, ReplayError, StaleRoundError):
                if tm is not None:
                    open_s += perf_counter() - t0
                traffic.record_rejection()
                if traced:
                    tracer.wire(rnd, wire, "reject")
                continue
            except ProtocolError:
                if tm is not None:
                    open_s += perf_counter() - t0
                traffic.record_rejection()
                if traced:
                    tracer.wire(rnd, wire, "reject")
                continue
            if tm is not None:
                open_s += perf_counter() - t0
            if message.type is MessageType.ACK:
                handle = handles.get((wire.receiver, message.payload))
                if handle is not None:
                    handle.acks += 1
                # ACKs for unknown multicasts (replays, cross-round strays)
                # are ignored — exactly the 'treat as omitted' rule.
                continue
            if delivered is not None:
                delivered.add(wire.receiver)
            t0 = perf_counter() if tm is not None else 0.0
            receiver_node.program.on_message(
                receiver_node.context, wire.sender, message
            )
            if tm is not None:
                handler_s += perf_counter() - t0
        if tm is not None:
            tm.add("open", open_s)
            tm.add("handler", handler_s)
