"""Real-network wire transport: asyncio TCP + a lockstep round pump.

Everything else in :mod:`repro.net` runs inside the discrete-event
simulator; this module runs the *same enclave programs* over real TCP
sockets.  One :class:`WireNode` hosts one node's enclave as a
long-running daemon (``python -m repro node``); :func:`run_cluster`
spins an N-node loopback cluster up in one process group
(``python -m repro cluster``) and runs ERB / ERNG / pb-ERB / beacon
epochs end-to-end over the wire.

Design constraints, in order:

1. **The protocol cores and the sealing stack are untouched.**  Programs
   see the exact :class:`~repro.net.simulator.EnclaveContext` API
   (:class:`WireContext` mirrors it method for method), messages are the
   same :class:`~repro.common.types.ProtocolMessage` tuples in the same
   deterministic serialization, and FULL-security links reuse
   :class:`~repro.channel.peer_channel.SecureChannel` envelopes —
   per-link AEAD counter sequences included.

2. **Decisions are identical to the simulator at the same seed.**  RNG
   forks are label-derived (``DeterministicRNG(("simulation", seed))
   .fork(("rdrand", node_id))``), so a daemon that builds only its own
   node still draws bit-identical enclave randomness.  Deliveries are
   dispatched in canonical order (links sorted by sender, members in
   emission order) so a wire round presents programs the same
   delivery-insensitive view a simulator round does.

3. **Rounds are driven by I/O readiness, not a global loop.**  Each
   round runs three barrier waves over round-stamped frames:

   * ``DATA* → EOD``  — sealed round envelopes, then an end-of-data
     marker (phase 2/3: transmit + deliver);
   * ``ACK → EOA``    — aggregated 8-byte ACK digests, then an
     end-of-ack marker (phase 4: the same-round ACK wave);
   * ``FIN(done)``    — post-round-end marker carrying the node's
     doneness, so every node evaluates ``everyone_done`` on the same
     information the simulator's after-round check sees.

   A peer that misses a barrier past the timeout (plus one grace retry)
   is **ejected**: its traffic for the round is discarded and counted as
   omissions — the campaign harness's omission semantics, reused.
   Ejection never raises; the survivors keep lockstep among themselves.

Frame layout (see docs/NETWORKING.md for the wire diagram)::

    u32 length (little-endian) | payload = encode((kind, run, rnd, ...))

The payload reuses :mod:`repro.common.serialization` — the same tagged,
deterministic, attacker-bytes-never-execute encoding the simulator's
channels use.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket
import struct
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.beacon import BeaconRecord, RandomBeacon, epoch_seed
from repro.channel.peer_channel import Envelope, SecureChannel
from repro.channel.replay import ReplayGuard
from repro.common.config import ChannelSecurity, SimulationConfig
from repro.common.errors import (
    ConfigurationError,
    CryptoError,
    ProtocolError,
)
from repro.common.rng import DeterministicRNG
from repro.common.serialization import decode, encode
from repro.common.types import NodeId, ProtocolMessage
from repro.core.erb import ErbProgram
from repro.core.erng import ErngProgram
from repro.core.pb_erb import PbErbConfig, PbErbProgram
from repro.crypto.dh import MODP_2048
from repro.crypto.hashing import hash_bytes
from repro.net.simulator import MulticastHandle, _multicast_key
from repro.net.topology import Topology
from repro.obs.metrics import Histogram
from repro.obs.tracer import NULL_TRACER
from repro.sgx.attestation import AttestationAuthority
from repro.sgx.enclave import Enclave
from repro.sgx.program import EnclaveProgram
from repro.sgx.trusted_time import SimulationClock

_LOG = logging.getLogger("repro.wire")

#: Wire protocol version, checked in the HELLO exchange.
WIRE_PROTO_VERSION = 1

#: Length prefix framing (mirrors the shm ring's u32 header).
_LEN = struct.Struct("<I")
#: Refuse frames past this size — a corrupted length prefix must not
#: allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# Frame kinds.
K_HELLO = 1   # (kind, version, node_id, config_digest)
K_DATA = 2    # (kind, run, rnd, counter, count, body)
K_EOD = 3     # (kind, run, rnd)              end of data wave
K_ACK = 4     # (kind, run, rnd, digests)     aggregated ack digests
K_EOA = 5     # (kind, run, rnd)              end of ack wave
K_FIN = 6     # (kind, run, rnd, done)        post-round-end barrier
K_BYE = 7     # (kind, run, rnd, reason)      graceful departure

#: Default per-barrier timeout.  Loopback rounds complete in
#: milliseconds; the default is generous so slow CI machines never
#: eject healthy peers.  One grace retry of ``timeout/2`` runs before
#: ejection.
DEFAULT_ROUND_TIMEOUT_S = 10.0

#: How long the dialer retries an unreachable peer during cluster
#: bring-up (daemons may start in any order).
DEFAULT_CONNECT_TIMEOUT_S = 15.0

WIRE_PROTOCOLS = ("erb", "erng", "pb-erb", "beacon")


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------

@dataclass
class WireNodeConfig:
    """Everything one daemon needs: identity, address book, protocol.

    The JSON form (``python -m repro node --config node.json``) uses the
    same field names; :meth:`from_json` / :meth:`to_json` round-trip it.
    """

    node_id: NodeId
    n: int
    t: int = -1
    seed: int = 0
    protocol: str = "erb"
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    #: peer id -> (host, port) for every *other* node.
    peers: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    security: str = "modeled"          # "modeled" | "full"
    delta: float = 0.05
    round_timeout_s: float = DEFAULT_ROUND_TIMEOUT_S
    connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S
    # protocol knobs
    initiator: NodeId = 0
    message: bytes = b"wire"
    seq: int = 1
    random_bits: int = 128
    epochs: int = 1
    #: test knob: fail before the data wave of this round — exercises
    #: dead-peer ejection.
    fail_at_round: Optional[int] = None
    #: how to fail: "crash" tears the sockets down (peers eject on EOF);
    #: "hang" goes silent with sockets open (peers eject on barrier
    #: timeout + grace retry).
    fail_mode: str = "crash"

    def __post_init__(self) -> None:
        if self.t < 0:
            self.t = (self.n - 1) // 2
        if self.protocol not in WIRE_PROTOCOLS:
            raise ConfigurationError(
                f"unknown wire protocol {self.protocol!r}; "
                f"expected one of {WIRE_PROTOCOLS}"
            )
        if self.security not in ("modeled", "full"):
            raise ConfigurationError(
                f"wire security must be 'modeled' or 'full', "
                f"got {self.security!r}"
            )
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.fail_mode not in ("crash", "hang"):
            raise ConfigurationError(
                f"fail_mode must be 'crash' or 'hang', got {self.fail_mode!r}"
            )

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "node_id": self.node_id,
            "n": self.n,
            "t": self.t,
            "seed": self.seed,
            "protocol": self.protocol,
            "listen_host": self.listen_host,
            "listen_port": self.listen_port,
            "peers": {
                str(pid): [host, port]
                for pid, (host, port) in sorted(self.peers.items())
            },
            "security": self.security,
            "delta": self.delta,
            "round_timeout_s": self.round_timeout_s,
            "connect_timeout_s": self.connect_timeout_s,
            "initiator": self.initiator,
            "message": self.message.decode("utf-8", "replace"),
            "seq": self.seq,
            "random_bits": self.random_bits,
            "epochs": self.epochs,
        }
        if self.fail_at_round is not None:
            payload["fail_at_round"] = self.fail_at_round
            payload["fail_mode"] = self.fail_mode
        return json.dumps(payload, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "WireNodeConfig":
        raw = json.loads(text)
        peers = {
            int(pid): (host, int(port))
            for pid, (host, port) in raw.get("peers", {}).items()
        }
        return WireNodeConfig(
            node_id=int(raw["node_id"]),
            n=int(raw["n"]),
            t=int(raw.get("t", -1)),
            seed=int(raw.get("seed", 0)),
            protocol=raw.get("protocol", "erb"),
            listen_host=raw.get("listen_host", "127.0.0.1"),
            listen_port=int(raw.get("listen_port", 0)),
            peers=peers,
            security=raw.get("security", "modeled"),
            delta=float(raw.get("delta", 0.05)),
            round_timeout_s=float(
                raw.get("round_timeout_s", DEFAULT_ROUND_TIMEOUT_S)
            ),
            connect_timeout_s=float(
                raw.get("connect_timeout_s", DEFAULT_CONNECT_TIMEOUT_S)
            ),
            initiator=int(raw.get("initiator", 0)),
            message=raw.get("message", "wire").encode(),
            seq=int(raw.get("seq", 1)),
            random_bits=int(raw.get("random_bits", 128)),
            epochs=int(raw.get("epochs", 1)),
            fail_at_round=(
                int(raw["fail_at_round"])
                if raw.get("fail_at_round") is not None
                else None
            ),
            fail_mode=raw.get("fail_mode", "crash"),
        )

    def config_digest(self) -> bytes:
        """What both ends of a HELLO must agree on to talk at all."""
        return hash_bytes(
            encode((
                self.n, self.t, self.seed, self.protocol, self.security,
                self.random_bits, self.epochs, WIRE_PROTO_VERSION,
            )),
            domain="wire-hello",
        )

    def simulation_config(self, seed: Optional[int] = None) -> SimulationConfig:
        security = (
            ChannelSecurity.FULL
            if self.security == "full"
            else ChannelSecurity.MODELED
        )
        return SimulationConfig(
            n=self.n,
            t=self.t,
            seed=self.seed if seed is None else seed,
            delta=self.delta,
            channel_security=security,
            random_bits=self.random_bits,
        )


# ----------------------------------------------------------------------
# observability: per-link counters + latency histograms
# ----------------------------------------------------------------------

class WireStats:
    """Per-link byte/frame counters and wire-latency histograms.

    Persisted snapshots must carry ``transport="tcp"`` in their machine
    stamp (:func:`repro.obs.machine.machine_stamp`) so bench entries
    never cross-compare with simulated runs.
    """

    def __init__(self) -> None:
        self.bytes_sent: Dict[int, int] = {}
        self.bytes_received: Dict[int, int] = {}
        self.frames_sent: Dict[int, int] = {}
        self.frames_received: Dict[int, int] = {}
        self.omissions = 0
        self.rejections = 0
        self.ejected: List[int] = []
        #: seconds spent blocked on each barrier wait
        self.barrier_wait_s = Histogram()
        #: wall-clock seconds per completed round
        self.round_wall_s = Histogram()

    # -- recording -----------------------------------------------------
    def sent(self, peer: int, nbytes: int) -> None:
        self.bytes_sent[peer] = self.bytes_sent.get(peer, 0) + nbytes
        self.frames_sent[peer] = self.frames_sent.get(peer, 0) + 1

    def received(self, peer: int, nbytes: int) -> None:
        self.bytes_received[peer] = self.bytes_received.get(peer, 0) + nbytes
        self.frames_received[peer] = self.frames_received.get(peer, 0) + 1

    @property
    def total_bytes_sent(self) -> int:
        return sum(self.bytes_sent.values())

    @property
    def total_bytes_received(self) -> int:
        return sum(self.bytes_received.values())

    def snapshot(self) -> Dict:
        return {
            "transport": "tcp",
            "bytes_sent_by_peer": dict(sorted(self.bytes_sent.items())),
            "bytes_received_by_peer": dict(
                sorted(self.bytes_received.items())
            ),
            "frames_sent_by_peer": dict(sorted(self.frames_sent.items())),
            "frames_received_by_peer": dict(
                sorted(self.frames_received.items())
            ),
            "total_bytes_sent": self.total_bytes_sent,
            "total_bytes_received": self.total_bytes_received,
            "omissions": self.omissions,
            "rejections": self.rejections,
            "ejected": list(self.ejected),
            "barrier_wait_s": self.barrier_wait_s.snapshot(),
            "round_wall_s": self.round_wall_s.snapshot(),
        }


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------

@dataclass
class WireRunReport:
    """What one daemon reports after its service run."""

    node_id: NodeId
    output: Optional[object]
    decided_round: Optional[int]
    halted: bool
    rounds_executed: int
    ejected_peers: List[int]
    round_walls: List[float]
    round_bytes: List[int]
    stats: WireStats
    records: List[BeaconRecord] = field(default_factory=list)
    crashed: bool = False

    def to_json_dict(self) -> Dict:
        output = self.output
        if isinstance(output, bytes):
            output = output.decode("utf-8", "replace")
        return {
            "node_id": self.node_id,
            "output": output,
            "decided_round": self.decided_round,
            "halted": self.halted,
            "rounds_executed": self.rounds_executed,
            "ejected_peers": self.ejected_peers,
            "round_walls": self.round_walls,
            "round_bytes": self.round_bytes,
            "records": [
                {
                    "epoch": r.epoch,
                    "value": r.value,
                    "prev_digest": r.prev_digest.hex(),
                    "digest": r.digest.hex(),
                }
                for r in self.records
            ],
            "crashed": self.crashed,
            "wire": self.stats.snapshot(),
        }

    @staticmethod
    def from_json_dict(raw: Dict) -> "WireRunReport":
        """Rebuild a report from a daemon's JSON output (the multi-
        process launcher's path).  Byte outputs come back as text and
        counters stay in the ``wire`` snapshot — enough for summaries
        and calibration, not a bit-exact round trip."""
        return WireRunReport(
            node_id=int(raw["node_id"]),
            output=raw.get("output"),
            decided_round=raw.get("decided_round"),
            halted=bool(raw.get("halted")),
            rounds_executed=int(raw.get("rounds_executed", 0)),
            ejected_peers=list(raw.get("ejected_peers", [])),
            round_walls=[float(w) for w in raw.get("round_walls", [])],
            round_bytes=[int(b) for b in raw.get("round_bytes", [])],
            stats=WireStats(),
            records=[
                BeaconRecord(
                    epoch=int(r["epoch"]),
                    value=int(r["value"]),
                    prev_digest=bytes.fromhex(r["prev_digest"]),
                    digest=bytes.fromhex(r["digest"]),
                )
                for r in raw.get("records", [])
            ],
            crashed=bool(raw.get("crashed")),
        )


@dataclass
class ClusterResult:
    """Aggregated view of one loopback cluster run."""

    outputs: Dict[NodeId, object]
    decided_rounds: Dict[NodeId, Optional[int]]
    halted: List[NodeId]
    rounds_executed: int
    reports: Dict[NodeId, WireRunReport]
    records: List[BeaconRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def round_samples(self) -> List[Tuple[int, float]]:
        """(bytes, wall-seconds) per round, summed across nodes — the
        calibration input."""
        samples: List[Tuple[int, float]] = []
        reports = list(self.reports.values())
        if not reports:
            return samples
        rounds = max(len(r.round_walls) for r in reports)
        for i in range(rounds):
            total_bytes = sum(
                r.round_bytes[i] for r in reports if i < len(r.round_bytes)
            )
            walls = [
                r.round_walls[i] for r in reports if i < len(r.round_walls)
            ]
            samples.append((total_bytes, max(walls) if walls else 0.0))
        return samples


# ----------------------------------------------------------------------
# simulator calibration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CalibrationFit:
    """Least-squares fit of the simulator's round-duration model
    ``wall = latency + bytes / bandwidth`` against measured wire rounds.

    ``latency_s`` maps onto the simulator's ``2Δ`` round floor (so the
    suggested ``delta`` is half of it) and ``bandwidth_bytes_per_s``
    onto ``SimulationConfig.bandwidth_bytes_per_s``.  ``residual_s`` is
    the RMS misfit — record it next to the fit; a residual on the order
    of the fitted latency means the linear model does not explain the
    measurements and the parameters are not trustworthy.
    """

    latency_s: float
    bandwidth_bytes_per_s: Optional[float]
    residual_s: float
    samples: int

    @property
    def suggested_delta(self) -> float:
        return max(self.latency_s / 2.0, 0.0)

    def to_json_dict(self) -> Dict:
        return {
            "latency_s": self.latency_s,
            "bandwidth_bytes_per_s": self.bandwidth_bytes_per_s,
            "residual_s": self.residual_s,
            "samples": self.samples,
            "suggested_delta": self.suggested_delta,
        }


def fit_round_model(samples: Sequence[Tuple[int, float]]) -> CalibrationFit:
    """Fit ``wall = latency + bytes/bandwidth`` to ``(bytes, wall)``
    samples by ordinary least squares.

    Degenerate inputs fall back gracefully: with fewer than two distinct
    byte counts the bandwidth term is unidentifiable and the fit reduces
    to ``latency = mean(wall)``, ``bandwidth = None``.
    """
    pts = [(float(b), float(w)) for b, w in samples if w >= 0.0]
    if not pts:
        raise ConfigurationError("calibration needs at least one sample")
    n = len(pts)
    mean_b = sum(b for b, _ in pts) / n
    mean_w = sum(w for _, w in pts) / n
    var_b = sum((b - mean_b) ** 2 for b, _ in pts)
    if var_b <= 0.0 or n < 2:
        residual = (
            sum((w - mean_w) ** 2 for _, w in pts) / n
        ) ** 0.5
        return CalibrationFit(
            latency_s=mean_w,
            bandwidth_bytes_per_s=None,
            residual_s=residual,
            samples=n,
        )
    cov = sum((b - mean_b) * (w - mean_w) for b, w in pts)
    slope = cov / var_b                      # seconds per byte
    latency = mean_w - slope * mean_b
    if slope <= 0.0:
        # Faster with more bytes — loopback noise dominates; report the
        # latency-only model rather than a negative bandwidth.
        residual = (
            sum((w - mean_w) ** 2 for _, w in pts) / n
        ) ** 0.5
        return CalibrationFit(
            latency_s=mean_w,
            bandwidth_bytes_per_s=None,
            residual_s=residual,
            samples=n,
        )
    residual = (
        sum((w - (latency + slope * b)) ** 2 for b, w in pts) / n
    ) ** 0.5
    return CalibrationFit(
        latency_s=max(latency, 0.0),
        bandwidth_bytes_per_s=1.0 / slope,
        residual_s=residual,
        samples=n,
    )


def calibrate_from_results(
    results: Sequence[ClusterResult],
) -> CalibrationFit:
    """Fit the round model against every round of several cluster runs."""
    samples: List[Tuple[int, float]] = []
    for result in results:
        samples.extend(result.round_samples)
    return fit_round_model(samples)


# ----------------------------------------------------------------------
# per-link state
# ----------------------------------------------------------------------

class _RoundInbox:
    """Buffered frames of one (run, round) from one peer."""

    __slots__ = (
        "data", "acks", "eod", "eoa", "fin", "done",
        "eod_seen", "eoa_seen",
    )

    def __init__(self) -> None:
        self.data: List[tuple] = []
        self.acks: List[bytes] = []
        self.eod = asyncio.Event()
        self.eoa = asyncio.Event()
        self.fin = asyncio.Event()
        self.done = False
        # Events are force-set when a peer dies (so barriers wake); these
        # record whether the wave marker actually arrived — a dead peer's
        # partial round traffic is discarded, not half-applied.
        self.eod_seen = False
        self.eoa_seen = False

    def wake_all(self) -> None:
        self.eod.set()
        self.eoa.set()
        self.fin.set()


class _Peer:
    """One TCP link to one peer node."""

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.alive = False
        self.goodbye: Optional[str] = None
        self._inboxes: Dict[Tuple[int, int], _RoundInbox] = {}

    def inbox(self, run: int, rnd: int) -> _RoundInbox:
        key = (run, rnd)
        box = self._inboxes.get(key)
        if box is None:
            box = _RoundInbox()
            self._inboxes[key] = box
        return box

    def drop_round(self, run: int, rnd: int) -> None:
        self._inboxes.pop((run, rnd), None)

    def mark_dead(self, reason: str) -> None:
        self.alive = False
        if self.goodbye is None:
            self.goodbye = reason
        for box in self._inboxes.values():
            box.wake_all()


# ----------------------------------------------------------------------
# the enclave-visible context (mirrors EnclaveContext)
# ----------------------------------------------------------------------

@dataclass
class _SendIntent:
    targets: Tuple[NodeId, ...]
    message: ProtocolMessage
    expect_acks: bool
    threshold: int


class WireContext:
    """The :class:`~repro.net.simulator.EnclaveContext` API, backed by
    the wire pump instead of the simulator.  Programs cannot tell the
    difference — that is the seam that keeps the cores untouched."""

    def __init__(self, node: "WireNode") -> None:
        self._node = node
        self.node_id = node.cfg.node_id

    # ---- environment -------------------------------------------------
    @property
    def n(self) -> int:
        return self._node.cfg.n

    @property
    def t(self) -> int:
        return self._node.cfg.t

    @property
    def config(self) -> SimulationConfig:
        return self._node.sim_config

    @property
    def round(self) -> int:
        return self._node.current_round

    @property
    def rdrand(self):
        return self._node.enclave.rdrand

    @property
    def tracer(self):
        return self._node.tracer

    @property
    def clock(self):
        return self._node.enclave.clock

    def neighbours(self) -> Tuple[NodeId, ...]:
        return self._node.neighbour_tuple()

    # ---- actions -----------------------------------------------------
    def multicast(
        self,
        message: ProtocolMessage,
        targets=None,
        expect_acks: bool = True,
        threshold: Optional[int] = None,
    ) -> None:
        self._node.queue_multicast(message, targets, expect_acks, threshold)

    def send(
        self, dest: NodeId, message: ProtocolMessage, expect_acks: bool = False
    ) -> None:
        self._node.queue_multicast(message, (dest,), expect_acks, None)

    def acknowledge(self, dest: NodeId, original: ProtocolMessage) -> None:
        self._node.queue_ack(dest, original)

    def halt(self) -> None:
        self._node.request_halt()


# ----------------------------------------------------------------------
# protocol plans
# ----------------------------------------------------------------------

def _protocol_plan(
    cfg: WireNodeConfig, seed: int
) -> Tuple[Callable[[NodeId], EnclaveProgram], int]:
    """(program factory, max_rounds) for one run — the same factories
    the one-shot drivers (`run_erb` et al.) build."""
    if cfg.protocol == "erb":
        def factory(node_id: NodeId) -> EnclaveProgram:
            return ErbProgram(
                node_id=node_id,
                initiator=cfg.initiator,
                n=cfg.n,
                t=cfg.t,
                seq=cfg.seq,
                message=cfg.message if node_id == cfg.initiator else None,
            )
        return factory, cfg.t + 2
    if cfg.protocol in ("erng", "beacon"):
        def factory(node_id: NodeId) -> EnclaveProgram:
            return ErngProgram(
                node_id=node_id,
                n=cfg.n,
                t=cfg.t,
                random_bits=cfg.random_bits,
            )
        return factory, cfg.t + 2
    if cfg.protocol == "pb-erb":
        pb = PbErbConfig()
        topology = Topology.full_mesh(cfg.n)

        def factory(node_id: NodeId) -> EnclaveProgram:
            return PbErbProgram(
                node_id=node_id,
                initiator=cfg.initiator,
                n=cfg.n,
                t=cfg.t,
                topology=topology,
                seq=cfg.seq,
                message=cfg.message if node_id == cfg.initiator else None,
                pb=pb,
            )
        return factory, pb.resolved_round_bound(cfg.n)
    raise ConfigurationError(f"unknown protocol {cfg.protocol!r}")


class _WireAbort(Exception):
    """Internal: the fail_at_round crash knob fired."""


# ----------------------------------------------------------------------
# the node daemon
# ----------------------------------------------------------------------

class WireNode:
    """One node's enclave programs served over TCP.

    Lifecycle: :meth:`start_server` (bind), :meth:`run_service`
    (connect, handshake, run the configured protocol to completion),
    :meth:`shutdown` (graceful stop, also wired to SIGTERM by the
    daemon CLI).  All coroutines run on one event loop; ``run_service``
    owns every task it spawns and joins them before returning, so a
    clean shutdown leaves no orphan tasks.
    """

    def __init__(self, cfg: WireNodeConfig, tracer=None) -> None:
        self.cfg = cfg
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = WireStats()
        self.topology = Topology.full_mesh(cfg.n)
        self.sim_config = cfg.simulation_config()
        self.current_round = 0
        self.current_run = 0
        self._peers: Dict[NodeId, _Peer] = {
            pid: _Peer(pid) for pid in range(cfg.n) if pid != cfg.node_id
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop = asyncio.Event()
        self._connected = asyncio.Event()
        self._accept_tasks: List[asyncio.Task] = []
        self._halt_requested = False
        # per-round protocol state (mirrors the engine's queues)
        self._outbox_now: List[_SendIntent] = []
        self._outbox_next: List[_SendIntent] = []
        self._in_round_begin = False
        self._ack_out: List[Tuple[NodeId, bytes]] = []
        self._pending_handles: Dict[bytes, MulticastHandle] = {}
        self._digest_cache: Dict[tuple, bytes] = {}
        self._round_walls: List[float] = []
        self._round_bytes: List[int] = []
        self._bytes_this_round = 0
        self._departed: set = set()
        self.context = WireContext(self)
        self._build_universe(cfg.seed)

    # ------------------------------------------------------------------
    # deterministic universe: enclave, channels, measurements
    # ------------------------------------------------------------------
    def _build_universe(self, seed: int) -> None:
        """Build this node's enclave — and, because every RNG fork is
        label-derived from the shared seed, the exact same enclave the
        simulator would build.

        Under FULL security the pairwise channel establishment of
        :class:`~repro.net.transport.FullTransport` is replayed locally
        over replica enclaves (same ascending pair order, same DH /
        quote / counter draws); only the channels incident to this node
        are kept.  No key material ever crosses the wire — the shared
        simulation seed *is* the key agreement, which keeps the sealing
        stack byte-identical to the simulator's.
        """
        cfg = self.cfg
        self.sim_config = cfg.simulation_config(seed)
        master = DeterministicRNG(("simulation", seed))
        clock = SimulationClock()
        self._clock_source = clock
        factory, self._max_rounds = _protocol_plan(cfg, seed)
        full = cfg.security == "full"
        authority = AttestationAuthority(master, MODP_2048) if full else None
        enclaves: Dict[NodeId, Enclave] = {}
        for node_id in range(cfg.n):
            enclaves[node_id] = Enclave(
                node_id, factory(node_id), master, clock, authority
            )
        self.enclave = enclaves[cfg.node_id]
        self._measurements = {
            node_id: enclave.measurement
            for node_id, enclave in enclaves.items()
        }
        self._channels: Dict[NodeId, SecureChannel] = {}
        self._send_counters: Dict[NodeId, int] = {}
        self._recv_guards: Dict[NodeId, ReplayGuard] = {}
        if full:
            ids = sorted(enclaves)
            for i, a in enumerate(ids):
                for b in ids[i + 1:]:
                    channel = SecureChannel.establish(
                        enclaves[a], enclaves[b],
                        ChannelSecurity.FULL, MODP_2048,
                    )
                    if cfg.node_id in (a, b):
                        peer = b if a == cfg.node_id else a
                        self._channels[peer] = channel
        else:
            for pid in self._peers:
                self._send_counters[pid] = 0
                self._recv_guards[pid] = ReplayGuard(0)
        # fresh per-run protocol state
        self.current_round = 0
        self._outbox_now = []
        self._outbox_next = []
        self._ack_out = []
        self._pending_handles = {}
        self._digest_cache = {}
        self._halt_requested = False

    # ------------------------------------------------------------------
    # EnclaveContext backend
    # ------------------------------------------------------------------
    def neighbour_tuple(self) -> Tuple[NodeId, ...]:
        base = tuple(self.topology.neighbours(self.cfg.node_id))
        if not self._departed:
            return base
        return tuple(t for t in base if t not in self._departed)

    def queue_multicast(
        self, message, targets, expect_acks, threshold
    ) -> None:
        if targets is None:
            target_tuple = self.neighbour_tuple()
        else:
            target_tuple = tuple(
                t for t in targets if t != self.cfg.node_id
            )
        intent = _SendIntent(
            targets=target_tuple,
            message=message,
            expect_acks=expect_acks,
            threshold=(
                threshold
                if threshold is not None
                else self.sim_config.ack_threshold
            ),
        )
        if self._in_round_begin:
            self._outbox_now.append(intent)
        else:
            self._outbox_next.append(intent)

    def queue_ack(self, dest: NodeId, original: ProtocolMessage) -> None:
        self._ack_out.append((dest, self._ack_digest(original)))

    def request_halt(self) -> None:
        """Voluntary Halt(st): sticky ⊥ immediately (P4), BYE at
        phase 5 — the same in-round timing as the simulator's
        ``EnclaveContext.halt``."""
        self.enclave.halt(self.current_round)
        self._halt_requested = True

    def _ack_digest(self, message: ProtocolMessage) -> bytes:
        key = _multicast_key(message)
        digest = self._digest_cache.get(key)
        if digest is None:
            digest = hash_bytes(encode(key), domain="ack")[:8]
            self._digest_cache[key] = digest
        return digest

    # ------------------------------------------------------------------
    # link layer: framing, sealing
    # ------------------------------------------------------------------
    def _send_frame(self, peer: _Peer, payload: tuple) -> None:
        if not peer.alive or peer.writer is None:
            return
        body = encode(payload)
        frame = _LEN.pack(len(body)) + body
        try:
            peer.writer.write(frame)
        except (ConnectionError, OSError):
            self._eject(peer, "write-error")
            return
        self.stats.sent(peer.node_id, len(frame))
        self._bytes_this_round += len(frame)

    async def _drain_all(self) -> None:
        for peer in self._peers.values():
            if peer.alive and peer.writer is not None:
                try:
                    await peer.writer.drain()
                except (ConnectionError, OSError):
                    self._eject(peer, "write-error")

    def _seal_members(
        self, peer_id: NodeId, members: List[ProtocolMessage]
    ) -> tuple:
        """(counter, count, body) of one round envelope for one link.

        FULL links go through :meth:`SecureChannel.write_envelope` —
        real AEAD ciphertext, the channel's own counter sequence.
        MODELED links carry the plaintext member tuples plus the link
        counter and sender measurement, enforcing the same acceptance
        semantics (measurement binding, strictly increasing counters)
        at the receiver.
        """
        me = self.cfg.node_id
        if self.cfg.security == "full":
            channel = self._channels[peer_id]
            envelope = channel.write_envelope(
                me,
                [encode(m.to_tuple()) for m in members],
                self.enclave.rdrand.rng(),
                self.enclave.measurement,
            )
            return (envelope.counter, envelope.count, envelope.sealed)
        counter = self._send_counters[peer_id] + 1
        self._send_counters[peer_id] = counter
        body = (
            self._measurements[me],
            tuple(m.to_tuple() for m in members),
        )
        return (counter, len(members), body)

    def _open_members(
        self, peer_id: NodeId, counter: int, count: int, body
    ) -> Tuple[ProtocolMessage, ...]:
        me = self.cfg.node_id
        if self.cfg.security == "full":
            channel = self._channels[peer_id]
            envelope = Envelope(
                sender=peer_id,
                receiver=me,
                counter=counter,
                size=len(body),
                count=count,
                sealed=body,
            )
            return channel.read_envelope(me, envelope)
        measurement, raw_members = body
        if measurement != self._measurements[peer_id]:
            raise ProtocolError(
                "message bound to a different program (H(pi) mismatch)"
            )
        self._recv_guards[peer_id].check_and_update(counter)
        return tuple(ProtocolMessage.from_tuple(raw) for raw in raw_members)

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    async def start_server(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound address."""
        self._server = await asyncio.start_server(
            self._accept, self.cfg.listen_host, self.cfg.listen_port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.cfg.listen_port = port
        return host, port

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello, _ = await asyncio.wait_for(
                self._read_raw_frame(reader),
                timeout=self.cfg.connect_timeout_s,
            )
            kind, version, peer_id, digest = hello
            if kind != K_HELLO or version != WIRE_PROTO_VERSION:
                raise ProtocolError("bad HELLO")
            if digest != self.cfg.config_digest():
                raise ProtocolError(
                    "peer disagrees on (n, t, seed, protocol) — refusing"
                )
            peer = self._peers.get(peer_id)
            if peer is None or peer.alive:
                raise ProtocolError(f"unexpected peer {peer_id}")
        except (ProtocolError, asyncio.TimeoutError, ConnectionError,
                OSError, asyncio.IncompleteReadError) as exc:
            _LOG.warning("node %d: rejected connection: %s",
                         self.cfg.node_id, exc)
            writer.close()
            return
        self._attach(peer, reader, writer)
        self._send_hello(peer)
        self._check_connected()

    def _send_hello(self, peer: _Peer) -> None:
        self._send_frame(peer, (
            K_HELLO, WIRE_PROTO_VERSION, self.cfg.node_id,
            self.cfg.config_digest(),
        ))

    def _attach(
        self,
        peer: _Peer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peer.reader = reader
        peer.writer = writer
        peer.alive = True
        peer.reader_task = asyncio.ensure_future(self._reader_loop(peer))

    def _check_connected(self) -> None:
        if all(p.alive for p in self._peers.values()):
            self._connected.set()

    async def _dial(self, peer_id: NodeId) -> None:
        """Connect to a higher-numbered peer, retrying through bring-up."""
        host, port = self.cfg.peers[peer_id]
        deadline = perf_counter() + self.cfg.connect_timeout_s
        delay = 0.02
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except (ConnectionError, OSError):
                if perf_counter() >= deadline or self._stop.is_set():
                    raise ProtocolError(
                        f"node {self.cfg.node_id}: peer {peer_id} at "
                        f"{host}:{port} unreachable"
                    )
                await asyncio.sleep(delay)
                delay = min(delay * 2, 0.5)
        peer = self._peers[peer_id]
        peer.reader = reader
        peer.writer = writer
        self._send_hello_raw(writer, peer)
        hello, _ = await asyncio.wait_for(
            self._read_raw_frame(reader), timeout=self.cfg.connect_timeout_s
        )
        kind, version, got_id, digest = hello
        if (kind != K_HELLO or version != WIRE_PROTO_VERSION
                or got_id != peer_id
                or digest != self.cfg.config_digest()):
            writer.close()
            raise ProtocolError(f"bad HELLO from peer {peer_id}")
        peer.alive = True
        peer.reader_task = asyncio.ensure_future(self._reader_loop(peer))
        self._check_connected()

    def _send_hello_raw(
        self, writer: asyncio.StreamWriter, peer: _Peer
    ) -> None:
        body = encode((
            K_HELLO, WIRE_PROTO_VERSION, self.cfg.node_id,
            self.cfg.config_digest(),
        ))
        frame = _LEN.pack(len(body)) + body
        writer.write(frame)
        self.stats.sent(peer.node_id, len(frame))

    @staticmethod
    async def _read_raw_frame(
        reader: asyncio.StreamReader,
    ) -> Tuple[tuple, int]:
        header = await reader.readexactly(_LEN.size)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"oversized frame ({length} bytes)")
        body = await reader.readexactly(length)
        return decode(body), _LEN.size + length

    async def connect_peers(self) -> None:
        """Dial every higher-numbered peer; wait for the rest to dial us."""
        dialers = [
            asyncio.ensure_future(self._dial(pid))
            for pid in sorted(self._peers)
            if pid > self.cfg.node_id
        ]
        try:
            if dialers:
                await asyncio.gather(*dialers)
            await asyncio.wait_for(
                self._connected.wait(), timeout=self.cfg.connect_timeout_s
            )
        except asyncio.TimeoutError:
            missing = [p.node_id for p in self._peers.values() if not p.alive]
            raise ProtocolError(
                f"node {self.cfg.node_id}: peers {missing} never connected"
            ) from None
        finally:
            for task in dialers:
                if not task.done():
                    task.cancel()

    async def _reader_loop(self, peer: _Peer) -> None:
        assert peer.reader is not None
        try:
            while True:
                frame, nbytes = await self._read_raw_frame(peer.reader)
                self.stats.received(peer.node_id, nbytes)
                self._route(peer, frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            # No BYE first: the peer crashed — eject (a peer that said
            # goodbye is already dead, and _eject is a no-op then).
            self._eject(peer, "connection-lost")
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # malformed frame: treat as link death
            _LOG.warning(
                "node %d: link to %d failed: %s",
                self.cfg.node_id, peer.node_id, exc,
            )
            self._eject(peer, "protocol-error")

    def _route(self, peer: _Peer, frame: tuple) -> None:
        kind = frame[0]
        if kind == K_BYE:
            _, run, rnd, reason = frame
            peer.mark_dead(f"bye:{reason}")
            # A BYE is the wire's evict_departed_node: the peer halted
            # or shut down, so it leaves the topology from the next
            # round on (the simulator's phase-5 eviction timing — a BYE
            # is only ever sent after the current round's data wave).
            self._departed.add(peer.node_id)
            return
        _, run, rnd = frame[0:3]
        box = peer.inbox(run, rnd)
        if kind == K_DATA:
            box.data.append(frame[3:])       # (counter, count, body)
        elif kind == K_EOD:
            box.eod_seen = True
            box.eod.set()
        elif kind == K_ACK:
            box.acks.extend(frame[3])
        elif kind == K_EOA:
            box.eoa_seen = True
            box.eoa.set()
        elif kind == K_FIN:
            box.done = bool(frame[3])
            box.fin.set()
        else:
            raise ProtocolError(f"unknown frame kind {kind}")

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def _live_peers(self) -> List[_Peer]:
        return [
            self._peers[pid]
            for pid in sorted(self._peers)
            if self._peers[pid].alive
        ]

    async def _barrier(self, run: int, rnd: int, wave: str) -> None:
        """Wait for every live peer's end-of-wave marker; eject on
        timeout (one grace retry of half the timeout first)."""
        timeout = self.cfg.round_timeout_s
        for peer in self._live_peers():
            box = peer.inbox(run, rnd)
            event: asyncio.Event = getattr(box, wave)
            if event.is_set():
                continue
            t0 = perf_counter()
            try:
                await asyncio.wait_for(event.wait(), timeout)
            except asyncio.TimeoutError:
                try:    # grace retry: half the timeout again
                    await asyncio.wait_for(event.wait(), timeout / 2)
                except asyncio.TimeoutError:
                    self._eject(peer, f"timeout:{wave}:round-{rnd}")
            self.stats.barrier_wait_s.observe(perf_counter() - t0)

    def _eject(self, peer: _Peer, reason: str) -> None:
        """Dead/slow peer: remove it from the lockstep group.  Its
        undelivered traffic becomes omissions — the campaign harness's
        omission semantics over a real socket."""
        if not peer.alive:
            return
        peer.mark_dead(reason)
        self._departed.add(peer.node_id)
        self.stats.ejected.append(peer.node_id)
        _LOG.info(
            "node %d: ejected peer %d (%s)",
            self.cfg.node_id, peer.node_id, reason,
        )
        if peer.writer is not None:
            try:
                peer.writer.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # the round pump
    # ------------------------------------------------------------------
    async def _run_rounds(self, run: int, max_rounds: int) -> None:
        """Drive the six engine phases over the wire for one run."""
        program = self.enclave.program
        cfg = self.cfg
        self.current_round = 0
        program.on_setup(self.context)
        executed = 0
        for rnd in range(1, max_rounds + 1):
            if self._stop.is_set():
                break
            round_t0 = perf_counter()
            self._bytes_this_round = 0
            self.current_round = rnd
            self._pending_handles.clear()
            alive = not self.enclave.halted

            if cfg.fail_at_round == rnd:
                if cfg.fail_mode == "hang":
                    # Go silent with sockets open; peers must eject us
                    # on barrier timeout.  Exit once they all have (they
                    # close their side) or on shutdown.
                    while (any(p.alive for p in self._peers.values())
                           and not self._stop.is_set()):
                        await asyncio.sleep(0.05)
                raise _WireAbort()

            # Phase 1: round begin (staged intents move up first, so
            # their relative order is stable — the engine's rule).
            self._outbox_now, self._outbox_next = self._outbox_next, []
            self._in_round_begin = True
            if alive:
                program.on_round_begin(self.context)
            self._in_round_begin = False

            # Phase 2: transmit — one sealed envelope per link.
            per_target: Dict[NodeId, List[ProtocolMessage]] = {}
            for intent in self._outbox_now:
                message = intent.message.with_round(rnd)
                digest = self._ack_digest(message)
                if intent.expect_acks:
                    self._pending_handles[digest] = MulticastHandle(
                        sender=cfg.node_id,
                        rnd=rnd,
                        key=digest,
                        expect_acks=True,
                        threshold=intent.threshold,
                        targets=len(intent.targets),
                    )
                for target in intent.targets:
                    per_target.setdefault(target, []).append(message)
            self._outbox_now = []
            for target in sorted(per_target):
                members = per_target[target]
                peer = self._peers.get(target)
                if peer is None or not peer.alive:
                    self.stats.omissions += len(members)
                    continue
                counter, count, body = self._seal_members(target, members)
                self._send_frame(
                    peer, (K_DATA, run, rnd, counter, count, body)
                )
            for peer in self._live_peers():
                self._send_frame(peer, (K_EOD, run, rnd))
            await self._drain_all()

            # Phase 3: deliver.  Wait out the data wave, then dispatch
            # in canonical order: links sorted by sender id, members in
            # emission order.
            await self._barrier(run, rnd, "eod")
            for peer in [self._peers[pid] for pid in sorted(self._peers)]:
                box = peer.inbox(run, rnd)
                if not peer.alive and not box.eod_seen:
                    # Died mid-wave: the round's partial traffic is
                    # discarded wholesale (omissions), never half-applied.
                    self.stats.omissions += sum(c for _, c, _ in box.data)
                    continue
                for counter, count, body in box.data:
                    try:
                        members = self._open_members(
                            peer.node_id, counter, count, body
                        )
                    except (CryptoError, ProtocolError) as exc:
                        # Verification failure is an omission (Thm A.2).
                        self.stats.rejections += count
                        self.stats.omissions += count
                        _LOG.info(
                            "node %d: rejected envelope from %d: %s",
                            cfg.node_id, peer.node_id, exc,
                        )
                        continue
                    if self.enclave.halted:
                        continue
                    for member in members:
                        program.on_message(
                            self.context, peer.node_id, member
                        )

            # Phase 4: ACK wave — aggregated digests, same round trip.
            acks_by_dest: Dict[NodeId, List[bytes]] = {}
            for dest, digest in self._ack_out:
                acks_by_dest.setdefault(dest, []).append(digest)
            self._ack_out = []
            for dest in sorted(acks_by_dest):
                peer = self._peers.get(dest)
                if peer is not None and peer.alive:
                    self._send_frame(
                        peer,
                        (K_ACK, run, rnd, tuple(acks_by_dest[dest])),
                    )
            for peer in self._live_peers():
                self._send_frame(peer, (K_EOA, run, rnd))
            await self._drain_all()
            await self._barrier(run, rnd, "eoa")
            handles = self._pending_handles
            for peer in [self._peers[pid] for pid in sorted(self._peers)]:
                box = peer.inbox(run, rnd)
                if not peer.alive and not box.eoa_seen:
                    continue    # died mid-ack-wave: its ACKs are omitted
                for digest in box.acks:
                    handle = handles.get(digest)
                    if handle is not None:
                        handle.acks += 1

            # Phase 5: halt-on-divergence (P4) + voluntary halts.
            if alive and not self.enclave.halted:
                for handle in handles.values():
                    if handle.diverged and handle.targets >= handle.threshold:
                        self.enclave.halt(rnd)
                        break
            if alive and self.enclave.halted:
                for peer in self._live_peers():
                    self._send_frame(peer, (K_BYE, run, rnd, "halted"))
                await self._drain_all()
                executed = rnd
                self._finish_round(rnd, round_t0, run)
                break

            # Phase 6: round end, clock advance, FIN barrier.
            if alive:
                program.on_round_end(self.context)
            self._clock_source.advance(self.sim_config.round_seconds)
            done = bool(program.has_output) or self.enclave.halted
            for peer in self._live_peers():
                self._send_frame(peer, (K_FIN, run, rnd, int(done)))
            await self._drain_all()
            await self._barrier(run, rnd, "fin")
            executed = rnd
            peers_done = all(
                peer.inbox(run, rnd).done
                for peer in self._live_peers()
            )
            self._finish_round(rnd, round_t0, run)
            if done and peers_done:
                break
        if not self.enclave.halted:
            program.on_protocol_end(self.context)
        self._rounds_executed = executed

    def _finish_round(self, rnd: int, round_t0: float, run: int) -> None:
        wall = perf_counter() - round_t0
        self._round_walls.append(wall)
        self._round_bytes.append(self._bytes_this_round)
        self.stats.round_wall_s.observe(wall)
        for peer in self._peers.values():
            peer.drop_round(run, rnd)

    # ------------------------------------------------------------------
    # service entry points
    # ------------------------------------------------------------------
    async def run_service(self) -> WireRunReport:
        """Connect, run the configured protocol (all epochs for the
        beacon), close down cleanly, report."""
        cfg = self.cfg
        records: List[BeaconRecord] = []
        crashed = False
        try:
            await self.connect_peers()
            if cfg.protocol == "beacon":
                prev_seed = b""
                prev_record = RandomBeacon.GENESIS
                for epoch in range(cfg.epochs):
                    if self._stop.is_set():
                        break
                    seed = epoch_seed(cfg.seed, epoch, prev_seed)
                    self.current_run = epoch
                    self._departed.clear()
                    self._build_universe(seed)
                    await self._run_rounds(epoch, self._max_rounds)
                    program = self.enclave.program
                    if not program.has_output:
                        break
                    value = program.output
                    digest = BeaconRecord.compute_digest(
                        epoch, value, prev_record
                    )
                    records.append(BeaconRecord(
                        epoch=epoch, value=value,
                        prev_digest=prev_record, digest=digest,
                    ))
                    prev_seed = digest
                    prev_record = digest
            else:
                await self._run_rounds(0, self._max_rounds)
        except _WireAbort:
            crashed = True
        finally:
            await self._close(crashed=crashed)
        program = self.enclave.program
        return WireRunReport(
            node_id=cfg.node_id,
            output=program.output if program.has_output else None,
            decided_round=program.decided_round,
            halted=self.enclave.halted,
            rounds_executed=getattr(self, "_rounds_executed", 0),
            ejected_peers=list(self.stats.ejected),
            round_walls=list(self._round_walls),
            round_bytes=list(self._round_bytes),
            stats=self.stats,
            records=records,
            crashed=crashed,
        )

    def shutdown(self) -> None:
        """Request a graceful stop (SIGTERM handler): the pump exits at
        the next round boundary, peers get a BYE, tasks are joined."""
        self._stop.set()

    async def _close(self, crashed: bool = False) -> None:
        for peer in self._peers.values():
            if peer.alive and peer.writer is not None and not crashed:
                self._send_frame(
                    peer,
                    (K_BYE, self.current_run, self.current_round,
                     "shutdown"),
                )
        await self._drain_all()
        for peer in self._peers.values():
            if peer.writer is not None:
                try:
                    peer.writer.close()
                except OSError:
                    pass
            if peer.reader_task is not None:
                peer.reader_task.cancel()
        tasks = [
            p.reader_task for p in self._peers.values()
            if p.reader_task is not None
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


# ----------------------------------------------------------------------
# daemon + cluster entry points
# ----------------------------------------------------------------------

def run_node_daemon(cfg: WireNodeConfig) -> WireRunReport:
    """``python -m repro node``: host one node until its protocol run
    completes or SIGTERM arrives.  Installs signal handlers for a clean
    shutdown — the pump exits at a round boundary and every task is
    joined, so no orphan tasks survive the loop."""
    import signal

    async def _main() -> WireRunReport:
        node = WireNode(cfg)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, node.shutdown)
            except (NotImplementedError, RuntimeError):
                pass    # non-POSIX loop: Ctrl-C still raises
        await node.start_server()
        return await node.run_service()

    return asyncio.run(_main())


def allocate_loopback_ports(count: int) -> List[int]:
    """Reserve ``count`` distinct ephemeral loopback ports.

    Bind-then-close: the OS keeps the port out of the ephemeral pool
    long enough for the daemons to claim it (standard test-harness
    idiom; a race is possible but vanishingly rare on loopback).
    """
    ports: List[int] = []
    sockets = []
    for _ in range(count):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


def cluster_configs(
    n: int,
    protocol: str = "erb",
    *,
    t: int = -1,
    seed: int = 0,
    security: str = "modeled",
    initiator: int = 0,
    message: bytes = b"wire",
    epochs: int = 1,
    random_bits: int = 128,
    round_timeout_s: float = DEFAULT_ROUND_TIMEOUT_S,
    fail_at_round: Optional[Dict[int, int]] = None,
    fail_mode: str = "crash",
    ports: Optional[List[int]] = None,
) -> List[WireNodeConfig]:
    """Per-node configs for an N-node loopback cluster.

    With ``ports`` (e.g. from :func:`allocate_loopback_ports`) the
    address book is fixed up front — the multi-process launcher needs
    that; the in-process runner leaves ports at 0 and fills the book
    after binding.
    """
    port_of = {
        i: (ports[i] if ports is not None else 0) for i in range(n)
    }
    fail_at_round = fail_at_round or {}
    configs = []
    for i in range(n):
        configs.append(WireNodeConfig(
            node_id=i,
            n=n,
            t=t,
            seed=seed,
            protocol=protocol,
            listen_port=port_of[i],
            peers={
                j: ("127.0.0.1", port_of[j]) for j in range(n) if j != i
            },
            security=security,
            initiator=initiator,
            message=message,
            epochs=epochs,
            random_bits=random_bits,
            round_timeout_s=round_timeout_s,
            fail_at_round=fail_at_round.get(i),
            fail_mode=fail_mode,
        ))
    return configs


async def run_cluster_async(
    configs: Sequence[WireNodeConfig],
) -> ClusterResult:
    """Run every node of a loopback cluster on one event loop.

    Real sockets, real frames — the nodes share nothing but TCP.  Ports
    left at 0 are bound first and the address book distributed before
    any dial."""
    t0 = perf_counter()
    nodes = [WireNode(cfg) for cfg in configs]
    ports: Dict[int, int] = {}
    for node in nodes:
        _, port = await node.start_server()
        ports[node.cfg.node_id] = port
    for node in nodes:
        node.cfg.peers = {
            pid: ("127.0.0.1", ports[pid])
            for pid in ports
            if pid != node.cfg.node_id
        }
    reports = await asyncio.gather(
        *(node.run_service() for node in nodes)
    )
    by_node = {report.node_id: report for report in reports}
    outputs = {
        nid: r.output for nid, r in sorted(by_node.items())
        if r.output is not None
    }
    decided = {
        nid: r.decided_round for nid, r in sorted(by_node.items())
        if r.output is not None
    }
    halted = sorted(
        nid for nid, r in by_node.items() if r.halted or r.crashed
    )
    longest = max((r for r in reports), key=lambda r: r.rounds_executed)
    records = longest.records
    return ClusterResult(
        outputs=outputs,
        decided_rounds=decided,
        halted=halted,
        rounds_executed=max(r.rounds_executed for r in reports),
        reports=by_node,
        records=records,
        wall_seconds=perf_counter() - t0,
    )


def run_cluster(configs: Sequence[WireNodeConfig]) -> ClusterResult:
    """Synchronous wrapper around :func:`run_cluster_async`."""
    return asyncio.run(run_cluster_async(configs))


# ----------------------------------------------------------------------
# multi-process cluster: one OS process per daemon
# ----------------------------------------------------------------------

def spawn_node_processes(
    configs: Sequence[WireNodeConfig], config_dir: str
):
    """Start one ``python -m repro node`` daemon per config.

    Ports must be pre-allocated in the address books
    (:func:`allocate_loopback_ports` + :func:`cluster_configs` with
    ``ports=``).  Returns the ``subprocess.Popen`` handles in config
    order; the caller owns their lifecycle (this is what the SIGTERM
    lifecycle test drives directly).
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    procs = []
    for cfg in configs:
        path = Path(config_dir) / f"node-{cfg.node_id}.json"
        path.write_text(cfg.to_json(), encoding="utf-8")
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "node", "--config", str(path)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        ))
    return procs


def run_cluster_processes(
    configs: Sequence[WireNodeConfig],
    timeout_s: float = 120.0,
) -> ClusterResult:
    """Run a loopback cluster as separate OS processes and aggregate
    the daemons' JSON reports.  The in-process runner
    (:func:`run_cluster`) is the default; this is the path that proves
    the daemon binary itself works end to end."""
    import subprocess
    import tempfile

    t0 = perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-wire-") as config_dir:
        procs = spawn_node_processes(configs, config_dir)
        reports: Dict[NodeId, WireRunReport] = {}
        try:
            for cfg, proc in zip(configs, procs):
                out, _ = proc.communicate(timeout=timeout_s)
                try:
                    raw = json.loads(out.strip().splitlines()[-1])
                except (json.JSONDecodeError, IndexError):
                    raise ProtocolError(
                        f"node {cfg.node_id} daemon produced no report "
                        f"(exit {proc.returncode})"
                    ) from None
                reports[cfg.node_id] = WireRunReport.from_json_dict(raw)
        except subprocess.TimeoutExpired:
            raise ProtocolError(
                f"cluster did not complete within {timeout_s}s"
            ) from None
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
    outputs = {
        nid: r.output for nid, r in sorted(reports.items())
        if r.output is not None
    }
    decided = {
        nid: r.decided_round for nid, r in sorted(reports.items())
        if r.output is not None
    }
    halted = sorted(
        nid for nid, r in reports.items() if r.halted or r.crashed
    )
    longest = max(reports.values(), key=lambda r: r.rounds_executed)
    return ClusterResult(
        outputs=outputs,
        decided_rounds=decided,
        halted=halted,
        rounds_executed=max(r.rounds_executed for r in reports.values()),
        reports=reports,
        records=longest.records,
        wall_seconds=perf_counter() - t0,
    )
