"""Shared-memory data plane for the sharded round engine.

The v1 coordinator↔worker protocol shipped every staged intent, ACK
aggregate and timing payload through ``ProcessPoolExecutor`` — each
barrier paid two pickled pipe crossings per shard plus the executor's
queue-management threads, which the phase observatory measured at ~96%
of parallel wall clock.  This module replaces the carriage (not the
payloads: frames still hold pickles of the exact v1 tuples) with
single-producer / single-consumer ring buffers over
:mod:`multiprocessing.shared_memory`:

* :class:`ShmRing` — one direction of one coordinator↔worker channel.
  Frames are length-prefixed: a little-endian ``u32`` header whose low
  31 bits are the payload length and whose high bit marks a
  *continuation* (the payload is one chunk of a logical frame larger
  than the ring, reassembled by the reader); the payload follows,
  padded to 4-byte alignment.  The reader hands contiguous payloads out
  as zero-copy ``memoryview`` slices of the ring (``pickle.loads``
  accepts them directly).

* :class:`ShmChannel` / :class:`PipeChannel` — the two interchangeable
  data planes (``data_plane`` = ``"shm"`` / ``"pickle"``).  Both expose
  ``send`` / ``send_frame`` / ``try_recv`` / ``recv``; the pickle
  fallback (a :func:`multiprocessing.Pipe` pair) engages when POSIX
  shared memory is unavailable or when the run forces it via
  ``extra["parallel_data_plane"]``.

Publication protocol: the writer copies the header and payload into the
data region first and only then stores the new 8-byte-aligned write
cursor; the reader never looks past the cursor.  On the platforms this
engine runs on (CPython's single ``memcpy`` per aligned slice store,
total store order on x86-64, release/acquire-free but in-order cursor
stores on AArch64 Linux) a torn or reordered cursor read cannot expose
unwritten payload bytes.  Cursors grow monotonically and wrap modulo
the capacity; a header of ``0xFFFFFFFF`` is a wrap marker (skip to the
region start).

Waiting is a bounded spin, then ``os.sched_yield()``, then short sleeps
— the escalation matters on hosts with fewer cores than processes,
where a pure spin would starve the peer off the CPU.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from multiprocessing.connection import Connection
from typing import List, Optional

try:  # pragma: no cover - import guard exercised via _probe()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - ancient / stripped pythons
    _shared_memory = None

#: Data-plane identifiers (machine stamps, bench entries, warnings).
DATA_PLANE_SHM = "shm"
DATA_PLANE_PICKLE = "pickle"

_HEADER = struct.Struct("<I")
_CURSOR = struct.Struct("<Q")
_WRAP_MARKER = 0xFFFFFFFF
_CONT_FLAG = 0x80000000
_LEN_MASK = 0x7FFFFFFF

#: Ring data capacity per direction.  Large enough that a round's plan
#: or a worker's staged-intent chunk never needs continuation frames at
#: the benchmark scales (ERB N=8192 plans are ~1 MiB); logical frames
#: beyond the capacity still work via chunking.
DEFAULT_CAPACITY = 4 * 1024 * 1024

#: Byte offsets of the two cursors in the 64-byte ring header.
_WRITE_CURSOR = 0
_READ_CURSOR = 8
_HEADER_BYTES = 64

_NOTHING = object()

_shm_probe_result: Optional[str] = None


def shared_memory_available() -> bool:
    """Whether POSIX shared memory actually works here (probed once).

    Import success is not enough: containers can mount ``/dev/shm``
    read-only or size-zero, which only surfaces on the first
    ``SharedMemory`` creation.
    """
    global _shm_probe_result
    if _shm_probe_result is None:
        if _shared_memory is None:
            _shm_probe_result = "no multiprocessing.shared_memory"
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=64)
            except OSError as exc:  # pragma: no cover - degraded hosts
                _shm_probe_result = f"shared memory unavailable: {exc}"
            else:
                probe.close()
                probe.unlink()
                _shm_probe_result = ""
    return _shm_probe_result == ""


def shared_memory_unavailable_reason() -> str:
    """The probe's failure description ("" when shm works)."""
    shared_memory_available()
    return _shm_probe_result or ""


def _wait_spin(step: int) -> None:
    """Escalating wait: spin -> yield the core -> short sleeps."""
    if step < 64:
        return
    if step < 256:
        os.sched_yield()
    elif step < 1024:
        time.sleep(0.0001)
    else:
        time.sleep(0.001)


class ShmRing:
    """One SPSC ring: a single writer process, a single reader process.

    Created by the coordinator before the fork; the worker inherits the
    mapping.  ``owner=True`` (coordinator side) unlinks the segment on
    close.
    """

    __slots__ = ("_shm", "_buf", "_data", "capacity", "_owner", "name",
                 "_pending")

    def __init__(
        self,
        name: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
        *,
        create: bool = False,
    ) -> None:
        assert _shared_memory is not None
        if create:
            self._shm = _shared_memory.SharedMemory(
                create=True, size=_HEADER_BYTES + capacity
            )
            # Fresh segments are zero-filled, so both cursors start at 0.
        else:  # pragma: no cover - attach path unused under fork
            self._shm = _shared_memory.SharedMemory(name=name)
        self.name = self._shm.name
        self._buf = self._shm.buf
        self._data = self._buf[_HEADER_BYTES:_HEADER_BYTES + capacity]
        self.capacity = capacity
        self._owner = create
        self._pending: Optional[int] = None

    # -- cursors -------------------------------------------------------
    def _load(self, offset: int) -> int:
        return _CURSOR.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _CURSOR.pack_into(self._buf, offset, value)

    # -- writer side ---------------------------------------------------
    def _reserve(self, nbytes: int, write: int) -> int:
        """Block until ``nbytes`` are free past ``write``; returns the
        in-region offset the frame starts at (after any wrap marker)."""
        capacity = self.capacity
        pos = write % capacity
        tail = capacity - pos
        need = nbytes
        if tail < nbytes:
            # Not contiguous: burn the tail with a wrap marker and start
            # over at the region base.
            need = tail + nbytes
        step = 0
        while capacity - (write - self._load(_READ_CURSOR)) < need:
            _wait_spin(step)
            step += 1
        if tail < nbytes:
            if tail >= _HEADER.size:
                _HEADER.pack_into(self._data, pos, _WRAP_MARKER)
            return -1  # signal: wrapped, frame starts at offset 0
        return pos

    def _put_chunk(self, payload, flags: int) -> None:
        n = len(payload)
        frame = _HEADER.size + ((n + 3) & ~3)
        write = self._load(_WRITE_CURSOR)
        pos = self._reserve(frame, write)
        if pos < 0:
            write += self.capacity - (write % self.capacity)
            pos = 0
        data = self._data
        _HEADER.pack_into(data, pos, n | flags)
        data[pos + _HEADER.size:pos + _HEADER.size + n] = payload
        # Publish: the cursor store is the only thing the reader trusts.
        self._store(_WRITE_CURSOR, write + frame)

    def put(self, payload) -> None:
        """Write one logical frame (bytes-like), chunking if oversized.

        Chunks are capped at half the capacity: a wrapping write needs
        the burnt tail *plus* the frame free at once, and the tail is
        only ever burnt when it is smaller than the frame, so half-ring
        chunks can always make progress.
        """
        limit = self.capacity // 2 - _HEADER.size - 4
        n = len(payload)
        if n <= limit:
            self._put_chunk(payload, 0)
            return
        view = memoryview(payload)
        offset = 0
        while n - offset > limit:
            self._put_chunk(view[offset:offset + limit], _CONT_FLAG)
            offset += limit
        self._put_chunk(view[offset:], 0)

    # -- reader side ---------------------------------------------------
    def _get_chunk(self):
        """One physical frame as ``(memoryview, continued)``, or None.

        Stashes the post-frame read cursor in ``_pending``; the caller
        publishes it via :meth:`consume` once the payload is decoded.
        """
        read = self._load(_READ_CURSOR)
        if read == self._load(_WRITE_CURSOR):
            return None
        capacity = self.capacity
        pos = read % capacity
        tail = capacity - pos
        if tail < _HEADER.size:
            # Tail too small even for a wrap marker; the writer skipped
            # it silently (see _reserve), so skip it here too.
            read += tail
            pos = 0
        else:
            header = _HEADER.unpack_from(self._data, pos)[0]
            if header == _WRAP_MARKER:
                read += tail
                pos = 0
        header = _HEADER.unpack_from(self._data, pos)[0]
        n = header & _LEN_MASK
        start = pos + _HEADER.size
        view = self._data[start:start + n]
        self._pending = read + _HEADER.size + ((n + 3) & ~3)
        return view, bool(header & _CONT_FLAG)

    def try_get(self):
        """One logical frame as bytes-like, or ``None``.

        The common (uncontinued, contiguous) case hands the caller a
        zero-copy memoryview into the ring and releases the space only
        at :meth:`consume` — callers must consume before the next
        ``try_get``, which ``ShmChannel`` guarantees by unpickling
        inline.  Continued (oversized) logical frames are reassembled
        into one bytes object.
        """
        first = self._get_chunk()
        if first is None:
            return None
        view, continued = first
        if not continued:
            return view
        parts = [bytes(view)]
        self.consume()
        step = 0
        while continued:
            nxt = self._get_chunk()
            if nxt is None:
                _wait_spin(step)
                step += 1
                continue
            view, continued = nxt
            parts.append(bytes(view))
            if continued:
                self.consume()
            step = 0
        del view
        return b"".join(parts)

    def consume(self) -> None:
        """Release the space of the frame returned by the last
        ``try_get`` (safe to call when nothing is pending)."""
        pending = self._pending
        if pending is None:
            return
        self._store(_READ_CURSOR, pending)
        self._pending = None

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._pending = None  # type: ignore[attr-defined]
        try:
            self._data.release()
        except (BufferError, AttributeError):  # pragma: no cover
            pass
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass


class ShmChannel:
    """Bidirectional coordinator↔worker channel over two :class:`ShmRing`s.

    The coordinator constructs it (creating both rings) before forking;
    after the fork each side calls :meth:`bind` with its role so ``send``
    and ``recv`` pick the right directions.
    """

    data_plane = DATA_PLANE_SHM

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._down = ShmRing(capacity=capacity, create=True)  # coord -> worker
        self._up = ShmRing(capacity=capacity, create=True)    # worker -> coord
        self._is_worker = False

    def bind_worker(self) -> None:
        self._is_worker = True
        # The worker side must not unlink the parent-owned segments.
        self._down._owner = False
        self._up._owner = False

    # -- send ----------------------------------------------------------
    def send(self, obj) -> None:
        self.send_frame(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))

    def send_frame(self, frame) -> None:
        """Ship pre-pickled bytes (the coordinator pickles a round's plan
        once and writes the same buffer into every worker's ring)."""
        (self._up if self._is_worker else self._down).put(frame)

    # -- receive -------------------------------------------------------
    def try_recv(self):
        ring = self._down if self._is_worker else self._up
        frame = ring.try_get()
        if frame is None:
            return _NOTHING
        obj = pickle.loads(frame)
        del frame
        ring.consume()
        return obj

    def recv(self, alive_check=None):
        step = 0
        while True:
            obj = self.try_recv()
            if obj is not _NOTHING:
                return obj
            if alive_check is not None and step and step % 4096 == 0:
                alive_check()
            _wait_spin(step)
            step += 1

    def poll(self) -> bool:
        ring = self._down if self._is_worker else self._up
        return ring._load(_WRITE_CURSOR) != ring._load(_READ_CURSOR)

    def close(self) -> None:
        self._down.close()
        self._up.close()


class PipeChannel:
    """The pickle fallback: one :func:`multiprocessing.Pipe` pair per
    direction-agnostic duplex channel.  Same verbs as :class:`ShmChannel`
    so every byte of worker/coordinator logic is shared; only the frame
    carriage differs."""

    data_plane = DATA_PLANE_PICKLE

    def __init__(self, ctx) -> None:
        self._parent, self._child = ctx.Pipe(duplex=True)
        self._conn: Connection = self._parent

    def bind_worker(self) -> None:
        self._conn = self._child
        self._parent.close()

    def send(self, obj) -> None:
        self._conn.send_bytes(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))

    def send_frame(self, frame) -> None:
        self._conn.send_bytes(frame)

    def try_recv(self):
        if not self._conn.poll():
            return _NOTHING
        return pickle.loads(self._conn.recv_bytes())

    def recv(self, alive_check=None):
        step = 0
        while True:
            if self._conn.poll(0.05):
                return pickle.loads(self._conn.recv_bytes())
            if alive_check is not None:
                alive_check()
            step += 1

    def poll(self) -> bool:
        return self._conn.poll()

    def close(self) -> None:
        for conn in (self._parent, self._child):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


def make_channels(ctx, nshards: int, data_plane: str) -> List[object]:
    """One channel per shard, of the requested plane."""
    if data_plane == DATA_PLANE_SHM:
        return [ShmChannel() for _ in range(nshards)]
    return [PipeChannel(ctx) for _ in range(nshards)]
