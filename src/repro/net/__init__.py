"""Synchronous P2P network simulation substrate.

This package replaces the paper's DeterLab testbed (40 machines behind a
shared 128 MB/s link running up to 1000 peers):

* :mod:`repro.net.simulator` — the round-based synchronous engine that
  drives enclave programs, applies adversarial OS behaviours, and enforces
  the Multicast/ACK/Halt semantics of Algorithm 2;
* :mod:`repro.net.transport` — the delivery layer (FULL crypto, MODELED
  sizes, or NONE for strawman attack demos) plus the bandwidth model that
  stretches a round beyond ``2*delta`` when the shared link saturates;
* :mod:`repro.net.topology` — full mesh (assumption S5) and the sparse
  expander relaxation of Appendix G;
* :mod:`repro.net.stats` — per-run traffic and round accounting, the raw
  material behind every figure reproduction.
"""

from repro.net.simulator import EnclaveContext, Node, RunResult, SynchronousNetwork
from repro.net.stats import TrafficStats
from repro.net.topology import Topology

__all__ = [
    "EnclaveContext",
    "Node",
    "RunResult",
    "SynchronousNetwork",
    "Topology",
    "TrafficStats",
]
